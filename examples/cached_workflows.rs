//! Caching workflows (§5): an analyst compares several classifiers on
//! the same prepared dataset, then issues the paper's follow-up queries.
//!
//! * Runs 1–4: SVM, logistic regression, naive Bayes, decision tree on
//!   the same preparation query — after the first run, every subsequent
//!   one is a **full-result cache hit** (the §5.1 motivation: "an analyst
//!   wants to run a number of classification algorithms ... on a
//!   particular dataset").
//! * Run 5: the §5.1 subset query (extra predicate on a projected field)
//!   — also a full hit, answered by a rewritten query over the
//!   materialization.
//! * Run 6: the §5.2 query (new projected column + predicate on an
//!   unprojected field) — full reuse impossible, **recode map** reused.
//!
//! Run with: `cargo run --release --example cached_workflows`

use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{
    CacheMode, ClusterConfig, Pipeline, PipelineRequest, SimCluster, Strategy, WorkloadScale,
};
use sqlml_transform::TransformSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = SimCluster::start(ClusterConfig::default())?;
    cluster.load_workload(
        WorkloadScale {
            carts: 30_000,
            users: 1_000,
        },
        13,
    )?;
    let pipeline = Pipeline::with_cache(&cluster);

    let base = |ml: &str| PipelineRequest {
        prep_sql: PREP_QUERY.to_string(),
        spec: TransformSpec::default(), // recode gender + abandoned
        ml_command: ml.to_string(),     // layout: age, gender, amount, abandoned
    };

    println!("--- comparing classifiers on one prepared dataset (§5.1 motivation) ---");
    for (i, ml) in [
        "svm label=3 iterations=30",
        "logreg label=3 iterations=30",
        "nb label=3",
        "tree label=3 depth=4",
    ]
    .iter()
    .enumerate()
    {
        let report = pipeline.run(&base(ml), Strategy::InSqlStream)?;
        println!(
            "run {}: {:<28} cache={:?}  pipeline={:.1?}",
            i + 1,
            report.model.kind(),
            report.cache_use,
            report.pipeline_time()
        );
        if i == 0 {
            assert_eq!(report.cache_use, CacheMode::None);
        } else {
            assert_eq!(report.cache_use, CacheMode::FullResult);
        }
    }

    println!("\n--- the §5.1 subset query (gender = 'F') ---");
    let subset = PipelineRequest {
        prep_sql: "SELECT U.age, C.amount, C.abandoned FROM carts C, users U \
                   WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'F'"
            .to_string(),
        spec: TransformSpec::default(),
        ml_command: "svm label=2 iterations=30".to_string(),
    };
    let report = pipeline.run(&subset, Strategy::InSqlStream)?;
    println!(
        "cache={:?}  rows={}  pipeline={:.1?}",
        report.cache_use,
        report.rows_to_ml,
        report.pipeline_time()
    );
    assert_eq!(report.cache_use, CacheMode::FullResult);

    println!("\n--- the §5.2 query (new column nitems, predicate on year) ---");
    let follow_up = PipelineRequest {
        prep_sql: "SELECT U.age, U.gender, C.amount, C.nitems, C.abandoned \
                   FROM carts C, users U \
                   WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014"
            .to_string(),
        spec: TransformSpec::default(),
        ml_command: "svm label=4 iterations=30".to_string(),
    };
    let report = pipeline.run(&follow_up, Strategy::InSqlStream)?;
    println!(
        "cache={:?}  rows={}  pipeline={:.1?}",
        report.cache_use,
        report.rows_to_ml,
        report.pipeline_time()
    );
    assert_eq!(report.cache_use, CacheMode::RecodeMap);

    let (full, map, miss) = pipeline.cache().unwrap().stats.snapshot();
    println!("\ncache stats: {full} full hits, {map} map hits, {miss} misses");
    assert_eq!((full, map), (4, 1));
    println!("cached_workflows OK");
    Ok(())
}
