//! A second domain scenario: telecom customer churn.
//!
//! Demonstrates pieces the cart example doesn't: the **query rewriter**
//! (§4) producing an executable SQL script with UDF invocations and the
//! streaming hand-off, **effect coding**, and the **fault-injected
//! restart protocol** (§6) during a live transfer.
//!
//! Run with: `cargo run --release --example churn_streaming`

use std::sync::Arc;

use sqlml_common::schema::{DataType, Field, Schema};
use sqlml_common::{Row, SplitMix64, Value};
use sqlml_core::{ClusterConfig, SimCluster};
use sqlml_rewriter::{QueryRewriter, StreamTarget};
use sqlml_transfer::FaultInjector;
use sqlml_transform::TransformSpec;

fn build_tables(cluster: &SimCluster) {
    let customers = Schema::new(vec![
        Field::new("custid", DataType::Int),
        Field::new("tenure_months", DataType::Int),
        Field::new("monthly_bill", DataType::Double),
        Field::categorical("plan"),
        Field::categorical("churned"),
    ]);
    let mut rng = SplitMix64::new(99);
    let rows: Vec<Row> = (0..5_000)
        .map(|cid| {
            let tenure = rng.range_i64(1, 72);
            let bill = 20.0 + rng.next_f64() * 80.0;
            let plan = *rng.choose(&["basic", "plus", "premium"]);
            // Short-tenure, high-bill customers churn.
            let p = (0.7 - 0.01 * tenure as f64 + 0.004 * (bill - 50.0)).clamp(0.05, 0.95);
            let churned = if rng.chance(p) { "Yes" } else { "No" };
            Row::new(vec![
                Value::Int(cid),
                Value::Int(tenure),
                Value::Double(bill),
                Value::Str(plan.into()),
                Value::Str(churned.into()),
            ])
        })
        .collect();
    cluster.engine.register_rows("customers", customers, rows);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = SimCluster::start(ClusterConfig::for_tests())?;
    build_tables(&cluster);

    // --- 1. The §4 rewriter: show the generated UDF script. -------------
    let rewriter = QueryRewriter::new(cluster.engine.clone());
    let prep = "SELECT tenure_months, monthly_bill, plan, churned \
                FROM customers WHERE tenure_months > 3";
    let spec = TransformSpec::new(&["plan"]);
    let target = StreamTarget {
        coordinator_addr: cluster.stream.coordinator_addr().to_string(),
        transfer_id: 1,
        // Transformed layout: tenure, bill, plan_1..plan_3, churned.
        command: "logreg label=5 iterations=150".to_string(),
        splits_per_worker: cluster.config.splits_per_worker,
        send_buffer_bytes: cluster.config.send_buffer_bytes,
    };
    let script = rewriter.rewrite(prep, &spec, Some(&target))?;
    println!("--- rewritten script (§4) ---");
    for (i, stmt) in script.statements.iter().enumerate() {
        println!("{:>2}. {stmt}", i + 1);
    }

    // --- 2. Effect coding (the §2 variant transformations). -------------
    let transformer = sqlml_transform::InSqlTransformer::new(cluster.engine.clone());
    cluster
        .engine
        .execute(&format!("CREATE TABLE churn_prep AS {prep}"))?;
    let recoded = transformer.transform("churn_prep", &TransformSpec::default())?;
    cluster
        .engine
        .register_table("churn_recoded", recoded.table);
    let effect = cluster
        .engine
        .query("SELECT * FROM TABLE(effect_code(churn_recoded, 'plan', 3)) AS e")?;
    println!(
        "\neffect-coded schema: {}",
        effect.schema().names().join(", ")
    );
    assert!(effect.schema().names().contains(&"plan_eff1".to_string()));

    // --- 3. Streaming with an injected fault: §6's restart protocol. ----
    let injector = Arc::new(FaultInjector::new());
    injector.fail_worker_after(0, 200);
    let stream_cfg = cluster.stream_config();
    cluster
        .stream
        .install_udf(&cluster.engine, &stream_cfg, Some(Arc::clone(&injector)));
    let outcome = cluster.stream.run(
        &cluster.engine,
        "churn_recoded",
        "logreg label=3 iterations=150",
        &stream_cfg,
    )?;
    println!(
        "\nstreamed {} rows, restart attempts: {} (fault fired: {:?})",
        outcome.stats.rows_ingested,
        outcome.stats.max_attempts,
        injector.fired()
    );
    assert_eq!(outcome.stats.max_attempts, 2, "restart protocol must fire");
    assert_eq!(
        outcome.stats.rows_ingested,
        cluster.engine.table_rows("churn_recoded")?,
        "exactly-once delivery despite the fault"
    );

    // The model should find the planted churn signal.
    let model = outcome.job.model;
    // Features: tenure, bill, plan (recoded, no dummy here).
    let loyal = model.predict(&[70.0, 25.0, 1.0]);
    let flighty = model.predict(&[2.0, 95.0, 1.0]);
    println!("predict(loyal)={loyal} predict(flighty)={flighty}");
    assert_eq!(loyal, 0.0);
    assert_eq!(flighty, 1.0);
    println!("churn_streaming OK");
    Ok(())
}
