//! The paper's running example (§1, §7): predicting shopping-cart
//! abandonment for an online retailer.
//!
//! Generates the synthetic `carts`/`users` warehouse, runs the
//! preparation query, recodes `gender`/`abandoned` and dummy-codes
//! `gender`, trains `SVMWithSGD`, and compares the three integration
//! strategies of Figure 3 — then evaluates the model on a held-out split.
//!
//! Run with: `cargo run --release --example cart_abandonment [num_carts]`

use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{ClusterConfig, Pipeline, PipelineRequest, SimCluster, Strategy, WorkloadScale};
use sqlml_mlengine::dataset::{Dataset, LabeledPoint};
use sqlml_mlengine::job::TrainedModel;
use sqlml_mlengine::metrics;
use sqlml_transform::TransformSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let carts: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(50_000);
    let scale = WorkloadScale::with_carts(carts);
    println!(
        "cart-abandonment scenario: {} carts, {} users",
        scale.carts, scale.users
    );

    let cluster = SimCluster::start(ClusterConfig::default())?;
    cluster.load_workload(scale, 42)?;

    let request = PipelineRequest {
        prep_sql: PREP_QUERY.to_string(),
        spec: TransformSpec::new(&["gender"]),
        // Transformed layout: age, gender_F, gender_M, amount, abandoned.
        ml_command: "svm label=4 iterations=50".to_string(),
    };

    let pipeline = Pipeline::new(&cluster);
    let mut last_model: Option<TrainedModel> = None;
    for strategy in [Strategy::Naive, Strategy::InSql, Strategy::InSqlStream] {
        let report = pipeline.run(&request, strategy)?;
        println!("\n=== {} ===", strategy.label());
        print!("{}", report.timer);
        println!(
            "  ({} rows to ML, training excluded: {:.1?})",
            report.rows_to_ml, report.train_time
        );
        last_model = Some(report.model);
    }

    // Evaluate: rebuild the transformed dataset once more and hold out
    // every 5th row.
    let engine = &cluster.engine;
    engine.execute(&format!("CREATE TABLE prep AS {PREP_QUERY}"))?;
    let transformer = sqlml_transform::InSqlTransformer::new(engine.clone());
    let out = transformer.transform("prep", &request.spec)?;
    let points: Vec<LabeledPoint> = out
        .table
        .collect_rows()
        .iter()
        .map(|r| LabeledPoint::from_row(r, 4))
        .collect::<Result<_, _>>()?;
    // Labels are recoded 1/2 (No/Yes) — shift to 0/1 like the trainer did.
    let points: Vec<LabeledPoint> = points
        .into_iter()
        .map(|p| LabeledPoint::new(p.label - 1.0, p.features))
        .collect();
    let data = Dataset::from_points(points)?;
    let (_, test) = data.split_every_kth(5);

    let model = last_model.expect("trained above");
    let acc = metrics::accuracy(&test, |f| model.predict(f));
    let report = metrics::binary_report(&test, |f| model.predict(f));
    println!("\nheld-out accuracy: {acc:.3}");
    println!(
        "precision {:.3}  recall {:.3}  f1 {:.3}",
        report.precision, report.recall, report.f1
    );
    let majority = test
        .iter()
        .filter(|p| p.label == 0.0)
        .count()
        .max(test.iter().filter(|p| p.label == 1.0).count()) as f64
        / test.num_points() as f64;
    println!("majority-class baseline: {majority:.3}");
    assert!(acc > majority, "the SVM should beat always-majority");
    println!("cart_abandonment OK");
    Ok(())
}
