//! Quickstart: the smallest end-to-end tour of the public API.
//!
//! Builds a toy warehouse, prepares data with SQL, recodes + dummy-codes
//! it **inside the SQL engine** via UDFs, and hands it to an SVM job two
//! ways: through shared files and through the parallel streaming
//! transfer.
//!
//! Run with: `cargo run --release --example quickstart`

use sqlml_common::schema::{DataType, Field, Schema};
use sqlml_common::{Row, SplitMix64, Value};
use sqlml_core::{ClusterConfig, Pipeline, PipelineRequest, SimCluster, Strategy};
use sqlml_transform::TransformSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulated cluster: DFS + MPP SQL engine + ML workers +
    //    streaming coordinator, on 2 nodes.
    let cluster = SimCluster::start(ClusterConfig::for_tests())?;

    // 2. A toy table: loan applications with two categorical columns.
    let schema = Schema::new(vec![
        Field::new("income", DataType::Double),
        Field::new("debt", DataType::Double),
        Field::categorical("employment"),
        Field::categorical("approved"),
    ]);
    let mut rng = SplitMix64::new(7);
    let rows: Vec<Row> = (0..2_000)
        .map(|_| {
            let income = 30.0 + rng.next_f64() * 90.0;
            let debt = rng.next_f64() * 50.0;
            let employment = *rng.choose(&["salaried", "self_employed", "student"]);
            // Approval depends on income vs debt: a learnable rule.
            let approved = if income - 1.5 * debt > 40.0 {
                "Yes"
            } else {
                "No"
            };
            Row::new(vec![
                Value::Double(income),
                Value::Double(debt),
                Value::Str(employment.into()),
                Value::Str(approved.into()),
            ])
        })
        .collect();
    cluster.engine.register_rows("loans", schema, rows);

    // 3. Prepare + transform + train, with one call per strategy.
    let request = PipelineRequest {
        prep_sql: "SELECT income, debt, employment, approved FROM loans \
                   WHERE income > 35.0"
            .to_string(),
        // Recode both categorical columns; one-hot the employment type.
        spec: TransformSpec::new(&["employment"]),
        // Transformed layout: income, debt, employment_salaried,
        // employment_self_employed, employment_student, approved → the
        // label is column 5.
        ml_command: "svm label=5 iterations=100".to_string(),
    };

    let pipeline = Pipeline::new(&cluster);
    for strategy in [Strategy::Naive, Strategy::InSql, Strategy::InSqlStream] {
        let report = pipeline.run(&request, strategy)?;
        println!("=== {} ===", strategy.label());
        println!("rows to ML: {}", report.rows_to_ml);
        print!("{}", report.timer);
        if let Some(stats) = &report.stream_stats {
            println!(
                "streamed {} bytes over {} splits ({} local)",
                stats.bytes_sent, stats.num_splits, stats.local_splits
            );
        }
        // Sanity-check the model on two obvious cases.
        let rich = report.model.predict(&[110.0, 5.0, 1.0, 0.0, 0.0]);
        let indebted = report.model.predict(&[40.0, 45.0, 1.0, 0.0, 0.0]);
        println!("predict(rich)={rich}  predict(indebted)={indebted}\n");
        assert_eq!(rich, 1.0, "model should approve the easy case");
        assert_eq!(indebted, 0.0, "model should reject the hard case");
    }
    println!("quickstart OK");
    Ok(())
}
