//! Queue-based transfer (§8 future work): publish the prepared data to a
//! Kafka-like broker once, then train several models from the same log —
//! including a consumer that crashes mid-read and replays, with the SQL
//! side never involved again.
//!
//! Run with: `cargo run --release --example multi_model_queue`

use std::sync::Arc;

use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{ClusterConfig, SimCluster, WorkloadScale};
use sqlml_mq::{broker::BrokerConfig, session, Broker, ConsumerFaults};
use sqlml_transform::{InSqlTransformer, TransformSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = SimCluster::start(ClusterConfig::default())?;
    cluster.load_workload(
        WorkloadScale {
            carts: 40_000,
            users: 800,
        },
        77,
    )?;
    let engine = &cluster.engine;

    // Prepare + transform In-SQL, as usual.
    engine.execute(&format!("CREATE TABLE prep AS {PREP_QUERY}"))?;
    let transformer = InSqlTransformer::new(engine.clone());
    let out = transformer.transform("prep", &TransformSpec::new(&["gender"]))?;
    let rows = out.table.num_rows();
    engine.register_table("handoff", out.table);

    // Publish once.
    let broker = Broker::new(BrokerConfig::default());
    session::install_udf(engine, &broker);
    let (published, bytes, schema) =
        session::publish_table(engine, &broker, "handoff", "prepared-data")?;
    println!("published {published} rows ({bytes} bytes) to topic 'prepared-data'");
    assert_eq!(published as usize, rows);

    // Train four different models from the same topic — the "Kafka as
    // cache" workflow.
    for command in [
        "svm label=4 iterations=30",
        "logreg label=4 iterations=30",
        "nb label=4",
        "tree label=4 depth=4",
    ] {
        let job = session::run_mq_job(
            &broker,
            "prepared-data",
            schema.clone(),
            command,
            cluster.ml_job_config(),
            None,
        )?;
        println!(
            "trained {:<10} from the log: {} rows in {:.1?} (+{:.1?} training)",
            job.model.kind(),
            job.ingest.rows,
            job.ingest.duration,
            job.train_duration
        );
        assert_eq!(job.ingest.rows, rows);
    }

    // A consumer crash replays from the durable log; the SQL side is
    // never re-run (contrast with §6's socket restart protocol).
    let faults = Arc::new(ConsumerFaults::new());
    faults.fail_partition_after(0, 3);
    let job = session::run_mq_job(
        &broker,
        "prepared-data",
        schema,
        "nb label=4",
        cluster.ml_job_config(),
        Some(Arc::clone(&faults)),
    )?;
    println!(
        "\nconsumer fault fired ({:?}) — replayed from the log, {} rows, exactly once",
        faults.fired(),
        job.ingest.rows
    );
    assert_eq!(job.ingest.rows, rows);
    assert_eq!(faults.fired().len(), 1);
    println!("multi_model_queue OK");
    Ok(())
}
