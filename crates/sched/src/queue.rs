//! Bounded admission queue with weighted fair queueing across tenants.
//!
//! Classic WFQ by virtual finish times: each tenant keeps a FIFO of its
//! queued items, each stamped `max(vtime, tenant.last_finish) +
//! cost/weight` at admission. [`FairQueue::pop`] always takes the
//! globally smallest stamp, so service interleaves tenants in proportion
//! to their weights regardless of arrival bursts — a tenant that dumps
//! 100 queries cannot starve a tenant that submits one.
//!
//! The queue is **bounded**: admission past `capacity` fails immediately
//! with [`RejectReason::QueueFull`]. Backpressure is the caller's to
//! handle (retry, shed, or surface to the user) — the serving plane
//! never buffers unboundedly.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use parking_lot::{Condvar, Mutex};

/// Why a submission was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission queue is at capacity; retry later or shed load.
    QueueFull { capacity: usize },
    /// The scheduler is shutting down and accepts no new work.
    ShuttingDown,
    /// The request failed upfront validation (bad SQL, bad ML command).
    Invalid(String),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queued)")
            }
            RejectReason::ShuttingDown => write!(f, "scheduler is shutting down"),
            RejectReason::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

/// A refused submission (the error type of `submit`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    pub reason: RejectReason,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rejected: {}", self.reason)
    }
}

impl std::error::Error for Rejected {}

/// Per-tenant scheduling state.
struct Tenant<T> {
    weight: u32,
    /// Virtual finish time of this tenant's most recently admitted item.
    last_finish: f64,
    /// (virtual finish stamp, item), FIFO per tenant.
    items: VecDeque<(f64, T)>,
}

struct State<T> {
    tenants: HashMap<String, Tenant<T>>,
    /// Total queued items across all tenants.
    queued: usize,
    /// Global virtual time: advances to the stamp of each popped item.
    vtime: f64,
    closed: bool,
}

/// The bounded weighted-fair admission queue.
pub struct FairQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> FairQueue<T> {
    pub fn new(capacity: usize) -> FairQueue<T> {
        FairQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                tenants: HashMap::new(),
                queued: 0,
                vtime: 0.0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Set a tenant's weight (default 1). Affects items admitted from now
    /// on; already-queued stamps keep their order.
    pub fn set_weight(&self, tenant: &str, weight: u32) {
        let mut st = self.state.lock();
        st.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant {
                weight: 1,
                last_finish: 0.0,
                items: VecDeque::new(),
            })
            .weight = weight.max(1);
    }

    /// Admit an item for `tenant` with WFQ service cost `cost` (any
    /// consistent unit; the serving plane uses worker slots). Returns the
    /// queue depth after admission, or the reject reason.
    pub fn push(&self, tenant: &str, cost: f64, item: T) -> Result<usize, Rejected> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(Rejected {
                reason: RejectReason::ShuttingDown,
            });
        }
        if st.queued >= self.capacity {
            return Err(Rejected {
                reason: RejectReason::QueueFull {
                    capacity: self.capacity,
                },
            });
        }
        let vtime = st.vtime;
        let entry = st
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant {
                weight: 1,
                last_finish: 0.0,
                items: VecDeque::new(),
            });
        let stamp = vtime.max(entry.last_finish) + cost.max(0.0) / f64::from(entry.weight.max(1));
        entry.last_finish = stamp;
        entry.items.push_back((stamp, item));
        st.queued += 1;
        let depth = st.queued;
        drop(st);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Take the item with the smallest virtual finish stamp, blocking
    /// while the queue is empty. `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            // Smallest head stamp across tenants; tenant name breaks ties
            // deterministically.
            let best = st
                .tenants
                .iter()
                .filter_map(|(name, t)| t.items.front().map(|(stamp, _)| (*stamp, name.clone())))
                .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            if let Some((stamp, name)) = best {
                let item = st
                    .tenants
                    .get_mut(&name)
                    .and_then(|t| t.items.pop_front())
                    .map(|(_, item)| item);
                if let Some(item) = item {
                    st.queued -= 1;
                    st.vtime = st.vtime.max(stamp);
                    return Some(item);
                }
            }
            if st.closed {
                return None;
            }
            self.ready.wait(&mut st);
        }
    }

    /// Close the queue: pending items still drain, new pushes are
    /// rejected, and blocked `pop`s return `None` once empty.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.state.lock().queued
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_tenant() {
        let q = FairQueue::new(10);
        for i in 0..5 {
            q.push("a", 1.0, i).unwrap();
        }
        let order: Vec<i32> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_with_capacity() {
        let q = FairQueue::new(2);
        q.push("a", 1.0, 1).unwrap();
        q.push("a", 1.0, 2).unwrap();
        let err = q.push("a", 1.0, 3).unwrap_err();
        assert_eq!(err.reason, RejectReason::QueueFull { capacity: 2 });
        assert!(err.to_string().contains("full"), "{err}");
        // Draining makes room again.
        assert_eq!(q.pop(), Some(1));
        q.push("a", 1.0, 3).unwrap();
    }

    #[test]
    fn burst_tenant_cannot_starve_a_light_one() {
        let q = FairQueue::new(100);
        // Tenant a dumps 10 items first; tenant b submits one afterwards.
        for i in 0..10 {
            q.push("a", 1.0, format!("a{i}")).unwrap();
        }
        q.push("b", 1.0, "b0".to_string()).unwrap();
        // b's single item has stamp ~1.0, equal to a's first item — it is
        // served ahead of a's long backlog (stamps 2.0, 3.0, …).
        let first_two = [q.pop().unwrap(), q.pop().unwrap()];
        assert!(
            first_two.contains(&"b0".to_string()),
            "b starved: {first_two:?}"
        );
    }

    #[test]
    fn heavier_weight_drains_proportionally_faster() {
        let q = FairQueue::new(100);
        q.set_weight("heavy", 2);
        q.set_weight("light", 1);
        for i in 0..6 {
            q.push("heavy", 1.0, format!("h{i}")).unwrap();
            q.push("light", 1.0, format!("l{i}")).unwrap();
        }
        // In the first 6 pops, the weight-2 tenant gets ~2/3 of service.
        let served: Vec<String> = (0..6).map(|_| q.pop().unwrap()).collect();
        let heavy = served.iter().filter(|s| s.starts_with('h')).count();
        assert!(heavy >= 4, "weight-2 tenant got only {heavy}/6: {served:?}");
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = Arc::new(FairQueue::new(10));
        q.push("a", 1.0, 7).unwrap();
        q.close();
        assert_eq!(
            q.push("a", 1.0, 8).unwrap_err().reason,
            RejectReason::ShuttingDown
        );
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        // A parked popper wakes up on close too.
        let q2 = Arc::new(FairQueue::<i32>::new(10));
        let popper = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn costlier_items_advance_virtual_time_more() {
        let q = FairQueue::new(100);
        // A tenant streaming expensive queries falls behind one running
        // cheap ones at equal weight.
        q.push("exp", 4.0, "e0").unwrap();
        q.push("exp", 4.0, "e1").unwrap();
        q.push("cheap", 1.0, "c0").unwrap();
        q.push("cheap", 1.0, "c1").unwrap();
        q.push("cheap", 1.0, "c2").unwrap();
        let order: Vec<&str> = (0..5).map(|_| q.pop().unwrap()).collect();
        // c0 (stamp 1), c1 (2), c2 (3) all beat e1 (stamp 8).
        let e1_pos = order.iter().position(|s| *s == "e1").unwrap();
        assert_eq!(e1_pos, 4, "{order:?}");
    }
}
