//! Bounded admission queue with weighted fair queueing across tenants.
//!
//! Classic WFQ by virtual finish times: each tenant keeps a FIFO of its
//! queued items, each stamped `max(vtime, tenant.last_finish) +
//! cost/weight` at admission. [`FairQueue::pop`] always takes the
//! globally smallest stamp, so service interleaves tenants in proportion
//! to their weights regardless of arrival bursts — a tenant that dumps
//! 100 queries cannot starve a tenant that submits one.
//!
//! The queue is **bounded**: admission past `capacity` fails immediately
//! with [`RejectReason::QueueFull`]. Backpressure is the caller's to
//! handle (retry, shed, or surface to the user) — the serving plane
//! never buffers unboundedly.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

use sqlml_common::lockorder::{TrackedCondvar, TrackedMutex};

/// Result of a bounded wait on [`FairQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open. A
    /// sharded dispatch loop uses this window to go look for work to
    /// steal from a backlogged peer.
    Empty,
    /// Closed and fully drained — the popper should exit.
    Closed,
}

/// Why a submission was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission queue is at capacity; retry later or shed load.
    QueueFull { capacity: usize },
    /// The scheduler is shutting down and accepts no new work.
    ShuttingDown,
    /// The targeted shard is draining out of the fleet (`remove_shard`
    /// in progress). Transient from the fleet's point of view: an
    /// unpinned resubmission lands on a live peer, so retry policies
    /// treat this like `QueueFull`.
    Draining { shard: usize },
    /// The request failed upfront validation (bad SQL, bad ML command).
    Invalid(String),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queued)")
            }
            RejectReason::ShuttingDown => write!(f, "scheduler is shutting down"),
            RejectReason::Draining { shard } => {
                write!(f, "shard {shard} is draining out of the fleet")
            }
            RejectReason::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

/// A refused submission (the error type of `submit`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    pub reason: RejectReason,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rejected: {}", self.reason)
    }
}

impl std::error::Error for Rejected {}

/// Per-tenant scheduling state.
struct Tenant<T> {
    weight: u32,
    /// Virtual finish time of this tenant's most recently admitted item.
    last_finish: f64,
    /// (virtual finish stamp, item), FIFO per tenant.
    items: VecDeque<(f64, T)>,
}

struct State<T> {
    tenants: HashMap<String, Tenant<T>>,
    /// Total queued items across all tenants.
    queued: usize,
    /// Global virtual time: advances to the stamp of each popped item.
    vtime: f64,
    closed: bool,
}

/// The bounded weighted-fair admission queue.
pub struct FairQueue<T> {
    capacity: usize,
    state: TrackedMutex<State<T>>,
    ready: TrackedCondvar,
}

impl<T> FairQueue<T> {
    pub fn new(capacity: usize) -> FairQueue<T> {
        FairQueue {
            capacity: capacity.max(1),
            state: TrackedMutex::new(
                "sched.queue.state",
                State {
                    tenants: HashMap::new(),
                    queued: 0,
                    vtime: 0.0,
                    closed: false,
                },
            ),
            ready: TrackedCondvar::new("sched.queue.ready"),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Set a tenant's weight (default 1). Affects items admitted from now
    /// on; already-queued stamps keep their order.
    pub fn set_weight(&self, tenant: &str, weight: u32) {
        let mut st = self.state.lock();
        st.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant {
                weight: 1,
                last_finish: 0.0,
                items: VecDeque::new(),
            })
            .weight = weight.max(1);
    }

    /// Admit an item for `tenant` with WFQ service cost `cost` (any
    /// consistent unit; the serving plane uses worker slots). Returns the
    /// queue depth after admission, or the reject reason.
    pub fn push(&self, tenant: &str, cost: f64, item: T) -> Result<usize, Rejected> {
        self.push_inner(tenant, cost, item, true)
            .map_err(|(r, _)| r)
    }

    /// [`FairQueue::push`] without the capacity bound — the shard-drain
    /// migration path, where a job evicted from a draining shard must
    /// land on its new home even if that queue is momentarily full
    /// (dropping an already-admitted query would break the zero-lost
    /// guarantee). A closed queue still refuses; the rejected item is
    /// returned so the caller can try another peer.
    pub fn force_push(&self, tenant: &str, cost: f64, item: T) -> Result<usize, (Rejected, T)> {
        self.push_inner(tenant, cost, item, false)
    }

    fn push_inner(
        &self,
        tenant: &str,
        cost: f64,
        item: T,
        bounded: bool,
    ) -> Result<usize, (Rejected, T)> {
        let mut st = self.state.lock();
        if st.closed {
            return Err((
                Rejected {
                    reason: RejectReason::ShuttingDown,
                },
                item,
            ));
        }
        if bounded && st.queued >= self.capacity {
            return Err((
                Rejected {
                    reason: RejectReason::QueueFull {
                        capacity: self.capacity,
                    },
                },
                item,
            ));
        }
        let vtime = st.vtime;
        let entry = st
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant {
                weight: 1,
                last_finish: 0.0,
                items: VecDeque::new(),
            });
        let stamp = vtime.max(entry.last_finish) + cost.max(0.0) / f64::from(entry.weight.max(1));
        entry.last_finish = stamp;
        entry.items.push_back((stamp, item));
        st.queued += 1;
        let depth = st.queued;
        drop(st);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Take the item with the smallest virtual finish stamp, blocking
    /// while the queue is empty. `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = Self::take_best(&mut st) {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            self.ready.wait(&mut st);
        }
    }

    /// [`FairQueue::pop`] with a bounded wait: [`Popped::Empty`] when
    /// nothing arrived within `timeout` (queue still open), so the caller
    /// can interleave waiting with cross-queue work stealing.
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(item) = Self::take_best(&mut st) {
                return Popped::Item(item);
            }
            if st.closed {
                return Popped::Closed;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Popped::Empty;
            }
            self.ready.wait_for(&mut st, left);
        }
    }

    /// Non-blocking conditional pop of the **head of line** — the item
    /// with the globally smallest virtual finish stamp — but only when
    /// `pred` approves it. This is the work-stealing primitive: a thief
    /// may take the victim's next-scheduled item (never digging deeper,
    /// so the victim's WFQ order is preserved), and the predicate lets
    /// cache-affinity-pinned work refuse to travel.
    pub fn try_pop_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut st = self.state.lock();
        let (stamp, name) = Self::best_head(&st)?;
        {
            let head = st
                .tenants
                .get(&name)
                .and_then(|t| t.items.front())
                .map(|(_, item)| item)?;
            if !pred(head) {
                return None;
            }
        }
        let item = st
            .tenants
            .get_mut(&name)
            .and_then(|t| t.items.pop_front())
            .map(|(_, item)| item)?;
        st.queued -= 1;
        st.vtime = st.vtime.max(stamp);
        Some(item)
    }

    /// Stamp a measured-vs-estimated cost correction back onto a tenant
    /// (§WFQ discounts): admission charged `estimated` into the tenant's
    /// virtual finish time; once the run completes the scheduler knows
    /// what the query really cost and settles the difference, so a tenant
    /// whose "cached, near-free" prediction was wrong pays full freight
    /// on its *next* stamp and virtual time stays consistent. Stamps of
    /// already-queued items are left alone (WFQ order is never reshuffled
    /// retroactively); negative corrections are floored at zero.
    pub fn settle(&self, tenant: &str, estimated: f64, measured: f64) {
        let mut st = self.state.lock();
        if let Some(t) = st.tenants.get_mut(tenant) {
            let delta = (measured - estimated) / f64::from(t.weight.max(1));
            t.last_finish = (t.last_finish + delta).max(0.0);
        }
    }

    /// Smallest head stamp across tenants; tenant name breaks ties
    /// deterministically.
    fn best_head(st: &State<T>) -> Option<(f64, String)> {
        st.tenants
            .iter()
            .filter_map(|(name, t)| t.items.front().map(|(stamp, _)| (*stamp, name.clone())))
            .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
    }

    /// Pop the globally smallest-stamped item, advancing virtual time.
    fn take_best(st: &mut State<T>) -> Option<T> {
        let (stamp, name) = Self::best_head(st)?;
        let item = st
            .tenants
            .get_mut(&name)
            .and_then(|t| t.items.pop_front())
            .map(|(_, item)| item)?;
        st.queued -= 1;
        st.vtime = st.vtime.max(stamp);
        Some(item)
    }

    /// Take *everything* queued right now, in WFQ pop order, without
    /// closing the queue. The shard-drain path: a draining shard's
    /// backlog is lifted out wholesale and re-admitted onto live peers,
    /// preserving the order WFQ would have served it in. Pushes that
    /// race this call simply land after it and are drained by the
    /// shard's own executors before they exit.
    pub fn drain_now(&self) -> Vec<T> {
        let mut st = self.state.lock();
        let mut out = Vec::with_capacity(st.queued);
        while let Some(item) = Self::take_best(&mut st) {
            out.push(item);
        }
        out
    }

    /// Close the queue: pending items still drain, new pushes are
    /// rejected, and blocked `pop`s return `None` once empty.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.state.lock().queued
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_tenant() {
        let q = FairQueue::new(10);
        for i in 0..5 {
            q.push("a", 1.0, i).unwrap();
        }
        let order: Vec<i32> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_with_capacity() {
        let q = FairQueue::new(2);
        q.push("a", 1.0, 1).unwrap();
        q.push("a", 1.0, 2).unwrap();
        let err = q.push("a", 1.0, 3).unwrap_err();
        assert_eq!(err.reason, RejectReason::QueueFull { capacity: 2 });
        assert!(err.to_string().contains("full"), "{err}");
        // Draining makes room again.
        assert_eq!(q.pop(), Some(1));
        q.push("a", 1.0, 3).unwrap();
    }

    #[test]
    fn burst_tenant_cannot_starve_a_light_one() {
        let q = FairQueue::new(100);
        // Tenant a dumps 10 items first; tenant b submits one afterwards.
        for i in 0..10 {
            q.push("a", 1.0, format!("a{i}")).unwrap();
        }
        q.push("b", 1.0, "b0".to_string()).unwrap();
        // b's single item has stamp ~1.0, equal to a's first item — it is
        // served ahead of a's long backlog (stamps 2.0, 3.0, …).
        let first_two = [q.pop().unwrap(), q.pop().unwrap()];
        assert!(
            first_two.contains(&"b0".to_string()),
            "b starved: {first_two:?}"
        );
    }

    #[test]
    fn heavier_weight_drains_proportionally_faster() {
        let q = FairQueue::new(100);
        q.set_weight("heavy", 2);
        q.set_weight("light", 1);
        for i in 0..6 {
            q.push("heavy", 1.0, format!("h{i}")).unwrap();
            q.push("light", 1.0, format!("l{i}")).unwrap();
        }
        // In the first 6 pops, the weight-2 tenant gets ~2/3 of service.
        let served: Vec<String> = (0..6).map(|_| q.pop().unwrap()).collect();
        let heavy = served.iter().filter(|s| s.starts_with('h')).count();
        assert!(heavy >= 4, "weight-2 tenant got only {heavy}/6: {served:?}");
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = Arc::new(FairQueue::new(10));
        q.push("a", 1.0, 7).unwrap();
        q.close();
        assert_eq!(
            q.push("a", 1.0, 8).unwrap_err().reason,
            RejectReason::ShuttingDown
        );
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        // A parked popper wakes up on close too.
        let q2 = Arc::new(FairQueue::<i32>::new(10));
        let popper = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn try_pop_if_takes_only_approved_heads() {
        let q = FairQueue::new(10);
        q.push("a", 1.0, 10).unwrap(); // head of line (stamp 1)
        q.push("a", 1.0, 20).unwrap(); // stamp 2
                                       // Predicate rejects the head: nothing moves, order intact.
        assert_eq!(q.try_pop_if(|v| *v != 10), None);
        assert_eq!(q.len(), 2);
        // Predicate approves: head (and only head) is taken.
        assert_eq!(q.try_pop_if(|v| *v == 10), Some(10));
        assert_eq!(q.pop(), Some(20));
        // Empty queue: no panic, no item.
        assert_eq!(q.try_pop_if(|_| true), None);
    }

    #[test]
    fn pop_timeout_reports_empty_then_items_then_closed() {
        let q = FairQueue::new(10);
        assert_eq!(
            q.pop_timeout(Duration::from_millis(5)),
            Popped::<i32>::Empty
        );
        q.push("a", 1.0, 1).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Popped::Item(1));
        q.push("a", 1.0, 2).unwrap();
        q.close();
        // Closed queues still drain before reporting Closed.
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Popped::Item(2));
        assert_eq!(
            q.pop_timeout(Duration::from_millis(5)),
            Popped::<i32>::Closed
        );
    }

    #[test]
    fn settle_charges_the_next_stamp_not_queued_ones() {
        let q = FairQueue::new(100);
        // "disc" is admitted at an optimistic 0.1 estimate; "full" at 1.0.
        q.push("disc", 0.1, "d0").unwrap();
        q.push("full", 1.0, "f0").unwrap();
        // The run turns out to cost full freight: settle the difference.
        q.settle("disc", 0.1, 1.0);
        // Already-queued stamps are untouched: d0 (0.1) still beats f0.
        assert_eq!(q.pop(), Some("d0"));
        // But the tenant's virtual clock advanced: its next admission is
        // stamped behind a fresh full-cost item from the other tenant.
        q.push("disc", 0.1, "d1").unwrap(); // last_finish 1.0 + 0.1 = 1.1
        assert_eq!(q.pop(), Some("f0")); // stamp 1.0 < 1.1
        assert_eq!(q.pop(), Some("d1"));
        // Settling an unknown tenant is a no-op, not a panic.
        q.settle("ghost", 0.1, 1.0);
    }

    /// Property (satellite): a tenant submitting discounted (cache-hit)
    /// queries must not starve a full-cost tenant, over random arrival
    /// orders. WFQ bounds the damage analytically: with costs 0.1 vs 1.0
    /// at equal weight, at most 10 discounted items can be stamped below
    /// each full-cost item, so full's k-th item pops within 11k pops.
    #[test]
    fn discounted_queries_do_not_starve_full_cost_tenants() {
        use sqlml_common::SplitMix64;
        for seed in 0..25u64 {
            let mut rng = SplitMix64::new(0xD15C_0000 + seed);
            let q = FairQueue::new(1000);
            let (mut nd, mut nf) = (0usize, 0usize);
            // Random interleaving of 40 discounted + 12 full arrivals.
            let mut arrivals: Vec<bool> = (0..52).map(|i| i < 40).collect();
            for i in (1..arrivals.len()).rev() {
                arrivals.swap(i, rng.next_below(i as u64 + 1) as usize);
            }
            for discounted in arrivals {
                if discounted {
                    q.push("disc", 0.1, format!("d{nd}")).unwrap();
                    nd += 1;
                } else {
                    q.push("full", 1.0, format!("f{nf}")).unwrap();
                    nf += 1;
                }
            }
            let order: Vec<String> = (0..52).map(|_| q.pop().unwrap()).collect();
            for k in 0..nf {
                let pos = order
                    .iter()
                    .position(|s| *s == format!("f{k}"))
                    .unwrap_or_else(|| panic!("f{k} starved entirely (seed {seed})"));
                assert!(
                    pos <= 11 * (k + 1),
                    "seed {seed}: full-cost item f{k} popped at {pos}, \
                     past the WFQ bound {}",
                    11 * (k + 1)
                );
            }
            // FIFO preserved within each tenant (compare indices, not
            // strings — "f9" vs "f10" would trip a lexicographic check).
            let fs: Vec<usize> = order
                .iter()
                .filter_map(|s| s.strip_prefix('f').and_then(|n| n.parse().ok()))
                .collect();
            assert!(fs.windows(2).all(|w| w[0] < w[1]), "seed {seed}: {fs:?}");
        }
    }

    /// Property (satellite): when every "discounted" prediction is wrong
    /// and the scheduler settles full cost back after each pop, service
    /// converges to ~1:1 — the optimistic estimates cannot compound into
    /// a standing advantage.
    #[test]
    fn settled_mispredictions_converge_to_fair_service() {
        use sqlml_common::SplitMix64;
        for seed in 0..10u64 {
            let mut rng = SplitMix64::new(0x5E77_1E00 + seed);
            let q = FairQueue::new(1000);
            // Closed-loop: each tenant keeps one item queued; "opt" is
            // admitted at 0.1 but always measures 1.0, "full" at 1.0.
            q.push("opt", 0.1, "o").unwrap();
            q.push("full", 1.0, "f").unwrap();
            let (mut opt_served, mut full_served) = (0usize, 0usize);
            for _ in 0..200 {
                let item = q.pop().unwrap();
                if item == "o" {
                    opt_served += 1;
                    q.settle("opt", 0.1, 1.0);
                    q.push("opt", 0.1, "o").unwrap();
                } else {
                    full_served += 1;
                    q.push("full", 1.0, "f").unwrap();
                }
                // Jitter: occasionally let the other tenant resubmit
                // first so arrival order is not fully deterministic.
                if rng.next_below(4) == 0 {
                    let _ = q.len();
                }
            }
            assert!(
                full_served >= 80,
                "seed {seed}: settled tenant still crowded out the \
                 full-cost one ({opt_served} vs {full_served} of 200)"
            );
        }
    }

    #[test]
    fn drain_now_lifts_the_backlog_in_wfq_order() {
        let q = FairQueue::new(10);
        q.push("a", 1.0, "a0").unwrap();
        q.push("a", 1.0, "a1").unwrap();
        q.push("b", 1.0, "b0").unwrap();
        let drained = q.drain_now();
        assert_eq!(drained.len(), 3);
        // WFQ order: the two stamp-1.0 heads first, then a's stamp-2.0.
        assert_eq!(drained[2], "a1");
        assert!(q.is_empty());
        // The queue stays open: new work is still admitted and served.
        q.push("a", 1.0, "a2").unwrap();
        assert_eq!(q.pop(), Some("a2"));
    }

    #[test]
    fn force_push_overrides_capacity_but_not_close() {
        let q = FairQueue::new(1);
        q.push("a", 1.0, 1).unwrap();
        assert!(q.push("a", 1.0, 2).is_err());
        // Migration may exceed the bound...
        assert_eq!(q.force_push("a", 1.0, 2).unwrap(), 2);
        assert_eq!(q.len(), 2);
        // ...but never lands on a closed queue, and hands the item back.
        q.close();
        let (err, item) = q.force_push("a", 1.0, 3).unwrap_err();
        assert_eq!(err.reason, RejectReason::ShuttingDown);
        assert_eq!(item, 3);
    }

    #[test]
    fn draining_reject_names_the_shard() {
        let r = Rejected {
            reason: RejectReason::Draining { shard: 4 },
        };
        assert!(r.to_string().contains("shard 4"), "{r}");
        assert!(r.to_string().contains("draining"), "{r}");
    }

    #[test]
    fn costlier_items_advance_virtual_time_more() {
        let q = FairQueue::new(100);
        // A tenant streaming expensive queries falls behind one running
        // cheap ones at equal weight.
        q.push("exp", 4.0, "e0").unwrap();
        q.push("exp", 4.0, "e1").unwrap();
        q.push("cheap", 1.0, "c0").unwrap();
        q.push("cheap", 1.0, "c1").unwrap();
        q.push("cheap", 1.0, "c2").unwrap();
        let order: Vec<&str> = (0..5).map(|_| q.pop().unwrap()).collect();
        // c0 (stamp 1), c1 (2), c2 (3) all beat e1 (stamp 8).
        let e1_pos = order.iter().position(|s| *s == "e1").unwrap();
        assert_eq!(e1_pos, 4, "{order:?}");
    }
}
