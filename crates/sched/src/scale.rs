//! The autoscale controller hook: load signals out, advice in.
//!
//! The scheduler itself never grows or shrinks the fleet — elasticity is
//! mechanism ([`crate::QueryScheduler::add_shard`] /
//! [`crate::QueryScheduler::remove_shard`]), and *policy* is the
//! operator's. This module is the thin contract between them:
//!
//! * [`ScaleSignal`] — what the scheduler can honestly measure about
//!   current pressure: live shard count, total backlog, the p95 of
//!   recent queue waits (how long admitted queries sat before running),
//!   and the slot-busy fraction (how saturated the worker pools are);
//! * [`ScalePolicy`] — a user-pluggable trait mapping a signal to
//!   [`ScaleAdvice`]. **No policy ships enabled by default**: with none
//!   installed, [`crate::QueryScheduler::scale_advice`] always returns
//!   [`ScaleAdvice::Hold`]. [`ThresholdScalePolicy`] is a worked example
//!   an operator can start from, not a default.
//!
//! The controller loop (observe → advise → act) belongs to the caller:
//! poll `scale_signal()`/`scale_advice()` on whatever cadence suits the
//! deployment and call `add_shard`/`remove_shard` when the advice says
//! so. Keeping actuation out of the scheduler means a misbehaving policy
//! can never wedge the serving plane from inside.

use std::collections::VecDeque;
use std::time::Duration;

use sqlml_common::lockorder::TrackedMutex;

/// A point-in-time pressure reading over the *live* (non-draining)
/// fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSignal {
    /// Live (non-draining) shards.
    pub shards: usize,
    /// Queries waiting in admission queues across the live fleet.
    pub queued: usize,
    /// p95 of recent queue waits (submission → execution start), over a
    /// sliding window of finished starts. Zero while the window is
    /// empty.
    pub queue_wait_p95: Duration,
    /// Worker slots held / capacity over the live fleet, in `[0, 1]`.
    pub slot_busy: f64,
}

/// What a policy recommends doing with the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAdvice {
    /// Pressure warrants another shard (`add_shard`).
    Grow,
    /// Leave the fleet alone.
    Hold,
    /// The fleet is over-provisioned (`remove_shard` a shard).
    Shrink,
}

/// A user-pluggable autoscale policy. Implementations must be cheap and
/// pure-ish: `advise` is called with a snapshot and must not block.
pub trait ScalePolicy: Send + Sync {
    fn advise(&self, signal: &ScaleSignal) -> ScaleAdvice;
}

/// A worked-example hysteresis policy: grow when queue waits or slot
/// saturation cross the high-water thresholds, shrink only when the
/// fleet is idle *and* above its floor. Not installed by default.
#[derive(Debug, Clone)]
pub struct ThresholdScalePolicy {
    /// Grow when the queue-wait p95 exceeds this.
    pub grow_wait_p95: Duration,
    /// Grow when the slot-busy fraction exceeds this.
    pub grow_slot_busy: f64,
    /// Shrink only when the slot-busy fraction is below this *and*
    /// nothing is queued.
    pub shrink_slot_busy: f64,
    /// Never advise shrinking below this many shards.
    pub min_shards: usize,
    /// Never advise growing past this many shards.
    pub max_shards: usize,
}

impl Default for ThresholdScalePolicy {
    fn default() -> Self {
        ThresholdScalePolicy {
            grow_wait_p95: Duration::from_millis(500),
            grow_slot_busy: 0.85,
            shrink_slot_busy: 0.2,
            min_shards: 1,
            max_shards: 8,
        }
    }
}

impl ScalePolicy for ThresholdScalePolicy {
    fn advise(&self, signal: &ScaleSignal) -> ScaleAdvice {
        let pressured =
            signal.queue_wait_p95 > self.grow_wait_p95 || signal.slot_busy > self.grow_slot_busy;
        if pressured && signal.shards < self.max_shards {
            return ScaleAdvice::Grow;
        }
        let idle = signal.queued == 0 && signal.slot_busy < self.shrink_slot_busy;
        if idle && signal.shards > self.min_shards {
            return ScaleAdvice::Shrink;
        }
        ScaleAdvice::Hold
    }
}

/// Sliding window of recent queue waits, feeding
/// [`ScaleSignal::queue_wait_p95`]. Bounded (oldest samples fall off) so
/// the signal tracks *current* pressure, not the whole run's history.
pub(crate) struct WaitWindow {
    samples: TrackedMutex<VecDeque<Duration>>,
    cap: usize,
}

impl WaitWindow {
    pub fn new(cap: usize) -> WaitWindow {
        WaitWindow {
            samples: TrackedMutex::new("sched.scale.samples", VecDeque::new()),
            cap: cap.max(1),
        }
    }

    /// Record one query's queue wait (called as it starts running).
    pub fn record(&self, wait: Duration) {
        let mut s = self.samples.lock();
        if s.len() == self.cap {
            s.pop_front();
        }
        s.push_back(wait);
    }

    /// The p95 of the window (nearest-rank); zero when empty.
    pub fn p95(&self) -> Duration {
        let mut sorted: Vec<Duration> = self.samples.lock().iter().copied().collect();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        sorted.sort_unstable();
        let rank = (sorted.len() * 95).div_ceil(100);
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(shards: usize, queued: usize, p95_ms: u64, busy: f64) -> ScaleSignal {
        ScaleSignal {
            shards,
            queued,
            queue_wait_p95: Duration::from_millis(p95_ms),
            slot_busy: busy,
        }
    }

    #[test]
    fn threshold_policy_grows_under_pressure_and_shrinks_when_idle() {
        let p = ThresholdScalePolicy::default();
        // Long queue waits → grow; saturated slots → grow.
        assert_eq!(p.advise(&signal(1, 5, 800, 0.5)), ScaleAdvice::Grow);
        assert_eq!(p.advise(&signal(2, 5, 100, 0.95)), ScaleAdvice::Grow);
        // Idle above the floor → shrink; idle at the floor → hold.
        assert_eq!(p.advise(&signal(3, 0, 0, 0.0)), ScaleAdvice::Shrink);
        assert_eq!(p.advise(&signal(1, 0, 0, 0.0)), ScaleAdvice::Hold);
        // Moderate load → hold; pressure at the ceiling → hold.
        assert_eq!(p.advise(&signal(2, 1, 100, 0.5)), ScaleAdvice::Hold);
        let capped = ThresholdScalePolicy {
            max_shards: 2,
            ..ThresholdScalePolicy::default()
        };
        assert_eq!(capped.advise(&signal(2, 9, 900, 0.99)), ScaleAdvice::Hold);
    }

    #[test]
    fn wait_window_p95_tracks_the_recent_tail() {
        let w = WaitWindow::new(100);
        assert_eq!(w.p95(), Duration::ZERO);
        for ms in 1..=100u64 {
            w.record(Duration::from_millis(ms));
        }
        assert_eq!(w.p95(), Duration::from_millis(95));
        // The window is bounded: a flood of fast samples pushes the old
        // slow tail out entirely.
        for _ in 0..100 {
            w.record(Duration::from_millis(1));
        }
        assert_eq!(w.p95(), Duration::from_millis(1));
    }
}
