//! The epoch-versioned shard registry: the fleet membership table behind
//! the elastic serving plane.
//!
//! Before elasticity the scheduler held its shards in a plain
//! `Arc<Vec<Shard>>` fixed at construction. Runtime join/leave breaks
//! that in two ways: shard *indices* stop being stable identities (shard
//! 2 may leave while shard 3 stays), and any code that iterates the
//! fleet (placement probes, work stealing, stats) can race a resize and
//! observe a half-updated table. The registry fixes both:
//!
//! * every shard gets a **stable id** assigned at registration and never
//!   reused — handles, counters, and pinning all speak ids, not indices;
//! * readers take a [`Snapshot`]: an `Arc` clone of the current
//!   membership vector plus the **epoch** (bumped on every join/leave).
//!   A snapshot is immutable and internally consistent — probing,
//!   stealing, and stats iterate it without holding the registry lock,
//!   so a concurrent resize can never interleave mismatched per-shard
//!   views;
//! * leave is a two-phase **drain protocol**: [`ShardRegistry::begin_drain`]
//!   flips the shard's draining flag *under the write lock*, where it can
//!   atomically check that at least one non-draining peer remains — two
//!   racing `remove_shard` calls can therefore never drain the whole
//!   fleet and strand migrating jobs with nowhere to go.
//!
//! Lock discipline: the registry holds exactly one lock
//! (`sched.registry`), taken briefly for snapshot/insert/remove and
//! never while touching a shard's queue or governor. The scheduler's
//! outer locks (`sched.tenants`, `sched.workers`) order strictly before
//! it; see `xtask/lock-order.manifest`.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use sqlml_cache::CacheManager;
use sqlml_common::lockorder::TrackedRwLock;
use sqlml_core::SimCluster;

use crate::governor::WorkerGovernor;
use crate::queue::FairQueue;

/// Per-shard serving counters (monotonic).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub admitted: AtomicU64,
    pub stolen: AtomicU64,
    pub affinity_hits: AtomicU64,
    /// Queued jobs this shard adopted from a draining peer.
    pub migrated_in: AtomicU64,
}

/// One serving shard: a cluster plus its queue, governor, cache,
/// counters, and drain flag. `T` is the queue's item type (the
/// scheduler's `Job`, which itself holds an `Arc<ShardEntry<Job>>` back
/// to its home shard — the cycle is broken because queues are drained
/// before an entry is dropped).
pub(crate) struct ShardEntry<T> {
    id: usize,
    pub cluster: Arc<SimCluster>,
    pub queue: FairQueue<T>,
    pub governor: WorkerGovernor,
    pub cache: Option<Arc<CacheManager>>,
    pub counters: ShardCounters,
    draining: AtomicBool,
}

impl<T> ShardEntry<T> {
    /// The shard's stable id: assigned at registration, never reused.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the shard is on its way out of the fleet: the router no
    /// longer places onto it, thieves no longer steal from it, and its
    /// own executors no longer steal from peers.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

impl<T> fmt::Debug for ShardEntry<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardEntry")
            .field("id", &self.id)
            .field("queue_depth", &self.queue.len())
            .field("draining", &self.is_draining())
            .finish()
    }
}

/// An immutable, internally consistent view of the fleet at one epoch.
/// Cheap to take (one `Arc` clone under a brief read lock) and cheap to
/// hold — membership changes build a fresh vector, they never mutate one
/// a snapshot may still reference.
pub(crate) struct Snapshot<T> {
    epoch: u64,
    shards: Arc<Vec<Arc<ShardEntry<T>>>>,
}

impl<T> Snapshot<T> {
    /// The membership epoch this snapshot was taken at (bumped on every
    /// join/leave; equal epochs ⇒ identical membership).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn shards(&self) -> &[Arc<ShardEntry<T>>] {
        &self.shards
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Find a shard by stable id.
    pub fn find(&self, id: usize) -> Option<&Arc<ShardEntry<T>>> {
        self.shards.iter().find(|s| s.id() == id)
    }
}

struct Registered<T> {
    epoch: u64,
    shards: Arc<Vec<Arc<ShardEntry<T>>>>,
}

/// Why [`ShardRegistry::begin_drain`] refused to start a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DrainRefused {
    /// No shard with that id is registered (wrong id, or already gone).
    NoSuchShard,
    /// The shard is already draining (a concurrent `remove_shard` won).
    AlreadyDraining,
    /// Removing this shard would leave no live peer to adopt its work.
    LastShard,
}

impl fmt::Display for DrainRefused {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainRefused::NoSuchShard => write!(f, "no such shard in the fleet"),
            DrainRefused::AlreadyDraining => write!(f, "shard is already draining"),
            DrainRefused::LastShard => {
                write!(f, "refusing to drain the last live shard of the fleet")
            }
        }
    }
}

/// The fleet membership table. See the module docs for the protocol.
pub(crate) struct ShardRegistry<T> {
    inner: TrackedRwLock<Registered<T>>,
    next_id: AtomicUsize,
}

impl<T> ShardRegistry<T> {
    pub fn new() -> ShardRegistry<T> {
        ShardRegistry {
            inner: TrackedRwLock::new(
                "sched.registry",
                Registered {
                    epoch: 0,
                    shards: Arc::new(Vec::new()),
                },
            ),
            next_id: AtomicUsize::new(0),
        }
    }

    /// Assemble a shard entry around a booted cluster, assigning the
    /// next stable id. The entry is not yet visible to readers — call
    /// [`ShardRegistry::insert`] once its executors are wired up.
    pub fn build_entry(
        &self,
        cluster: Arc<SimCluster>,
        queue_capacity: usize,
        worker_slots: usize,
        cache: Option<Arc<CacheManager>>,
    ) -> Arc<ShardEntry<T>> {
        let auto_slots = (cluster.config.sql_workers + cluster.config.ml_workers).max(1) * 4;
        let governor = WorkerGovernor::new(match worker_slots {
            0 => auto_slots,
            n => n,
        });
        Arc::new(ShardEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            cluster,
            queue: FairQueue::new(queue_capacity),
            governor,
            cache,
            counters: ShardCounters::default(),
            draining: AtomicBool::new(false),
        })
    }

    /// Publish a shard to readers; returns the new epoch.
    pub fn insert(&self, entry: Arc<ShardEntry<T>>) -> u64 {
        let mut inner = self.inner.write();
        let mut shards: Vec<Arc<ShardEntry<T>>> = inner.shards.as_ref().clone();
        shards.push(entry);
        inner.shards = Arc::new(shards);
        inner.epoch += 1;
        inner.epoch
    }

    /// Unpublish a shard; snapshots taken earlier keep their (now stale)
    /// view, which is safe: the entry's queue outlives them. Returns the
    /// removed entry, or `None` if the id is unknown.
    pub fn remove(&self, id: usize) -> Option<Arc<ShardEntry<T>>> {
        let mut inner = self.inner.write();
        let pos = inner.shards.iter().position(|s| s.id() == id)?;
        let mut shards: Vec<Arc<ShardEntry<T>>> = inner.shards.as_ref().clone();
        let removed = shards.remove(pos);
        inner.shards = Arc::new(shards);
        inner.epoch += 1;
        Some(removed)
    }

    /// Atomically flip a shard to draining — but only if it exists, is
    /// not already draining, and at least one non-draining peer would
    /// remain. Done under the write lock so two racing drains cannot
    /// both pass the last-live-peer check.
    pub fn begin_drain(&self, id: usize) -> Result<Arc<ShardEntry<T>>, DrainRefused> {
        let inner = self.inner.write();
        let entry = inner
            .shards
            .iter()
            .find(|s| s.id() == id)
            .ok_or(DrainRefused::NoSuchShard)?;
        if entry.is_draining() {
            return Err(DrainRefused::AlreadyDraining);
        }
        let live_peers = inner
            .shards
            .iter()
            .filter(|s| s.id() != id && !s.is_draining())
            .count();
        if live_peers == 0 {
            return Err(DrainRefused::LastShard);
        }
        entry.draining.store(true, Ordering::Release);
        Ok(Arc::clone(entry))
    }

    pub fn snapshot(&self) -> Snapshot<T> {
        let inner = self.inner.read();
        Snapshot {
            epoch: inner.epoch,
            shards: Arc::clone(&inner.shards),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_core::workload::WorkloadScale;
    use sqlml_core::ClusterConfig;

    fn registry_of(n: usize) -> ShardRegistry<u32> {
        let reg = ShardRegistry::new();
        for c in
            SimCluster::start_shards(ClusterConfig::for_tests(), n, WorkloadScale::TINY, 5).unwrap()
        {
            let entry = reg.build_entry(c, 4, 1, None);
            reg.insert(entry);
        }
        reg
    }

    #[test]
    fn snapshots_are_epoch_stamped_and_immutable() {
        let reg = registry_of(2);
        let before = reg.snapshot();
        assert_eq!((before.epoch(), before.len()), (2, 2));
        let ids: Vec<usize> = before.shards().iter().map(|s| s.id()).collect();
        assert_eq!(ids, vec![0, 1]);
        // A membership change bumps the epoch; the old snapshot is
        // untouched.
        let gone = reg.begin_drain(1).unwrap();
        reg.remove(gone.id()).unwrap();
        let after = reg.snapshot();
        assert_eq!((after.epoch(), after.len()), (3, 1));
        assert_eq!(before.len(), 2);
        assert!(before.find(1).is_some());
        assert!(after.find(1).is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let reg = registry_of(2);
        reg.begin_drain(0).unwrap();
        reg.remove(0).unwrap();
        let c =
            SimCluster::start_seeded(ClusterConfig::for_tests(), WorkloadScale::TINY, 5).unwrap();
        let entry = reg.build_entry(c, 4, 1, None);
        let fresh = entry.id();
        reg.insert(entry);
        assert_eq!(fresh, 2, "removed id 0 must not be recycled");
    }

    #[test]
    fn begin_drain_refuses_the_last_live_shard() {
        let reg = registry_of(2);
        reg.begin_drain(0).unwrap();
        // Draining 1 too would leave migrating jobs nowhere to go.
        assert_eq!(reg.begin_drain(1).unwrap_err(), DrainRefused::LastShard);
        // And a double drain of the same shard is refused, not repeated.
        assert_eq!(
            reg.begin_drain(0).unwrap_err(),
            DrainRefused::AlreadyDraining
        );
        assert_eq!(reg.begin_drain(9).unwrap_err(), DrainRefused::NoSuchShard);
    }
}
