//! The query scheduler: worker threads executing admitted pipeline
//! requests against a fleet of shard clusters, under per-shard fair
//! queues and worker-slot governors, with cache-aware placement, bounded
//! cross-shard work stealing, and per-query handles.
//!
//! Life of a query:
//!
//! 1. [`QueryScheduler::submit`] validates the request (SQL plans, ML
//!    command parses) — both can reject with a typed reason, immediately.
//! 2. The [`ShardRouter`] probes every shard's §5 cache for the request's
//!    descriptor (a cheap, non-materializing
//!    [`sqlml_cache::CacheManager::probe`]) and places the query on the
//!    shard with the best score (cache affinity vs queue depth vs slot
//!    availability). A cache-affine placement *pins* the query to its
//!    shard; a load-driven one leaves it stealable.
//! 3. The query waits in its home shard's [`FairQueue`] stamped with a
//!    **discounted** WFQ cost when the probe predicts cache reuse. After
//!    the run, the measured cost (from the actual
//!    [`sqlml_core::CacheMode`]) is settled back onto the tenant's
//!    virtual clock, so mispredictions cannot compound into an unfair
//!    advantage.
//! 4. An executor thread of the home shard pops it in weighted-fair
//!    order — or, if an idle peer shard finds its own queue empty, that
//!    peer **steals** the head-of-line query of the most-backlogged shard
//!    (never a pinned one) and runs it *entirely* on the stealing
//!    cluster, preserving the §6 exactly-once restart semantics, which
//!    are local to whichever cluster executes the transfer.
//! 5. The executor acquires the query's worker-slot cost from its shard's
//!    [`WorkerGovernor`] and runs [`Pipeline::run_with`] with the query's
//!    [`CancelToken`]; cancellation (explicit or deadline) unwinds
//!    through the normal error path wherever the query ended up running.
//! 6. The outcome lands in the [`QueryHandle`]: status, shared result,
//!    the queued/running latency split, and where the query ran.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlml_cache::{CacheManager, CacheProbe, QueryDescriptor};
use sqlml_common::lockorder::{TrackedCondvar, TrackedMutex};
use sqlml_common::{CancelToken, Result, SqlmlError};
use sqlml_core::{
    describe_prep, CacheMode, Pipeline, PipelineReport, PipelineRequest, SimCluster, Strategy,
};
use sqlml_mlengine::job::TrainingSpec;

use crate::governor::WorkerGovernor;
use crate::queue::{FairQueue, Popped, RejectReason, Rejected};
use crate::retry::{retry_queue_full, RetryPolicy, SystemClock};
use crate::router::{probe_discount, ShardLoad, ShardRouter, FULL_DISCOUNT, MAP_DISCOUNT};

/// How long an idle executor waits on its own queue before scanning
/// peers for stealable work. Bounds steal latency, not correctness.
const STEAL_POLL: Duration = Duration::from_millis(10);

/// Serving-plane tunables.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Executor threads **per shard** — the maximum number of pipelines
    /// in some stage of execution (including waiting for worker slots)
    /// on one cluster at once.
    pub max_concurrent: usize,
    /// Bounded admission-queue capacity per shard (queued, not yet
    /// executing).
    pub queue_capacity: usize,
    /// Worker-slot capacity for each shard's governor. One slot ≙ one
    /// engine worker; a streaming pipeline costs `sql_workers +
    /// ml_workers` slots, a staged one `max(sql_workers, ml_workers)`.
    /// `0` = auto: `(sql_workers + ml_workers) × 4`, i.e. a
    /// multiprogramming level of ~4 streaming pipelines time-sharing each
    /// cluster.
    pub worker_slots: usize,
    /// Deadline applied to queries that don't carry their own (`None` =
    /// unbounded). Measured from submission, so queue wait counts.
    pub default_deadline: Option<Duration>,
    /// Share one §5 [`CacheManager`] per shard across that shard's
    /// queries.
    pub enable_cache: bool,
    /// Cache-aware serving: probe shard caches for placement affinity
    /// and admit predicted cache hits at a discounted WFQ cost (measured
    /// cost settles back after the run). Off = pure load routing at full
    /// cost — the ablation baseline.
    pub cache_aware: bool,
    /// Allow an idle shard to claim the head-of-line query of the
    /// most-backlogged peer (never a cache-pinned one).
    pub work_stealing: bool,
    /// Minimum victim backlog before a steal is attempted; bounds how
    /// aggressively idle shards raid peers that are merely busy, not
    /// backlogged.
    pub steal_min_backlog: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_concurrent: 4,
            queue_capacity: 32,
            worker_slots: 0,
            default_deadline: None,
            enable_cache: true,
            cache_aware: true,
            work_stealing: true,
            steal_min_backlog: 2,
        }
    }
}

/// One submission: who is asking, what to run, how to run it.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub tenant: String,
    pub request: PipelineRequest,
    pub strategy: Strategy,
    /// Per-query deadline override (measured from submission).
    pub deadline: Option<Duration>,
}

impl QuerySpec {
    pub fn new(tenant: &str, request: PipelineRequest, strategy: Strategy) -> QuerySpec {
        QuerySpec {
            tenant: tenant.to_string(),
            request,
            strategy,
            deadline: None,
        }
    }

    pub fn with_deadline(mut self, deadline: Duration) -> QuerySpec {
        self.deadline = Some(deadline);
        self
    }
}

/// Where a query is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Admitted, waiting in the fair queue (or for worker slots).
    Queued,
    /// Executing on a cluster.
    Running,
    Completed,
    Failed,
    /// Cancelled (explicitly or by deadline) before completing.
    Cancelled,
}

/// The queued/running/total latency split of a finished query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLatency {
    /// Submission → execution start (whole life for never-started runs).
    pub queued: Duration,
    /// Execution start → finish.
    pub running: Duration,
    /// Submission → finish.
    pub total: Duration,
}

struct QueryState {
    status: QueryStatus,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
    /// `Arc` because neither [`PipelineReport`] nor the error is `Clone`
    /// and several waiters may want the result.
    result: Option<Arc<Result<PipelineReport>>>,
}

/// Sentinel for "never started executing" in [`QueryShared::ran_on`].
const NOT_RUN: usize = usize::MAX;

struct QueryShared {
    id: u64,
    tenant: String,
    strategy: Strategy,
    cancel: CancelToken,
    /// Shard the router placed this query on.
    placed_on: usize,
    /// Shard that actually executed it ([`NOT_RUN`] until claimed). A
    /// query runs *entirely* on one cluster — stealing moves it before
    /// execution starts, never mid-run.
    ran_on: AtomicUsize,
    stolen: AtomicBool,
    state: TrackedMutex<QueryState>,
    done: TrackedCondvar,
}

/// Serving-plane counters (monotonic except the in-flight gauge).
#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    inflight_now: AtomicUsize,
    inflight_hw: AtomicUsize,
}

/// Per-shard counters.
#[derive(Debug, Default)]
struct ShardCounters {
    admitted: AtomicU64,
    stolen: AtomicU64,
    affinity_hits: AtomicU64,
}

/// A point-in-time copy of one cluster's serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Queries the router placed on this cluster.
    pub admitted: u64,
    /// Queries this cluster stole from a backlogged peer and ran.
    pub stolen: u64,
    /// Placements driven by cache affinity (the probe hit here).
    pub cache_affinity_hits: u64,
}

/// A point-in-time copy of the serving-plane counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStatsSnapshot {
    pub submitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    /// Admitted and not yet finished (queued + running).
    pub inflight_now: usize,
    /// Most queries ever in flight at once.
    pub inflight_high_water: usize,
    /// Per-cluster placement/stealing/affinity counters, indexed by
    /// shard. Length 1 for a single-cluster scheduler.
    pub per_cluster: Vec<ClusterCounters>,
}

/// Move a query to its terminal state exactly once. Returns false when
/// it was already terminal (e.g. cancelled while this worker ran it —
/// the stale result is discarded).
fn finalize(shared: &QueryShared, stats: &Stats, result: Result<PipelineReport>) -> bool {
    let status = match &result {
        Ok(_) => QueryStatus::Completed,
        Err(e) if e.is_cancelled() => QueryStatus::Cancelled,
        Err(_) => QueryStatus::Failed,
    };
    {
        let mut st = shared.state.lock();
        if st.result.is_some() {
            return false;
        }
        st.status = status;
        st.finished = Some(Instant::now());
        st.result = Some(Arc::new(result));
        // Counters update before the lock drops so a waiter woken by the
        // result never reads a snapshot that still counts this query as
        // in flight.
        match status {
            QueryStatus::Completed => stats.completed.fetch_add(1, Ordering::Relaxed),
            QueryStatus::Cancelled => stats.cancelled.fetch_add(1, Ordering::Relaxed),
            _ => stats.failed.fetch_add(1, Ordering::Relaxed),
        };
        stats.inflight_now.fetch_sub(1, Ordering::Relaxed);
    }
    shared.done.notify_all();
    true
}

/// The caller's view of one submitted query.
#[derive(Clone)]
pub struct QueryHandle {
    shared: Arc<QueryShared>,
    stats: Arc<Stats>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("id", &self.shared.id)
            .field("tenant", &self.shared.tenant)
            .field("strategy", &self.shared.strategy)
            .field("status", &self.status())
            .field("placed_on", &self.shared.placed_on)
            .finish()
    }
}

impl QueryHandle {
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    pub fn tenant(&self) -> &str {
        &self.shared.tenant
    }

    pub fn strategy(&self) -> Strategy {
        self.shared.strategy
    }

    pub fn status(&self) -> QueryStatus {
        self.shared.state.lock().status
    }

    pub fn is_finished(&self) -> bool {
        self.shared.state.lock().result.is_some()
    }

    /// Shard the router placed this query on.
    pub fn placed_on(&self) -> usize {
        self.shared.placed_on
    }

    /// Shard that executed (or is executing) the query; `None` while it
    /// has not yet started. Never changes once set: a query runs entirely
    /// on one cluster.
    pub fn ran_on(&self) -> Option<usize> {
        match self.shared.ran_on.load(Ordering::Relaxed) {
            NOT_RUN => None,
            s => Some(s),
        }
    }

    /// Whether an idle peer shard stole this query from its home queue.
    pub fn was_stolen(&self) -> bool {
        self.shared.stolen.load(Ordering::Relaxed)
    }

    /// Fire the query's cancellation token. A still-queued query is
    /// finalized immediately; a running one unwinds at its next
    /// cancellation checkpoint (stage boundary or streaming frame cut).
    /// Cooperative by design: a run past its last checkpoint may still
    /// complete and deliver its result.
    pub fn cancel(&self, reason: &str) {
        self.shared.cancel.cancel(reason);
        let still_queued = self.shared.state.lock().status == QueryStatus::Queued;
        if still_queued {
            finalize(
                &self.shared,
                &self.stats,
                Err(SqlmlError::Cancelled(format!("while queued: {reason}"))),
            );
        }
    }

    /// Block until the query finishes; returns the shared result.
    pub fn wait(&self) -> Arc<Result<PipelineReport>> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(result) = &st.result {
                return Arc::clone(result);
            }
            self.shared.done.wait(&mut st);
        }
    }

    /// Like [`QueryHandle::wait`], bounded: `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<Result<PipelineReport>>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            if let Some(result) = &st.result {
                return Some(Arc::clone(result));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            self.shared.done.wait_for(&mut st, left);
        }
    }

    /// The latency split; `None` until the query finishes.
    pub fn latency(&self) -> Option<QueryLatency> {
        let st = self.shared.state.lock();
        let finished = st.finished?;
        let started = st.started.unwrap_or(finished);
        Some(QueryLatency {
            queued: started.duration_since(st.submitted),
            running: finished.duration_since(started),
            total: finished.duration_since(st.submitted),
        })
    }
}

/// What travels through a shard's fair queue to an executor thread.
struct Job {
    shared: Arc<QueryShared>,
    request: PipelineRequest,
    /// Shard whose queue admitted this job (tenant accounting lives
    /// there; cost settlement goes back to it).
    home: usize,
    /// Cache-affine placements are pinned: stealing them would turn a
    /// predicted near-free run into a full re-computation elsewhere.
    pinned: bool,
    /// Undiscounted slot cost, the unit of the WFQ cost model.
    base_cost: f64,
    /// What admission charged the tenant's virtual clock (discounted by
    /// the cache probe's prediction).
    est_cost: f64,
}

/// Worker slots a strategy occupies on a cluster: streaming holds the
/// SQL and ML sides live simultaneously; staged strategies hold one side
/// at a time, so their footprint is the wider of the two.
fn slot_cost(cluster: &SimCluster, strategy: Strategy) -> usize {
    let sql = cluster.config.sql_workers.max(1);
    let ml = cluster.config.ml_workers.max(1);
    match strategy {
        Strategy::Naive | Strategy::InSql => sql.max(ml),
        Strategy::InSqlStream => sql + ml,
    }
}

/// The WFQ cost multiplier a *measured* cache outcome implies — the
/// settlement-side twin of [`probe_discount`].
fn mode_discount(mode: CacheMode) -> f64 {
    match mode {
        CacheMode::FullResult => FULL_DISCOUNT,
        CacheMode::RecodeMap => MAP_DISCOUNT,
        CacheMode::None => 1.0,
    }
}

/// One serving shard: a cluster plus its queue, governor, cache, and
/// counters.
struct Shard {
    cluster: Arc<SimCluster>,
    queue: FairQueue<Job>,
    governor: WorkerGovernor,
    cache: Option<Arc<CacheManager>>,
    counters: ShardCounters,
}

/// The serving plane over a fleet of [`SimCluster`] shards (possibly a
/// fleet of one).
pub struct QueryScheduler {
    shards: Arc<Vec<Shard>>,
    router: ShardRouter,
    stats: Arc<Stats>,
    cache_aware: bool,
    default_deadline: Option<Duration>,
    next_id: AtomicU64,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl QueryScheduler {
    /// Single-cluster serving plane (a fleet of one shard).
    pub fn start(cluster: Arc<SimCluster>, config: SchedulerConfig) -> QueryScheduler {
        QueryScheduler::start_sharded(vec![cluster], config)
    }

    /// Spin up the executor threads over a fleet of shard clusters. Each
    /// thread is homed on one shard and owns one [`Pipeline`] over that
    /// shard's cluster; with `enable_cache` all of a shard's threads
    /// share one §5 cache. The fleet is assumed to host identical
    /// warehouses (see [`SimCluster::start_shards`]): the router may
    /// place — and an idle shard may steal — any unpinned request onto
    /// any shard.
    pub fn start_sharded(
        clusters: Vec<Arc<SimCluster>>,
        config: SchedulerConfig,
    ) -> QueryScheduler {
        assert!(
            !clusters.is_empty(),
            "a scheduler needs at least one cluster"
        );
        let stats = Arc::new(Stats::default());
        let shards: Arc<Vec<Shard>> = Arc::new(
            clusters
                .into_iter()
                .map(|cluster| {
                    let auto_slots =
                        (cluster.config.sql_workers + cluster.config.ml_workers).max(1) * 4;
                    let governor = WorkerGovernor::new(match config.worker_slots {
                        0 => auto_slots,
                        n => n,
                    });
                    let cache = config
                        .enable_cache
                        .then(|| Arc::new(CacheManager::new(cluster.engine.clone())));
                    Shard {
                        cluster,
                        queue: FairQueue::new(config.queue_capacity),
                        governor,
                        cache,
                        counters: ShardCounters::default(),
                    }
                })
                .collect(),
        );
        let threads_per_shard = config.max_concurrent.max(1);
        let workers = (0..shards.len() * threads_per_shard)
            .map(|t| {
                let me = t / threads_per_shard;
                let shards = Arc::clone(&shards);
                let stats = Arc::clone(&stats);
                let cache_aware = config.cache_aware;
                let stealing = config.work_stealing && shards.len() > 1;
                let steal_min = config.steal_min_backlog.max(1);
                std::thread::spawn(move || {
                    let shard = &shards[me];
                    let pipeline = match &shard.cache {
                        Some(c) => Pipeline::with_shared_cache(&shard.cluster, Arc::clone(c)),
                        None => Pipeline::new(&shard.cluster),
                    };
                    loop {
                        match shard.queue.pop_timeout(STEAL_POLL) {
                            Popped::Item(job) => {
                                run_one(&pipeline, &shards, me, &stats, cache_aware, job)
                            }
                            Popped::Closed => break,
                            Popped::Empty => {
                                if stealing {
                                    if let Some(job) = try_steal(&shards, me, steal_min) {
                                        run_one(&pipeline, &shards, me, &stats, cache_aware, job);
                                    }
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        QueryScheduler {
            shards,
            router: ShardRouter::new(),
            stats,
            cache_aware: config.cache_aware,
            default_deadline: config.default_deadline,
            next_id: AtomicU64::new(1),
            workers,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Submit a query. Rejections (validation, backpressure, shutdown)
    /// are immediate and carry their reason; an `Ok` handle means the
    /// query is admitted and will eventually reach a terminal status.
    pub fn submit(&self, spec: QuerySpec) -> std::result::Result<QueryHandle, Rejected> {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.validate(&spec)?;
        // Probe every shard's cache for the request's descriptor, then
        // score placement: cache affinity vs queue depth vs slots.
        let descriptor: Option<QueryDescriptor> = if self.cache_aware {
            describe_prep(&self.shards[0].cluster.engine, &spec.request.prep_sql)
                .ok()
                .flatten()
        } else {
            None
        };
        let loads: Vec<ShardLoad> = self
            .shards
            .iter()
            .map(|s| ShardLoad {
                queue_depth: s.queue.len(),
                slots_in_use: s.governor.in_use(),
                slot_capacity: s.governor.capacity(),
                probe: match (&descriptor, &s.cache) {
                    (Some(d), Some(c)) => c.probe(d, &spec.request.spec),
                    _ => CacheProbe::Miss,
                },
            })
            .collect();
        let placement = self.router.place(&loads);
        self.admit(spec, placement.shard, placement.affinity)
    }

    /// [`QueryScheduler::submit`] with client-side retry on
    /// [`RejectReason::QueueFull`] (bounded exponential backoff +
    /// jitter, deadline-aware give-up; see [`RetryPolicy`]). Permanent
    /// rejects return immediately. Each attempt counts as a submission
    /// in the stats.
    pub fn submit_with_retry(
        &self,
        spec: QuerySpec,
        policy: &RetryPolicy,
    ) -> std::result::Result<QueryHandle, Rejected> {
        let deadline = spec.deadline.or(self.default_deadline);
        retry_queue_full(policy, deadline, &SystemClock, || self.submit(spec.clone()))
    }

    /// Targeted placement: admit directly onto `shard`, bypassing the
    /// router (operator escape hatch; also how the stealing tests build
    /// deterministic backlog). The job is admitted unpinned, so an idle
    /// peer may still steal it.
    pub fn submit_to(
        &self,
        spec: QuerySpec,
        shard: usize,
    ) -> std::result::Result<QueryHandle, Rejected> {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        if shard >= self.shards.len() {
            return Err(self.reject(RejectReason::Invalid(format!(
                "no such shard {shard} (fleet of {})",
                self.shards.len()
            ))));
        }
        self.validate(&spec)?;
        self.admit(spec, shard, CacheProbe::Miss)
    }

    /// Validate up front so a bad request is a reject-with-reason, not a
    /// query that occupies a queue only to fail.
    fn validate(&self, spec: &QuerySpec) -> std::result::Result<(), Rejected> {
        if let Err(e) = TrainingSpec::parse(&spec.request.ml_command) {
            return Err(self.reject(RejectReason::Invalid(format!("ml command: {e}"))));
        }
        // Shards host identical warehouses, so shard 0's catalog answers
        // for the fleet.
        if let Err(e) = self.shards[0]
            .cluster
            .engine
            .validate(&spec.request.prep_sql)
        {
            return Err(self.reject(RejectReason::Invalid(format!("prep sql: {e}"))));
        }
        Ok(())
    }

    fn admit(
        &self,
        spec: QuerySpec,
        shard_idx: usize,
        affinity: CacheProbe,
    ) -> std::result::Result<QueryHandle, Rejected> {
        let shard = &self.shards[shard_idx];
        let cancel = match spec.deadline.or(self.default_deadline) {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let shared = Arc::new(QueryShared {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            tenant: spec.tenant.clone(),
            strategy: spec.strategy,
            cancel,
            placed_on: shard_idx,
            ran_on: AtomicUsize::new(NOT_RUN),
            stolen: AtomicBool::new(false),
            state: TrackedMutex::new(
                "sched.query.state",
                QueryState {
                    status: QueryStatus::Queued,
                    submitted: Instant::now(),
                    started: None,
                    finished: None,
                    result: None,
                },
            ),
            done: TrackedCondvar::new("sched.query.done"),
        });
        let base_cost = slot_cost(&shard.cluster, spec.strategy) as f64;
        let est_cost = if self.cache_aware {
            base_cost * probe_discount(affinity)
        } else {
            base_cost
        };
        let pinned = self.cache_aware && affinity != CacheProbe::Miss;
        let job = Job {
            shared: Arc::clone(&shared),
            request: spec.request,
            home: shard_idx,
            pinned,
            base_cost,
            est_cost,
        };
        // Count the query in flight *before* it becomes poppable — an
        // executor may pop and finalize (decrementing the gauge) the
        // instant the push lands.
        let now = self.stats.inflight_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.inflight_hw.fetch_max(now, Ordering::Relaxed);
        if let Err(rejected) = shard.queue.push(&spec.tenant, est_cost, job) {
            self.stats.inflight_now.fetch_sub(1, Ordering::Relaxed);
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(rejected);
        }
        shard.counters.admitted.fetch_add(1, Ordering::Relaxed);
        if pinned {
            shard.counters.affinity_hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(QueryHandle {
            shared,
            stats: Arc::clone(&self.stats),
        })
    }

    fn reject(&self, reason: RejectReason) -> Rejected {
        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        Rejected { reason }
    }

    /// Weighted fair share for a tenant (default 1), applied on every
    /// shard's queue (tenants are fleet-wide identities).
    pub fn set_tenant_weight(&self, tenant: &str, weight: u32) {
        for shard in self.shards.iter() {
            shard.queue.set_weight(tenant, weight);
        }
    }

    pub fn stats(&self) -> SchedStatsSnapshot {
        SchedStatsSnapshot {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            cancelled: self.stats.cancelled.load(Ordering::Relaxed),
            inflight_now: self.stats.inflight_now.load(Ordering::Relaxed),
            inflight_high_water: self.stats.inflight_hw.load(Ordering::Relaxed),
            per_cluster: self
                .shards
                .iter()
                .map(|s| ClusterCounters {
                    admitted: s.counters.admitted.load(Ordering::Relaxed),
                    stolen: s.counters.stolen.load(Ordering::Relaxed),
                    cache_affinity_hits: s.counters.affinity_hits.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Queries waiting in the admission queues right now (all shards).
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Per-shard admission-queue depths.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.queue.len()).collect()
    }

    /// Worker slots currently held / capacity, summed over the fleet.
    pub fn slot_usage(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(u, c), s| {
            (u + s.governor.in_use(), c + s.governor.capacity())
        })
    }

    /// Graceful shutdown: stop admitting, drain everything already
    /// queued, and join the executor threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for shard in self.shards.iter() {
            shard.queue.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryScheduler {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Scan peers for the most-backlogged queue and claim its head-of-line
/// query — unless that query is cache-pinned to its home shard.
fn try_steal(shards: &[Shard], me: usize, steal_min: usize) -> Option<Job> {
    let (_, victim) = shards
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != me)
        .map(|(i, s)| (s.queue.len(), i))
        .filter(|(len, _)| *len >= steal_min)
        .max_by_key(|(len, _)| *len)?;
    shards[victim].queue.try_pop_if(|job| !job.pinned)
}

/// Execute one admitted query on this worker thread (shard `me`). A
/// stolen job (`me != job.home`) runs *entirely* here: governor slots,
/// pipeline, §6 transfer state, and cache population all belong to the
/// stealing cluster; only tenant cost accounting settles back home.
fn run_one(
    pipeline: &Pipeline<'_>,
    shards: &[Shard],
    me: usize,
    stats: &Stats,
    cache_aware: bool,
    job: Job,
) {
    let shard = &shards[me];
    let shared = job.shared;
    // Hold the query's slot cost for the whole run.
    let guard = match shard
        .governor
        .acquire(slot_cost(&shard.cluster, shared.strategy), &shared.cancel)
    {
        Ok(g) => g,
        Err(e) => {
            finalize(&shared, stats, Err(e));
            return;
        }
    };
    // Claim Queued → Running; a query cancelled while queued is already
    // terminal and must not run.
    {
        let mut st = shared.state.lock();
        if st.result.is_some() {
            return;
        }
        st.status = QueryStatus::Running;
        st.started = Some(Instant::now());
    }
    shared.ran_on.store(me, Ordering::Relaxed);
    if me != job.home {
        shared.stolen.store(true, Ordering::Relaxed);
        shard.counters.stolen.fetch_add(1, Ordering::Relaxed);
    }
    let result = pipeline.run_with(&job.request, shared.strategy, &shared.cancel);
    drop(guard);
    // Settle the measured WFQ cost back onto the tenant's virtual clock
    // at the *home* shard, where admission charged the estimate.
    if cache_aware {
        if let Ok(report) = &result {
            let measured = job.base_cost * mode_discount(report.cache_use);
            if (measured - job.est_cost).abs() > f64::EPSILON {
                shards[job.home]
                    .queue
                    .settle(&shared.tenant, job.est_cost, measured);
            }
        }
    }
    finalize(&shared, stats, result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_core::workload::{WorkloadScale, PREP_QUERY};
    use sqlml_core::ClusterConfig;
    use sqlml_transform::TransformSpec;

    fn cluster() -> Arc<SimCluster> {
        let c = SimCluster::start(ClusterConfig::for_tests()).unwrap();
        c.load_workload(WorkloadScale::TINY, 11).unwrap();
        Arc::new(c)
    }

    fn request() -> PipelineRequest {
        PipelineRequest {
            prep_sql: PREP_QUERY.to_string(),
            spec: TransformSpec::new(&["gender"]),
            ml_command: "svm label=4 iterations=10".to_string(),
        }
    }

    #[test]
    fn invalid_requests_reject_with_reason() {
        let sched = QueryScheduler::start(cluster(), SchedulerConfig::default());
        let mut bad_ml = request();
        bad_ml.ml_command = "teleport label=1".into();
        let err = sched
            .submit(QuerySpec::new("t", bad_ml, Strategy::InSql))
            .unwrap_err();
        assert!(matches!(err.reason, RejectReason::Invalid(_)));
        assert!(err.to_string().contains("ml command"), "{err}");
        let mut bad_sql = request();
        bad_sql.prep_sql = "SELECT nothing FROM nowhere".into();
        let err = sched
            .submit(QuerySpec::new("t", bad_sql, Strategy::InSql))
            .unwrap_err();
        assert!(err.to_string().contains("prep sql"), "{err}");
        let s = sched.stats();
        assert_eq!((s.submitted, s.rejected), (2, 2));
        sched.shutdown();
    }

    #[test]
    fn one_query_completes_with_latency_split() {
        let sched = QueryScheduler::start(cluster(), SchedulerConfig::default());
        let handle = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSqlStream))
            .unwrap();
        let result = handle.wait();
        let report = result.as_ref().as_ref().expect("pipeline failed");
        assert!(report.rows_to_ml > 0);
        assert_eq!(handle.status(), QueryStatus::Completed);
        // A fleet of one: placed and ran on shard 0, never stolen.
        assert_eq!(handle.placed_on(), 0);
        assert_eq!(handle.ran_on(), Some(0));
        assert!(!handle.was_stolen());
        let lat = handle.latency().expect("finished queries have latency");
        assert_eq!(lat.total, lat.queued + lat.running);
        assert!(lat.running > Duration::ZERO);
        let s = sched.stats();
        assert_eq!((s.completed, s.inflight_now), (1, 0));
        assert!(s.inflight_high_water >= 1);
        assert_eq!(s.per_cluster.len(), 1);
        assert_eq!(s.per_cluster[0].admitted, 1);
        assert_eq!(s.per_cluster[0].stolen, 0);
        sched.shutdown();
    }

    #[test]
    fn zero_deadline_cancels_cleanly_and_cluster_stays_usable() {
        let sched = QueryScheduler::start(cluster(), SchedulerConfig::default());
        let doomed = sched
            .submit(
                QuerySpec::new("t", request(), Strategy::InSqlStream).with_deadline(Duration::ZERO),
            )
            .unwrap();
        let result = doomed.wait();
        let err = result.as_ref().as_ref().unwrap_err();
        assert!(err.is_cancelled(), "expected cancellation, got {err}");
        assert_eq!(doomed.status(), QueryStatus::Cancelled);
        // The shared cluster is unharmed: the next query completes.
        let ok = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSqlStream))
            .unwrap();
        assert!(ok.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }

    #[test]
    fn explicit_cancel_of_a_queued_query_is_immediate() {
        // No executor will ever pop: fill the only worker with a query
        // first, then cancel the one stuck behind it.
        let sched = QueryScheduler::start(
            cluster(),
            SchedulerConfig {
                max_concurrent: 1,
                ..SchedulerConfig::default()
            },
        );
        let first = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        let second = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        second.cancel("user pressed ctrl-c");
        let result = second.wait();
        let err = result.as_ref().as_ref().unwrap_err();
        assert!(err.to_string().contains("ctrl-c"), "{err}");
        assert!(first.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }

    #[test]
    fn submit_with_retry_rides_out_a_transient_full_queue() {
        let sched = QueryScheduler::start(
            cluster(),
            SchedulerConfig {
                max_concurrent: 1,
                queue_capacity: 1,
                ..SchedulerConfig::default()
            },
        );
        // Fill the single executor + single queue slot. The first query
        // occupies the queue slot until the worker pops it, so wait for
        // it to start running before claiming the slot for the second —
        // otherwise this submit races the pop and can bounce.
        let running = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        let started = Instant::now();
        while running.status() == QueryStatus::Queued {
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "first query never left the queue"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        // A plain submit bounces; a retried one is admitted once the
        // backlog drains.
        assert!(sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .is_err());
        let policy = RetryPolicy {
            max_attempts: 60,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(200),
            jitter: 0.0,
            seed: 1,
        };
        let retried = sched
            .submit_with_retry(QuerySpec::new("t", request(), Strategy::InSql), &policy)
            .expect("retry should eventually be admitted");
        assert!(running.wait().as_ref().as_ref().is_ok());
        assert!(queued.wait().as_ref().as_ref().is_ok());
        assert!(retried.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }

    #[test]
    fn submit_to_rejects_an_out_of_range_shard() {
        let sched = QueryScheduler::start(cluster(), SchedulerConfig::default());
        let err = sched
            .submit_to(QuerySpec::new("t", request(), Strategy::InSql), 3)
            .unwrap_err();
        assert!(matches!(err.reason, RejectReason::Invalid(_)));
        assert!(err.to_string().contains("no such shard"), "{err}");
        sched.shutdown();
    }
}
