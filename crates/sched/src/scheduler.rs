//! The query scheduler: worker threads executing admitted pipeline
//! requests against a fleet of shard clusters, under per-shard fair
//! queues and worker-slot governors, with cache-aware placement, bounded
//! cross-shard work stealing, and per-query handles.
//!
//! Life of a query:
//!
//! 1. [`QueryScheduler::submit`] validates the request (SQL plans, ML
//!    command parses) — both can reject with a typed reason, immediately.
//! 2. The [`ShardRouter`] probes every shard's §5 cache for the request's
//!    descriptor (a cheap, non-materializing
//!    [`sqlml_cache::CacheManager::probe`]) and places the query on the
//!    shard with the best score (cache affinity vs queue depth vs slot
//!    availability). A cache-affine placement *pins* the query to its
//!    shard; a load-driven one leaves it stealable.
//! 3. The query waits in its home shard's [`FairQueue`] stamped with a
//!    **discounted** WFQ cost when the probe predicts cache reuse. After
//!    the run, the measured cost (from the actual
//!    [`sqlml_core::CacheMode`]) is settled back onto the tenant's
//!    virtual clock, so mispredictions cannot compound into an unfair
//!    advantage.
//! 4. An executor thread of the home shard pops it in weighted-fair
//!    order — or, if an idle peer shard finds its own queue empty, that
//!    peer **steals** the head-of-line query of the most-backlogged shard
//!    (never a pinned one) and runs it *entirely* on the stealing
//!    cluster, preserving the §6 exactly-once restart semantics, which
//!    are local to whichever cluster executes the transfer.
//! 5. The executor acquires the query's worker-slot cost from its shard's
//!    [`WorkerGovernor`] and runs [`Pipeline::run_with`] with the query's
//!    [`CancelToken`]; cancellation (explicit or deadline) unwinds
//!    through the normal error path wherever the query ended up running.
//! 6. The outcome lands in the [`QueryHandle`]: status, shared result,
//!    the queued/running latency split, and where the query ran.
//!
//! The fleet is **elastic**: shard membership lives in an epoch-versioned
//! [`ShardRegistry`] rather than a fixed vector, so
//! [`QueryScheduler::add_shard`] can boot and publish a fresh warehouse
//! at runtime and [`QueryScheduler::remove_shard`] can drain one out —
//! placement, stealing, and stats always iterate one consistent
//! [`Snapshot`]. Shards are addressed by **stable id** (assigned at
//! registration, never reused), which is what `placed_on`/`ran_on`,
//! pinned submissions, and per-cluster counters report. Construction
//! goes through [`SchedulerBuilder`] (`QueryScheduler::builder(config)`);
//! the submit surface is [`QueryScheduler::submit`] +
//! [`QueryScheduler::submit_opts`] with [`SubmitOpts`]. The pre-elastic
//! constructors and submit variants remain as deprecated wrappers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sqlml_cache::{CacheManager, CacheProbe, QueryDescriptor};
use sqlml_common::lockorder::{TrackedCondvar, TrackedMutex};
use sqlml_common::{CancelToken, Result, SqlmlError};
use sqlml_core::workload::WorkloadScale;
use sqlml_core::{
    describe_prep, CacheMode, ClusterConfig, Pipeline, PipelineReport, PipelineRequest, SimCluster,
    Strategy,
};
use sqlml_mlengine::job::TrainingSpec;

use crate::queue::{Popped, RejectReason, Rejected};
use crate::registry::{ShardEntry, ShardRegistry, Snapshot};
use crate::retry::{retry_queue_full, RetryPolicy, SystemClock};
use crate::router::{probe_discount, ShardLoad, ShardRouter, FULL_DISCOUNT, MAP_DISCOUNT};
use crate::scale::{ScaleAdvice, ScalePolicy, ScaleSignal, WaitWindow};

/// How long an idle executor waits on its own queue before scanning
/// peers for stealable work. Bounds steal latency, not correctness.
const STEAL_POLL: Duration = Duration::from_millis(10);

/// Queue-wait samples retained for [`ScaleSignal::queue_wait_p95`].
const WAIT_WINDOW: usize = 256;

/// How many fresh-snapshot placement attempts a drain migration makes
/// per job before declaring the fleet collapsed. Each retry only fires
/// when the chosen peer closed between snapshot and push — i.e. another
/// shard drained concurrently — so the bound is effectively the number
/// of simultaneous drains the migration can ride out.
const MIGRATE_RETRIES: usize = 8;

/// Serving-plane tunables.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Executor threads **per shard** — the maximum number of pipelines
    /// in some stage of execution (including waiting for worker slots)
    /// on one cluster at once.
    pub max_concurrent: usize,
    /// Bounded admission-queue capacity per shard (queued, not yet
    /// executing).
    pub queue_capacity: usize,
    /// Worker-slot capacity for each shard's governor. One slot ≙ one
    /// engine worker; a streaming pipeline costs `sql_workers +
    /// ml_workers` slots, a staged one `max(sql_workers, ml_workers)`.
    /// `0` = auto: `(sql_workers + ml_workers) × 4`, i.e. a
    /// multiprogramming level of ~4 streaming pipelines time-sharing each
    /// cluster.
    pub worker_slots: usize,
    /// Deadline applied to queries that don't carry their own (`None` =
    /// unbounded). Measured from submission, so queue wait counts.
    pub default_deadline: Option<Duration>,
    /// Share one §5 [`CacheManager`] per shard across that shard's
    /// queries.
    pub enable_cache: bool,
    /// Cache-aware serving: probe shard caches for placement affinity
    /// and admit predicted cache hits at a discounted WFQ cost (measured
    /// cost settles back after the run). Off = pure load routing at full
    /// cost — the ablation baseline.
    pub cache_aware: bool,
    /// Allow an idle shard to claim the head-of-line query of the
    /// most-backlogged peer (never a cache-pinned one).
    pub work_stealing: bool,
    /// Minimum victim backlog before a steal is attempted; bounds how
    /// aggressively idle shards raid peers that are merely busy, not
    /// backlogged.
    pub steal_min_backlog: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_concurrent: 4,
            queue_capacity: 32,
            worker_slots: 0,
            default_deadline: None,
            enable_cache: true,
            cache_aware: true,
            work_stealing: true,
            steal_min_backlog: 2,
        }
    }
}

/// The recipe for booting one more identical shard warehouse: the same
/// (config, scale, seed) triple [`SimCluster::start_shards`] replicates
/// at fleet boot, kept so [`QueryScheduler::add_shard`] can boot an
/// identical replacement at runtime. The identical seed makes the new
/// warehouse byte-identical to its peers, so results never depend on
/// placement.
#[derive(Debug, Clone)]
pub struct ShardTemplate {
    pub config: ClusterConfig,
    pub scale: WorkloadScale,
    pub seed: u64,
}

/// Builds a [`QueryScheduler`]: the one construction path behind both
/// the deprecated `start`/`start_sharded` wrappers and elastic fleets.
///
/// Shards come from either (or both) of:
/// * [`SchedulerBuilder::cluster`] / [`SchedulerBuilder::clusters`] —
///   pre-booted [`SimCluster`]s the caller owns;
/// * [`SchedulerBuilder::warehouse`] + [`SchedulerBuilder::shards`] — a
///   [`ShardTemplate`] the builder boots `n` identical shards from. The
///   template is retained, which is what arms
///   [`QueryScheduler::add_shard`].
pub struct SchedulerBuilder {
    config: SchedulerConfig,
    clusters: Vec<Arc<SimCluster>>,
    template: Option<ShardTemplate>,
    template_shards: usize,
    default_retry: Option<RetryPolicy>,
    scale_policy: Option<Box<dyn ScalePolicy>>,
}

impl SchedulerBuilder {
    fn new(config: SchedulerConfig) -> SchedulerBuilder {
        SchedulerBuilder {
            config,
            clusters: Vec::new(),
            template: None,
            template_shards: 1,
            default_retry: None,
            scale_policy: None,
        }
    }

    /// Add one pre-booted cluster as a shard.
    pub fn cluster(mut self, cluster: Arc<SimCluster>) -> SchedulerBuilder {
        self.clusters.push(cluster);
        self
    }

    /// Add pre-booted clusters as shards (replicated warehouses; see
    /// [`SimCluster::start_shards`]).
    pub fn clusters(mut self, clusters: Vec<Arc<SimCluster>>) -> SchedulerBuilder {
        self.clusters.extend(clusters);
        self
    }

    /// Set the warehouse template: `build` boots
    /// [`SchedulerBuilder::shards`] identical shards from it, and
    /// [`QueryScheduler::add_shard`] boots one more on demand.
    pub fn warehouse(mut self, config: ClusterConfig, scale: WorkloadScale, seed: u64) -> Self {
        self.template = Some(ShardTemplate {
            config,
            scale,
            seed,
        });
        self
    }

    /// How many shards to boot from the warehouse template (default 1;
    /// ignored without [`SchedulerBuilder::warehouse`]).
    pub fn shards(mut self, n: usize) -> SchedulerBuilder {
        self.template_shards = n.max(1);
        self
    }

    /// Default client-side retry policy: submissions whose
    /// [`SubmitOpts::retry`] is [`Retry::Default`] (including plain
    /// [`QueryScheduler::submit`]) ride out transient rejects with it.
    pub fn retry(mut self, policy: RetryPolicy) -> SchedulerBuilder {
        self.default_retry = Some(policy);
        self
    }

    /// Install an autoscale policy consulted by
    /// [`QueryScheduler::scale_advice`]. Advisory only — the scheduler
    /// never resizes itself. No policy is installed by default.
    pub fn scale_policy(mut self, policy: impl ScalePolicy + 'static) -> SchedulerBuilder {
        self.scale_policy = Some(Box::new(policy));
        self
    }

    /// Boot any template shards and assemble the scheduler. Fails only
    /// on template boot errors or a shardless configuration.
    pub fn build(mut self) -> Result<QueryScheduler> {
        if let Some(template) = &self.template {
            for _ in 0..self.template_shards {
                self.clusters.push(SimCluster::start_seeded(
                    template.config.clone(),
                    template.scale,
                    template.seed,
                )?);
            }
        }
        if self.clusters.is_empty() {
            return Err(SqlmlError::Execution(
                "a scheduler needs at least one cluster or a warehouse template".into(),
            ));
        }
        Ok(QueryScheduler::assemble(
            self.clusters,
            self.config,
            self.template,
            self.default_retry,
            self.scale_policy,
        ))
    }
}

/// Per-submission options for [`QueryScheduler::submit_opts`].
#[derive(Debug, Clone, Default)]
pub struct SubmitOpts {
    /// Bypass the router and admit directly onto this shard (stable id).
    /// The job is admitted unpinned, so an idle peer may still steal it.
    /// A draining target rejects with [`RejectReason::Draining`]; an
    /// unknown id with [`RejectReason::Invalid`].
    pub pin_shard: Option<usize>,
    /// Client-side retry for transient rejects (queue full, shard
    /// draining).
    pub retry: Retry,
}

impl SubmitOpts {
    /// Targeted placement onto one shard (stable id).
    pub fn pinned(shard: usize) -> SubmitOpts {
        SubmitOpts {
            pin_shard: Some(shard),
            ..SubmitOpts::default()
        }
    }

    /// Retry transient rejects with this specific policy.
    pub fn with_retry(mut self, policy: RetryPolicy) -> SubmitOpts {
        self.retry = Retry::Policy(policy);
        self
    }

    /// Never retry, even if the scheduler has a default policy.
    pub fn no_retry(mut self) -> SubmitOpts {
        self.retry = Retry::No;
        self
    }
}

/// How a submission handles transient rejects.
#[derive(Debug, Clone, Default)]
pub enum Retry {
    /// Use the scheduler's default policy ([`SchedulerBuilder::retry`]);
    /// no retry if none was configured.
    #[default]
    Default,
    /// Never retry.
    No,
    /// Retry with this policy, overriding the scheduler default.
    Policy(RetryPolicy),
}

/// What [`QueryScheduler::remove_shard`] does with the departing shard's
/// queued (not yet running) jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainPolicy {
    /// Lift the backlog out in WFQ order and re-admit it onto live
    /// peers: each job is re-placed by the router (cache-pinned jobs
    /// re-probe the surviving caches first) and force-pushed past the
    /// peer's capacity bound so nothing already admitted is ever lost.
    Migrate,
    /// Leave the backlog in place: the departing shard's own executors
    /// finish every queued job before the shard is torn down. Slower to
    /// leave, but no job changes cluster.
    Drain,
}

/// Receipt from a completed [`QueryScheduler::remove_shard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRemoval {
    /// Stable id of the removed shard.
    pub shard: usize,
    /// Queued jobs re-admitted onto live peers ([`DrainPolicy::Migrate`]).
    pub migrated: usize,
    /// Queued jobs the departing shard's own executors finished
    /// ([`DrainPolicy::Drain`]; counted at drain start).
    pub drained_in_place: usize,
}

/// One shard's row in [`QueryScheduler::fleet_snapshot`] — all fields
/// read from the same registry snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStat {
    /// Stable shard id.
    pub shard: usize,
    pub queue_depth: usize,
    pub slots_in_use: usize,
    pub slot_capacity: usize,
    pub draining: bool,
}

/// One submission: who is asking, what to run, how to run it.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub tenant: String,
    pub request: PipelineRequest,
    pub strategy: Strategy,
    /// Per-query deadline override (measured from submission).
    pub deadline: Option<Duration>,
}

impl QuerySpec {
    pub fn new(tenant: &str, request: PipelineRequest, strategy: Strategy) -> QuerySpec {
        QuerySpec {
            tenant: tenant.to_string(),
            request,
            strategy,
            deadline: None,
        }
    }

    pub fn with_deadline(mut self, deadline: Duration) -> QuerySpec {
        self.deadline = Some(deadline);
        self
    }
}

/// Where a query is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Admitted, waiting in the fair queue (or for worker slots).
    Queued,
    /// Executing on a cluster.
    Running,
    Completed,
    Failed,
    /// Cancelled (explicitly or by deadline) before completing.
    Cancelled,
}

/// The queued/running/total latency split of a finished query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLatency {
    /// Submission → execution start (whole life for never-started runs).
    pub queued: Duration,
    /// Execution start → finish.
    pub running: Duration,
    /// Submission → finish.
    pub total: Duration,
}

struct QueryState {
    status: QueryStatus,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
    /// `Arc` because neither [`PipelineReport`] nor the error is `Clone`
    /// and several waiters may want the result.
    result: Option<Arc<Result<PipelineReport>>>,
}

/// Sentinel for "never started executing" in [`QueryShared::ran_on`].
const NOT_RUN: usize = usize::MAX;

struct QueryShared {
    id: u64,
    tenant: String,
    strategy: Strategy,
    cancel: CancelToken,
    /// Stable id of the shard the router placed this query on.
    placed_on: usize,
    /// Stable id of the shard that actually executed it ([`NOT_RUN`]
    /// until claimed). A query runs *entirely* on one cluster — stealing
    /// and drain migration move it before execution starts, never
    /// mid-run.
    ran_on: AtomicUsize,
    stolen: AtomicBool,
    /// Set when a shard drain re-admitted the queued job onto a peer.
    migrated: AtomicBool,
    state: TrackedMutex<QueryState>,
    done: TrackedCondvar,
}

/// Serving-plane counters (monotonic except the in-flight gauge).
#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    inflight_now: AtomicUsize,
    inflight_hw: AtomicUsize,
    migrated: AtomicU64,
    cost_settlements: AtomicU64,
    shards_added: AtomicU64,
    shards_removed: AtomicU64,
}

/// A point-in-time copy of one cluster's serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Stable id of the shard these counters belong to.
    pub shard: usize,
    /// Queries the router placed on this cluster.
    pub admitted: u64,
    /// Queries this cluster stole from a backlogged peer and ran.
    pub stolen: u64,
    /// Placements driven by cache affinity (the probe hit here).
    pub cache_affinity_hits: u64,
    /// Queued jobs this cluster adopted from a draining peer.
    pub migrated_in: u64,
    /// The shard was mid-drain when the snapshot was taken.
    pub draining: bool,
}

/// A point-in-time copy of the serving-plane counters. All per-shard
/// rows come from one registry [`Snapshot`], so they are mutually
/// consistent even while shards join or leave.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStatsSnapshot {
    pub submitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    /// Admitted and not yet finished (queued + running).
    pub inflight_now: usize,
    /// Most queries ever in flight at once.
    pub inflight_high_water: usize,
    /// Queued jobs re-admitted onto live peers by shard drains.
    pub migrated: u64,
    /// Measured-vs-estimated WFQ cost corrections settled after runs.
    pub cost_settlements: u64,
    /// Shards that joined the fleet at runtime.
    pub shards_added: u64,
    /// Shards drained out of the fleet at runtime.
    pub shards_removed: u64,
    /// Fleet-membership epoch the per-cluster rows were read at.
    pub registry_epoch: u64,
    /// Per-cluster placement/stealing/affinity counters, in registration
    /// order; each row names its shard's stable id. Length 1 for a
    /// single-cluster scheduler.
    pub per_cluster: Vec<ClusterCounters>,
}

/// Move a query to its terminal state exactly once. Returns false when
/// it was already terminal (e.g. cancelled while this worker ran it —
/// the stale result is discarded).
fn finalize(shared: &QueryShared, stats: &Stats, result: Result<PipelineReport>) -> bool {
    let status = match &result {
        Ok(_) => QueryStatus::Completed,
        Err(e) if e.is_cancelled() => QueryStatus::Cancelled,
        Err(_) => QueryStatus::Failed,
    };
    {
        let mut st = shared.state.lock();
        if st.result.is_some() {
            return false;
        }
        st.status = status;
        st.finished = Some(Instant::now());
        st.result = Some(Arc::new(result));
        // Counters update before the lock drops so a waiter woken by the
        // result never reads a snapshot that still counts this query as
        // in flight.
        match status {
            QueryStatus::Completed => stats.completed.fetch_add(1, Ordering::Relaxed),
            QueryStatus::Cancelled => stats.cancelled.fetch_add(1, Ordering::Relaxed),
            _ => stats.failed.fetch_add(1, Ordering::Relaxed),
        };
        stats.inflight_now.fetch_sub(1, Ordering::Relaxed);
    }
    shared.done.notify_all();
    true
}

/// The caller's view of one submitted query.
#[derive(Clone)]
pub struct QueryHandle {
    shared: Arc<QueryShared>,
    stats: Arc<Stats>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("id", &self.shared.id)
            .field("tenant", &self.shared.tenant)
            .field("strategy", &self.shared.strategy)
            .field("status", &self.status())
            .field("placed_on", &self.shared.placed_on)
            .finish()
    }
}

impl QueryHandle {
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    pub fn tenant(&self) -> &str {
        &self.shared.tenant
    }

    pub fn strategy(&self) -> Strategy {
        self.shared.strategy
    }

    pub fn status(&self) -> QueryStatus {
        self.shared.state.lock().status
    }

    pub fn is_finished(&self) -> bool {
        self.shared.state.lock().result.is_some()
    }

    /// Shard the router placed this query on.
    pub fn placed_on(&self) -> usize {
        self.shared.placed_on
    }

    /// Shard that executed (or is executing) the query; `None` while it
    /// has not yet started. Never changes once set: a query runs entirely
    /// on one cluster.
    pub fn ran_on(&self) -> Option<usize> {
        match self.shared.ran_on.load(Ordering::Relaxed) {
            NOT_RUN => None,
            s => Some(s),
        }
    }

    /// Whether an idle peer shard stole this query from its home queue.
    pub fn was_stolen(&self) -> bool {
        self.shared.stolen.load(Ordering::Relaxed)
    }

    /// Whether a shard drain ([`QueryScheduler::remove_shard`] with
    /// [`DrainPolicy::Migrate`]) re-admitted this query onto a peer
    /// while it was queued.
    pub fn was_migrated(&self) -> bool {
        self.shared.migrated.load(Ordering::Relaxed)
    }

    /// Fire the query's cancellation token. A still-queued query is
    /// finalized immediately; a running one unwinds at its next
    /// cancellation checkpoint (stage boundary or streaming frame cut).
    /// Cooperative by design: a run past its last checkpoint may still
    /// complete and deliver its result.
    pub fn cancel(&self, reason: &str) {
        self.shared.cancel.cancel(reason);
        let still_queued = self.shared.state.lock().status == QueryStatus::Queued;
        if still_queued {
            finalize(
                &self.shared,
                &self.stats,
                Err(SqlmlError::Cancelled(format!("while queued: {reason}"))),
            );
        }
    }

    /// Block until the query finishes; returns the shared result.
    pub fn wait(&self) -> Arc<Result<PipelineReport>> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(result) = &st.result {
                return Arc::clone(result);
            }
            self.shared.done.wait(&mut st);
        }
    }

    /// Like [`QueryHandle::wait`], bounded: `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<Result<PipelineReport>>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            if let Some(result) = &st.result {
                return Some(Arc::clone(result));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            self.shared.done.wait_for(&mut st, left);
        }
    }

    /// The latency split; `None` until the query finishes.
    pub fn latency(&self) -> Option<QueryLatency> {
        let st = self.shared.state.lock();
        let finished = st.finished?;
        let started = st.started.unwrap_or(finished);
        Some(QueryLatency {
            queued: started.duration_since(st.submitted),
            running: finished.duration_since(started),
            total: finished.duration_since(st.submitted),
        })
    }
}

/// What travels through a shard's fair queue to an executor thread.
struct Job {
    shared: Arc<QueryShared>,
    request: PipelineRequest,
    /// Shard whose queue admitted this job (tenant accounting lives
    /// there; cost settlement goes back to it). An `Arc` to the entry
    /// itself, not an index: the home shard may leave the registry while
    /// the job still runs elsewhere, and settlement must land on the
    /// queue that actually charged the estimate. Drain migration
    /// re-homes the job onto its adopting shard.
    home: Arc<ShardEntry<Job>>,
    /// The cache descriptor computed at admission, kept so a drain
    /// migration can re-probe the surviving shards' caches before the
    /// job travels.
    descriptor: Option<QueryDescriptor>,
    /// Cache-affine placements are pinned: stealing them would turn a
    /// predicted near-free run into a full re-computation elsewhere.
    pinned: bool,
    /// Undiscounted slot cost, the unit of the WFQ cost model.
    base_cost: f64,
    /// What admission charged the tenant's virtual clock (discounted by
    /// the cache probe's prediction).
    est_cost: f64,
}

/// Worker slots a strategy occupies on a cluster: streaming holds the
/// SQL and ML sides live simultaneously; staged strategies hold one side
/// at a time, so their footprint is the wider of the two.
fn slot_cost(cluster: &SimCluster, strategy: Strategy) -> usize {
    let sql = cluster.config.sql_workers.max(1);
    let ml = cluster.config.ml_workers.max(1);
    match strategy {
        Strategy::Naive | Strategy::InSql => sql.max(ml),
        Strategy::InSqlStream => sql + ml,
    }
}

/// The WFQ cost multiplier a *measured* cache outcome implies — the
/// settlement-side twin of [`probe_discount`].
fn mode_discount(mode: CacheMode) -> f64 {
    match mode {
        CacheMode::FullResult => FULL_DISCOUNT,
        CacheMode::RecodeMap => MAP_DISCOUNT,
        CacheMode::None => 1.0,
    }
}

/// The serving plane over an elastic fleet of [`SimCluster`] shards
/// (possibly a fleet of one). Built via [`QueryScheduler::builder`].
pub struct QueryScheduler {
    registry: Arc<ShardRegistry<Job>>,
    router: ShardRouter,
    stats: Arc<Stats>,
    config: SchedulerConfig,
    /// Recipe for booting one more shard; arms [`QueryScheduler::add_shard`].
    template: Option<ShardTemplate>,
    default_retry: Option<RetryPolicy>,
    scale_policy: Option<Box<dyn ScalePolicy>>,
    /// Fleet-wide tenant weights, applied to every shard's queue — held
    /// across shard registration so a concurrent weight change can never
    /// miss a joining shard. Outermost scheduler lock (see
    /// `xtask/lock-order.manifest`).
    tenants: TrackedMutex<HashMap<String, u32>>,
    /// Executor threads by shard id, so `remove_shard` can join exactly
    /// the departing shard's threads.
    workers: TrackedMutex<HashMap<usize, Vec<JoinHandle<()>>>>,
    /// Recent queue waits, feeding [`ScaleSignal::queue_wait_p95`].
    waits: Arc<WaitWindow>,
    next_id: AtomicU64,
}

impl QueryScheduler {
    /// Start building a scheduler: `QueryScheduler::builder(config)
    /// .cluster(c).build()`, or `.warehouse(cfg, scale, seed).shards(n)`
    /// for a template-booted (and elastically growable) fleet.
    pub fn builder(config: SchedulerConfig) -> SchedulerBuilder {
        SchedulerBuilder::new(config)
    }

    /// Single-cluster serving plane (a fleet of one shard).
    #[deprecated(
        since = "0.2.0",
        note = "use QueryScheduler::builder(config).cluster(cluster).build()"
    )]
    pub fn start(cluster: Arc<SimCluster>, config: SchedulerConfig) -> QueryScheduler {
        QueryScheduler::assemble(vec![cluster], config, None, None, None)
    }

    /// Serving plane over a pre-booted fleet of shard clusters.
    #[deprecated(
        since = "0.2.0",
        note = "use QueryScheduler::builder(config).clusters(clusters).build()"
    )]
    pub fn start_sharded(
        clusters: Vec<Arc<SimCluster>>,
        config: SchedulerConfig,
    ) -> QueryScheduler {
        assert!(
            !clusters.is_empty(),
            "a scheduler needs at least one cluster"
        );
        QueryScheduler::assemble(clusters, config, None, None, None)
    }

    /// Register the clusters and spin up their executor threads. Each
    /// thread is homed on one shard and owns one [`Pipeline`] over that
    /// shard's cluster; with `enable_cache` all of a shard's threads
    /// share one §5 cache. The fleet is assumed to host identical
    /// warehouses (see [`SimCluster::start_shards`]): the router may
    /// place — and an idle shard may steal — any unpinned request onto
    /// any shard.
    fn assemble(
        clusters: Vec<Arc<SimCluster>>,
        config: SchedulerConfig,
        template: Option<ShardTemplate>,
        default_retry: Option<RetryPolicy>,
        scale_policy: Option<Box<dyn ScalePolicy>>,
    ) -> QueryScheduler {
        // The scheduler's lock hierarchy, declared up front so the
        // instrumented build flags an inversion the moment it happens
        // rather than only when a full cycle forms. `sched.tenants` is
        // outermost: weight changes fan out to every queue under it, and
        // shard registration happens under it so a concurrent
        // `set_tenant_weight` can never miss a joining shard.
        sqlml_common::declare_order(&[
            ("sched.tenants", "sched.queue.state"),
            ("sched.tenants", "sched.workers"),
            ("sched.tenants", "sched.registry"),
            ("sched.workers", "sched.registry"),
        ]);
        let sched = QueryScheduler {
            registry: Arc::new(ShardRegistry::new()),
            router: ShardRouter::new(),
            stats: Arc::new(Stats::default()),
            config,
            template,
            default_retry,
            scale_policy,
            tenants: TrackedMutex::new("sched.tenants", HashMap::new()),
            workers: TrackedMutex::new("sched.workers", HashMap::new()),
            waits: Arc::new(WaitWindow::new(WAIT_WINDOW)),
            next_id: AtomicU64::new(1),
        };
        for cluster in clusters {
            sched.register_shard(cluster);
        }
        sched
    }

    /// Build a shard entry around a booted cluster, spawn its executor
    /// threads, and publish it to the registry — all under the tenant
    /// and worker locks, so weight changes, shutdown, and other resizes
    /// serialize against the registration. Returns the stable shard id.
    fn register_shard(&self, cluster: Arc<SimCluster>) -> usize {
        let cache = self
            .config
            .enable_cache
            .then(|| Arc::new(CacheManager::new(cluster.engine.clone())));
        let entry = self.registry.build_entry(
            cluster,
            self.config.queue_capacity,
            self.config.worker_slots,
            cache,
        );
        let tenants = self.tenants.lock();
        for (tenant, weight) in tenants.iter() {
            entry.queue.set_weight(tenant, *weight);
        }
        let mut workers = self.workers.lock();
        let handles = self.spawn_executors(&entry);
        let id = entry.id();
        workers.insert(id, handles);
        self.registry.insert(entry);
        id
    }

    /// One shard's executor pool: `max_concurrent` threads popping its
    /// queue (and stealing from peers via fresh registry snapshots).
    fn spawn_executors(&self, entry: &Arc<ShardEntry<Job>>) -> Vec<JoinHandle<()>> {
        (0..self.config.max_concurrent.max(1))
            .map(|_| {
                let entry = Arc::clone(entry);
                let registry = Arc::clone(&self.registry);
                let stats = Arc::clone(&self.stats);
                let waits = Arc::clone(&self.waits);
                let cache_aware = self.config.cache_aware;
                let stealing = self.config.work_stealing;
                let steal_min = self.config.steal_min_backlog.max(1);
                std::thread::spawn(move || {
                    let pipeline = match &entry.cache {
                        Some(c) => Pipeline::with_shared_cache(&entry.cluster, Arc::clone(c)),
                        None => Pipeline::new(&entry.cluster),
                    };
                    loop {
                        match entry.queue.pop_timeout(STEAL_POLL) {
                            Popped::Item(job) => {
                                run_one(&pipeline, &entry, &stats, &waits, cache_aware, job)
                            }
                            Popped::Closed => break,
                            // A draining shard stops raiding peers: its
                            // executors only finish what is already
                            // theirs and then exit.
                            Popped::Empty => {
                                if stealing && !entry.is_draining() {
                                    let snap = registry.snapshot();
                                    if let Some(job) = try_steal(&snap, entry.id(), steal_min) {
                                        run_one(
                                            &pipeline,
                                            &entry,
                                            &stats,
                                            &waits,
                                            cache_aware,
                                            job,
                                        );
                                    }
                                }
                            }
                        }
                    }
                })
            })
            .collect()
    }

    pub fn num_shards(&self) -> usize {
        self.registry.snapshot().len()
    }

    /// Stable ids of the current fleet, in registration order.
    pub fn shard_ids(&self) -> Vec<usize> {
        self.registry
            .snapshot()
            .shards()
            .iter()
            .map(|s| s.id())
            .collect()
    }

    /// The current fleet-membership epoch (bumps on every join/leave).
    pub fn registry_epoch(&self) -> u64 {
        self.registry.snapshot().epoch()
    }

    /// Boot one more shard from the warehouse template and join it to
    /// the fleet: the new shard participates in placement and work
    /// stealing the moment this returns. Errors if the scheduler was
    /// built from pre-booted clusters without a template, or if the
    /// warehouse boot itself fails. Returns the new shard's stable id.
    pub fn add_shard(&self) -> Result<usize> {
        let template = self.template.clone().ok_or_else(|| {
            SqlmlError::Execution(
                "add_shard needs a warehouse template (SchedulerBuilder::warehouse)".into(),
            )
        })?;
        let cluster = SimCluster::start_seeded(template.config, template.scale, template.seed)?;
        self.add_shard_cluster(cluster)
    }

    /// Join a pre-booted cluster to the fleet (the caller vouches it
    /// hosts the same warehouse as its peers). Returns the stable id.
    pub fn add_shard_cluster(&self, cluster: Arc<SimCluster>) -> Result<usize> {
        let id = self.register_shard(cluster);
        self.stats.shards_added.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Drain shard `id` out of the fleet: flip it to draining (the
    /// router stops placing onto it, thieves stop raiding it, racing
    /// pinned submits reject with [`RejectReason::Draining`]), dispose
    /// of its backlog per `policy`, close its queue, join its executor
    /// threads, and unregister it. In-flight runs finish normally
    /// wherever they are; their WFQ costs still settle onto the queue
    /// that admitted them. A cancel racing the drain resolves its handle
    /// exactly once — the migration path skips already-finalized jobs.
    ///
    /// Refuses to drain the last live shard (there would be nowhere to
    /// migrate, and a fleet of zero cannot serve).
    pub fn remove_shard(&self, id: usize, policy: DrainPolicy) -> Result<ShardRemoval> {
        let entry = self
            .registry
            .begin_drain(id)
            .map_err(|e| SqlmlError::Execution(format!("remove_shard({id}): {e}")))?;
        let (migrated, drained_in_place) = match policy {
            DrainPolicy::Migrate => (self.migrate_queued(&entry), 0),
            DrainPolicy::Drain => (0, entry.queue.len()),
        };
        // Close after draining: under Migrate, stragglers that raced the
        // lift-out land behind it and are finished by the shard's own
        // executors before they observe Closed.
        entry.queue.close();
        let handles = {
            let mut workers = self.workers.lock();
            let handles = workers.remove(&id);
            self.registry.remove(id);
            handles
        };
        // Join outside every lock: executors may be mid-pipeline.
        for handle in handles.into_iter().flatten() {
            let _ = handle.join();
        }
        self.stats.shards_removed.fetch_add(1, Ordering::Relaxed);
        Ok(ShardRemoval {
            shard: id,
            migrated,
            drained_in_place,
        })
    }

    /// Lift the draining shard's backlog out in WFQ order and re-admit
    /// each job onto a live peer. Pinned jobs re-probe the surviving
    /// caches (their old affinity died with the shard they were pinned
    /// to); every job's WFQ estimate is re-stamped on its new home and
    /// its home pointer re-aimed so post-run settlement lands where the
    /// new estimate was charged. Force-push bypasses the peer's capacity
    /// bound — an admitted query is never bounced back to the client —
    /// but a peer that closed mid-migration hands the job back and a
    /// fresh snapshot picks another. Returns how many jobs moved.
    fn migrate_queued(&self, from: &Arc<ShardEntry<Job>>) -> usize {
        let mut moved = 0;
        'jobs: for mut job in from.queue.drain_now() {
            // Cancelled-while-queued jobs are already terminal; dropping
            // them here is the same skip their executor would have done.
            if job.shared.state.lock().result.is_some() {
                continue;
            }
            for _ in 0..MIGRATE_RETRIES {
                let snap = self.registry.snapshot();
                let loads = shard_loads(&snap, job.descriptor.as_ref(), &job.request);
                let Some(placement) = self.router.place(&loads) else {
                    break;
                };
                let target = Arc::clone(&snap.shards()[placement.shard]);
                if self.config.cache_aware {
                    job.pinned = placement.affinity != CacheProbe::Miss;
                    job.est_cost = job.base_cost * probe_discount(placement.affinity);
                }
                job.home = Arc::clone(&target);
                let shared = Arc::clone(&job.shared);
                let est = job.est_cost;
                let pinned = job.pinned;
                match target.queue.force_push(&shared.tenant, est, job) {
                    Ok(_) => {
                        shared.migrated.store(true, Ordering::Relaxed);
                        target.counters.migrated_in.fetch_add(1, Ordering::Relaxed);
                        if pinned {
                            target
                                .counters
                                .affinity_hits
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        self.stats.migrated.fetch_add(1, Ordering::Relaxed);
                        moved += 1;
                        continue 'jobs;
                    }
                    // The chosen peer closed between snapshot and push
                    // (a racing drain): take the job back and re-place
                    // it from a fresh snapshot.
                    Err((_, back)) => job = back,
                }
            }
            // No live peer after bounded retries (the fleet collapsed
            // around us). Zero-lost still holds: the handle resolves,
            // as a failure, exactly once.
            finalize(
                &job.shared,
                &self.stats,
                Err(SqlmlError::Execution(format!(
                    "shard {} drained but no live peer could adopt the query",
                    from.id()
                ))),
            );
        }
        moved
    }

    /// Submit a query with default options. Rejections (validation,
    /// backpressure, shutdown) are immediate and carry their reason; an
    /// `Ok` handle means the query is admitted and will eventually reach
    /// a terminal status.
    pub fn submit(&self, spec: QuerySpec) -> std::result::Result<QueryHandle, Rejected> {
        self.submit_opts(spec, SubmitOpts::default())
    }

    /// Submit with per-call options: targeted placement
    /// ([`SubmitOpts::pin_shard`]) and/or client-side retry
    /// ([`SubmitOpts::retry`], resolving [`Retry::Default`] against the
    /// scheduler's [`SchedulerBuilder::retry`] policy). Each retry
    /// attempt counts as a submission in the stats.
    pub fn submit_opts(
        &self,
        spec: QuerySpec,
        opts: SubmitOpts,
    ) -> std::result::Result<QueryHandle, Rejected> {
        let policy = match &opts.retry {
            Retry::No => None,
            Retry::Default => self.default_retry.as_ref(),
            Retry::Policy(p) => Some(p),
        };
        match policy {
            None => self.submit_once(&spec, opts.pin_shard),
            Some(p) => {
                let deadline = spec.deadline.or(self.config.default_deadline);
                retry_queue_full(p, deadline, &SystemClock, || {
                    self.submit_once(&spec, opts.pin_shard)
                })
            }
        }
    }

    /// One admission attempt: validate, place (router or pin), admit.
    fn submit_once(
        &self,
        spec: &QuerySpec,
        pin_shard: Option<usize>,
    ) -> std::result::Result<QueryHandle, Rejected> {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let snap = self.registry.snapshot();
        self.validate(spec, &snap)?;
        if let Some(id) = pin_shard {
            // Targeted placement: bypass the router (operator escape
            // hatch; also how the stealing tests build deterministic
            // backlog). Admitted unpinned, so a peer may still steal it.
            let Some(entry) = snap.find(id) else {
                return Err(self.reject(RejectReason::Invalid(format!(
                    "no such shard {id} (fleet of {})",
                    snap.len()
                ))));
            };
            if entry.is_draining() {
                return Err(self.reject(RejectReason::Draining { shard: id }));
            }
            return self.admit(spec, entry, CacheProbe::Miss, None);
        }
        // Probe every live shard's cache for the request's descriptor,
        // then score placement: cache affinity vs queue depth vs slots.
        let descriptor: Option<QueryDescriptor> = if self.config.cache_aware {
            match snap.shards().first() {
                Some(s) => describe_prep(&s.cluster.engine, &spec.request.prep_sql)
                    .ok()
                    .flatten(),
                None => None,
            }
        } else {
            None
        };
        let loads = shard_loads(&snap, descriptor.as_ref(), &spec.request);
        let Some(placement) = self.router.place(&loads) else {
            // Every shard is draining (or the fleet is empty): the
            // serving plane is effectively shutting down.
            return Err(self.reject(RejectReason::ShuttingDown));
        };
        let entry = Arc::clone(&snap.shards()[placement.shard]);
        self.admit(spec, &entry, placement.affinity, descriptor)
    }

    /// Validate up front so a bad request is a reject-with-reason, not a
    /// query that occupies a queue only to fail.
    fn validate(
        &self,
        spec: &QuerySpec,
        snap: &Snapshot<Job>,
    ) -> std::result::Result<(), Rejected> {
        if let Err(e) = TrainingSpec::parse(&spec.request.ml_command) {
            return Err(self.reject(RejectReason::Invalid(format!("ml command: {e}"))));
        }
        // Shards host identical warehouses, so any shard's catalog
        // answers for the fleet.
        let Some(first) = snap.shards().first() else {
            return Err(self.reject(RejectReason::ShuttingDown));
        };
        if let Err(e) = first.cluster.engine.validate(&spec.request.prep_sql) {
            return Err(self.reject(RejectReason::Invalid(format!("prep sql: {e}"))));
        }
        Ok(())
    }

    fn admit(
        &self,
        spec: &QuerySpec,
        entry: &Arc<ShardEntry<Job>>,
        affinity: CacheProbe,
        descriptor: Option<QueryDescriptor>,
    ) -> std::result::Result<QueryHandle, Rejected> {
        let cancel = match spec.deadline.or(self.config.default_deadline) {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let shared = Arc::new(QueryShared {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            tenant: spec.tenant.clone(),
            strategy: spec.strategy,
            cancel,
            placed_on: entry.id(),
            ran_on: AtomicUsize::new(NOT_RUN),
            stolen: AtomicBool::new(false),
            migrated: AtomicBool::new(false),
            state: TrackedMutex::new(
                "sched.query.state",
                QueryState {
                    status: QueryStatus::Queued,
                    submitted: Instant::now(),
                    started: None,
                    finished: None,
                    result: None,
                },
            ),
            done: TrackedCondvar::new("sched.query.done"),
        });
        let base_cost = slot_cost(&entry.cluster, spec.strategy) as f64;
        let est_cost = if self.config.cache_aware {
            base_cost * probe_discount(affinity)
        } else {
            base_cost
        };
        let pinned = self.config.cache_aware && affinity != CacheProbe::Miss;
        let job = Job {
            shared: Arc::clone(&shared),
            request: spec.request.clone(),
            home: Arc::clone(entry),
            descriptor,
            pinned,
            base_cost,
            est_cost,
        };
        // Count the query in flight *before* it becomes poppable — an
        // executor may pop and finalize (decrementing the gauge) the
        // instant the push lands.
        let now = self.stats.inflight_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.inflight_hw.fetch_max(now, Ordering::Relaxed);
        if let Err(rejected) = entry.queue.push(&spec.tenant, est_cost, job) {
            self.stats.inflight_now.fetch_sub(1, Ordering::Relaxed);
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            // A push that raced the start of a drain sees the closed
            // queue as ShuttingDown; the fleet is alive, so surface the
            // retryable, targeted truth instead.
            if matches!(rejected.reason, RejectReason::ShuttingDown) && entry.is_draining() {
                return Err(Rejected {
                    reason: RejectReason::Draining { shard: entry.id() },
                });
            }
            return Err(rejected);
        }
        entry.counters.admitted.fetch_add(1, Ordering::Relaxed);
        if pinned {
            entry.counters.affinity_hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(QueryHandle {
            shared,
            stats: Arc::clone(&self.stats),
        })
    }

    /// [`QueryScheduler::submit`] with client-side retry on transient
    /// rejects.
    #[deprecated(
        since = "0.2.0",
        note = "use submit_opts(spec, SubmitOpts::default().with_retry(policy.clone()))"
    )]
    pub fn submit_with_retry(
        &self,
        spec: QuerySpec,
        policy: &RetryPolicy,
    ) -> std::result::Result<QueryHandle, Rejected> {
        self.submit_opts(spec, SubmitOpts::default().with_retry(policy.clone()))
    }

    /// Targeted placement onto one shard (stable id).
    #[deprecated(
        since = "0.2.0",
        note = "use submit_opts(spec, SubmitOpts::pinned(shard))"
    )]
    pub fn submit_to(
        &self,
        spec: QuerySpec,
        shard: usize,
    ) -> std::result::Result<QueryHandle, Rejected> {
        self.submit_opts(spec, SubmitOpts::pinned(shard).no_retry())
    }

    fn reject(&self, reason: RejectReason) -> Rejected {
        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        Rejected { reason }
    }

    /// Weighted fair share for a tenant (default 1), applied on every
    /// shard's queue (tenants are fleet-wide identities). Held under the
    /// tenant lock so a shard joining concurrently can never miss the
    /// weight: registration replays the map under the same lock.
    pub fn set_tenant_weight(&self, tenant: &str, weight: u32) {
        let mut tenants = self.tenants.lock();
        tenants.insert(tenant.to_string(), weight.max(1));
        let snap = self.registry.snapshot();
        for shard in snap.shards() {
            shard.queue.set_weight(tenant, weight);
        }
    }

    pub fn stats(&self) -> SchedStatsSnapshot {
        let snap = self.registry.snapshot();
        SchedStatsSnapshot {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            cancelled: self.stats.cancelled.load(Ordering::Relaxed),
            inflight_now: self.stats.inflight_now.load(Ordering::Relaxed),
            inflight_high_water: self.stats.inflight_hw.load(Ordering::Relaxed),
            migrated: self.stats.migrated.load(Ordering::Relaxed),
            cost_settlements: self.stats.cost_settlements.load(Ordering::Relaxed),
            shards_added: self.stats.shards_added.load(Ordering::Relaxed),
            shards_removed: self.stats.shards_removed.load(Ordering::Relaxed),
            registry_epoch: snap.epoch(),
            per_cluster: snap
                .shards()
                .iter()
                .map(|s| ClusterCounters {
                    shard: s.id(),
                    admitted: s.counters.admitted.load(Ordering::Relaxed),
                    stolen: s.counters.stolen.load(Ordering::Relaxed),
                    cache_affinity_hits: s.counters.affinity_hits.load(Ordering::Relaxed),
                    migrated_in: s.counters.migrated_in.load(Ordering::Relaxed),
                    draining: s.is_draining(),
                })
                .collect(),
        }
    }

    /// Queries waiting in the admission queues right now (all shards).
    pub fn queue_depth(&self) -> usize {
        let snap = self.registry.snapshot();
        snap.shards().iter().map(|s| s.queue.len()).sum()
    }

    /// Per-shard admission-queue depths, in registration order — all
    /// read from one registry snapshot, so the vector is internally
    /// consistent even mid-resize. Pair with [`QueryScheduler::shard_ids`]
    /// (or use [`QueryScheduler::fleet_snapshot`]) to name the shards.
    pub fn queue_depths(&self) -> Vec<usize> {
        let snap = self.registry.snapshot();
        snap.shards().iter().map(|s| s.queue.len()).collect()
    }

    /// Worker slots currently held / capacity, summed over the fleet —
    /// one registry snapshot, consistent with a concurrent resize.
    pub fn slot_usage(&self) -> (usize, usize) {
        let snap = self.registry.snapshot();
        snap.shards().iter().fold((0, 0), |(u, c), s| {
            (u + s.governor.in_use(), c + s.governor.capacity())
        })
    }

    /// Per-shard load and drain state, all fields read from the same
    /// registry snapshot.
    pub fn fleet_snapshot(&self) -> Vec<ShardStat> {
        let snap = self.registry.snapshot();
        snap.shards()
            .iter()
            .map(|s| ShardStat {
                shard: s.id(),
                queue_depth: s.queue.len(),
                slots_in_use: s.governor.in_use(),
                slot_capacity: s.governor.capacity(),
                draining: s.is_draining(),
            })
            .collect()
    }

    /// The autoscale input signal, measured over the live (non-draining)
    /// fleet: shard count, total backlog, recent queue-wait p95, and the
    /// slot-busy fraction.
    pub fn scale_signal(&self) -> ScaleSignal {
        let snap = self.registry.snapshot();
        let (mut shards, mut queued, mut used, mut cap) = (0usize, 0usize, 0usize, 0usize);
        for s in snap.shards() {
            if s.is_draining() {
                continue;
            }
            shards += 1;
            queued += s.queue.len();
            used += s.governor.in_use();
            cap += s.governor.capacity();
        }
        ScaleSignal {
            shards,
            queued,
            queue_wait_p95: self.waits.p95(),
            slot_busy: used as f64 / cap.max(1) as f64,
        }
    }

    /// What the installed [`ScalePolicy`] advises for the current
    /// [`QueryScheduler::scale_signal`]. Advisory only: the caller acts
    /// (or not) via [`QueryScheduler::add_shard`] /
    /// [`QueryScheduler::remove_shard`]. [`ScaleAdvice::Hold`] when no
    /// policy is installed (the default).
    pub fn scale_advice(&self) -> ScaleAdvice {
        match &self.scale_policy {
            Some(policy) => policy.advise(&self.scale_signal()),
            None => ScaleAdvice::Hold,
        }
    }

    /// Graceful shutdown: stop admitting, drain everything already
    /// queued, and join the executor threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let snap = self.registry.snapshot();
        for shard in snap.shards() {
            shard.queue.close();
        }
        let drained: Vec<(usize, Vec<JoinHandle<()>>)> = self.workers.lock().drain().collect();
        for (_, handles) in drained {
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for QueryScheduler {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Per-shard load signals for the router, every field read from the one
/// registry snapshot the caller holds. Draining shards are marked (and
/// their caches not probed — they cannot be placed onto anyway).
fn shard_loads(
    snap: &Snapshot<Job>,
    descriptor: Option<&QueryDescriptor>,
    request: &PipelineRequest,
) -> Vec<ShardLoad> {
    snap.shards()
        .iter()
        .map(|s| {
            let draining = s.is_draining();
            ShardLoad {
                queue_depth: s.queue.len(),
                slots_in_use: s.governor.in_use(),
                slot_capacity: s.governor.capacity(),
                probe: match (descriptor, &s.cache, draining) {
                    (Some(d), Some(c), false) => c.probe(d, &request.spec),
                    _ => CacheProbe::Miss,
                },
                draining,
            }
        })
        .collect()
}

/// Scan peers for the most-backlogged queue and claim its head-of-line
/// query — unless that query is cache-pinned to its home shard. Peers
/// mid-drain are never raided: their backlog is the drain protocol's to
/// migrate (or finish), and racing it would double-account the jobs.
fn try_steal(snap: &Snapshot<Job>, me: usize, steal_min: usize) -> Option<Job> {
    let victim = snap
        .shards()
        .iter()
        .filter(|s| s.id() != me && !s.is_draining())
        .map(|s| (s.queue.len(), s))
        .filter(|(len, _)| *len >= steal_min)
        .max_by_key(|(len, _)| *len)?
        .1;
    victim.queue.try_pop_if(|job| !job.pinned)
}

/// Execute one admitted query on this worker thread (shard `me`). A
/// stolen job (`me` ≠ home) runs *entirely* here: governor slots,
/// pipeline, §6 transfer state, and cache population all belong to the
/// stealing cluster; only tenant cost accounting settles back home. The
/// job's home pointer keeps the home queue alive even if that shard has
/// since left the registry.
fn run_one(
    pipeline: &Pipeline<'_>,
    me: &Arc<ShardEntry<Job>>,
    stats: &Stats,
    waits: &WaitWindow,
    cache_aware: bool,
    job: Job,
) {
    let shared = Arc::clone(&job.shared);
    // Hold the query's slot cost for the whole run.
    let guard = match me
        .governor
        .acquire(slot_cost(&me.cluster, shared.strategy), &shared.cancel)
    {
        Ok(g) => g,
        Err(e) => {
            finalize(&shared, stats, Err(e));
            return;
        }
    };
    // Claim Queued → Running; a query cancelled while queued is already
    // terminal and must not run.
    let queue_wait;
    {
        let mut st = shared.state.lock();
        if st.result.is_some() {
            return;
        }
        st.status = QueryStatus::Running;
        let now = Instant::now();
        st.started = Some(now);
        queue_wait = now.duration_since(st.submitted);
    }
    waits.record(queue_wait);
    shared.ran_on.store(me.id(), Ordering::Relaxed);
    if me.id() != job.home.id() {
        shared.stolen.store(true, Ordering::Relaxed);
        me.counters.stolen.fetch_add(1, Ordering::Relaxed);
    }
    let result = pipeline.run_with(&job.request, shared.strategy, &shared.cancel);
    drop(guard);
    // Settle the measured WFQ cost back onto the tenant's virtual clock
    // at the *home* queue, where admission (or drain migration) charged
    // the estimate.
    if cache_aware {
        if let Ok(report) = &result {
            let measured = job.base_cost * mode_discount(report.cache_use);
            if (measured - job.est_cost).abs() > f64::EPSILON {
                job.home
                    .queue
                    .settle(&shared.tenant, job.est_cost, measured);
                stats.cost_settlements.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    finalize(&shared, stats, result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_core::workload::{WorkloadScale, PREP_QUERY};
    use sqlml_core::ClusterConfig;
    use sqlml_transform::TransformSpec;

    fn cluster() -> Arc<SimCluster> {
        let c = SimCluster::start(ClusterConfig::for_tests()).unwrap();
        c.load_workload(WorkloadScale::TINY, 11).unwrap();
        Arc::new(c)
    }

    fn sched_with(config: SchedulerConfig) -> QueryScheduler {
        QueryScheduler::builder(config)
            .cluster(cluster())
            .build()
            .unwrap()
    }

    fn request() -> PipelineRequest {
        PipelineRequest {
            prep_sql: PREP_QUERY.to_string(),
            spec: TransformSpec::new(&["gender"]),
            ml_command: "svm label=4 iterations=10".to_string(),
        }
    }

    #[test]
    fn invalid_requests_reject_with_reason() {
        let sched = sched_with(SchedulerConfig::default());
        let mut bad_ml = request();
        bad_ml.ml_command = "teleport label=1".into();
        let err = sched
            .submit(QuerySpec::new("t", bad_ml, Strategy::InSql))
            .unwrap_err();
        assert!(matches!(err.reason, RejectReason::Invalid(_)));
        assert!(err.to_string().contains("ml command"), "{err}");
        let mut bad_sql = request();
        bad_sql.prep_sql = "SELECT nothing FROM nowhere".into();
        let err = sched
            .submit(QuerySpec::new("t", bad_sql, Strategy::InSql))
            .unwrap_err();
        assert!(err.to_string().contains("prep sql"), "{err}");
        let s = sched.stats();
        assert_eq!((s.submitted, s.rejected), (2, 2));
        sched.shutdown();
    }

    #[test]
    fn one_query_completes_with_latency_split() {
        let sched = sched_with(SchedulerConfig::default());
        let handle = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSqlStream))
            .unwrap();
        let result = handle.wait();
        let report = result.as_ref().as_ref().expect("pipeline failed");
        assert!(report.rows_to_ml > 0);
        assert_eq!(handle.status(), QueryStatus::Completed);
        // A fleet of one: placed and ran on shard 0, never stolen.
        assert_eq!(handle.placed_on(), 0);
        assert_eq!(handle.ran_on(), Some(0));
        assert!(!handle.was_stolen());
        let lat = handle.latency().expect("finished queries have latency");
        assert_eq!(lat.total, lat.queued + lat.running);
        assert!(lat.running > Duration::ZERO);
        let s = sched.stats();
        assert_eq!((s.completed, s.inflight_now), (1, 0));
        assert!(s.inflight_high_water >= 1);
        assert_eq!(s.per_cluster.len(), 1);
        assert_eq!(s.per_cluster[0].admitted, 1);
        assert_eq!(s.per_cluster[0].stolen, 0);
        sched.shutdown();
    }

    #[test]
    fn zero_deadline_cancels_cleanly_and_cluster_stays_usable() {
        let sched = sched_with(SchedulerConfig::default());
        let doomed = sched
            .submit(
                QuerySpec::new("t", request(), Strategy::InSqlStream).with_deadline(Duration::ZERO),
            )
            .unwrap();
        let result = doomed.wait();
        let err = result.as_ref().as_ref().unwrap_err();
        assert!(err.is_cancelled(), "expected cancellation, got {err}");
        assert_eq!(doomed.status(), QueryStatus::Cancelled);
        // The shared cluster is unharmed: the next query completes.
        let ok = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSqlStream))
            .unwrap();
        assert!(ok.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }

    #[test]
    fn explicit_cancel_of_a_queued_query_is_immediate() {
        // No executor will ever pop: fill the only worker with a query
        // first, then cancel the one stuck behind it.
        let sched = sched_with(SchedulerConfig {
            max_concurrent: 1,
            ..SchedulerConfig::default()
        });
        let first = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        let second = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        second.cancel("user pressed ctrl-c");
        let result = second.wait();
        let err = result.as_ref().as_ref().unwrap_err();
        assert!(err.to_string().contains("ctrl-c"), "{err}");
        assert!(first.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }

    #[test]
    fn submit_with_retry_rides_out_a_transient_full_queue() {
        let sched = sched_with(SchedulerConfig {
            max_concurrent: 1,
            queue_capacity: 1,
            ..SchedulerConfig::default()
        });
        // Fill the single executor + single queue slot. The first query
        // occupies the queue slot until the worker pops it, so wait for
        // it to start running before claiming the slot for the second —
        // otherwise this submit races the pop and can bounce.
        let running = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        let started = Instant::now();
        while running.status() == QueryStatus::Queued {
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "first query never left the queue"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        // A plain submit bounces; a retried one is admitted once the
        // backlog drains.
        assert!(sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .is_err());
        let policy = RetryPolicy {
            max_attempts: 60,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(200),
            jitter: 0.0,
            seed: 1,
        };
        let retried = sched
            .submit_opts(
                QuerySpec::new("t", request(), Strategy::InSql),
                SubmitOpts::default().with_retry(policy),
            )
            .expect("retry should eventually be admitted");
        assert!(running.wait().as_ref().as_ref().is_ok());
        assert!(queued.wait().as_ref().as_ref().is_ok());
        assert!(retried.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }

    #[test]
    fn pinned_submit_rejects_an_unknown_shard_id() {
        let sched = sched_with(SchedulerConfig::default());
        let err = sched
            .submit_opts(
                QuerySpec::new("t", request(), Strategy::InSql),
                SubmitOpts::pinned(3),
            )
            .unwrap_err();
        assert!(matches!(err.reason, RejectReason::Invalid(_)));
        assert!(err.to_string().contains("no such shard"), "{err}");
        sched.shutdown();
    }

    #[test]
    fn builder_without_shards_is_a_typed_error() {
        let err = match QueryScheduler::builder(SchedulerConfig::default()).build() {
            Ok(_) => panic!("an empty builder must not produce a scheduler"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("at least one cluster"), "{err}");
    }

    #[test]
    fn builder_default_retry_applies_to_plain_submit() {
        // Same transient-full-queue scenario as the retry test above,
        // but the policy lives on the scheduler: a *plain* submit rides
        // it out, and an explicit no_retry opt-out still bounces.
        let sched = QueryScheduler::builder(SchedulerConfig {
            max_concurrent: 1,
            queue_capacity: 1,
            ..SchedulerConfig::default()
        })
        .cluster(cluster())
        .retry(RetryPolicy {
            max_attempts: 60,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(200),
            jitter: 0.0,
            seed: 1,
        })
        .build()
        .unwrap();
        let running = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        let started = Instant::now();
        while running.status() == QueryStatus::Queued {
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "first query never left the queue"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        assert!(sched
            .submit_opts(
                QuerySpec::new("t", request(), Strategy::InSql),
                SubmitOpts::default().no_retry(),
            )
            .is_err());
        let retried = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .expect("scheduler-default retry should ride out the backlog");
        assert!(running.wait().as_ref().as_ref().is_ok());
        assert!(queued.wait().as_ref().as_ref().is_ok());
        assert!(retried.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }

    #[test]
    fn scale_advice_holds_without_a_policy_and_follows_one_installed() {
        let sched = sched_with(SchedulerConfig::default());
        assert_eq!(sched.scale_advice(), ScaleAdvice::Hold);
        let signal = sched.scale_signal();
        assert_eq!((signal.shards, signal.queued), (1, 0));
        sched.shutdown();
        // An installed policy sees the scheduler's real signal.
        let sched = QueryScheduler::builder(SchedulerConfig::default())
            .cluster(cluster())
            .scale_policy(crate::scale::ThresholdScalePolicy {
                min_shards: 0,
                ..crate::scale::ThresholdScalePolicy::default()
            })
            .build()
            .unwrap();
        // Idle fleet above the floor: the threshold policy says shrink.
        assert_eq!(sched.scale_advice(), ScaleAdvice::Shrink);
        sched.shutdown();
    }

    /// The pre-elastic constructors and submit variants must keep
    /// compiling and serving as thin wrappers. This is the one test
    /// allowed to touch them.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_serve() {
        let sched = QueryScheduler::start(cluster(), SchedulerConfig::default());
        assert_eq!(sched.num_shards(), 1);
        let direct = sched
            .submit_to(QuerySpec::new("t", request(), Strategy::InSql), 0)
            .unwrap();
        assert!(direct.wait().as_ref().as_ref().is_ok());
        let retried = sched
            .submit_with_retry(
                QuerySpec::new("t", request(), Strategy::InSql),
                &RetryPolicy::default(),
            )
            .unwrap();
        assert!(retried.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
        let sched = QueryScheduler::start_sharded(vec![cluster()], SchedulerConfig::default());
        let h = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        assert!(h.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }
}
