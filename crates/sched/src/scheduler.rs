//! The query scheduler: worker threads executing admitted pipeline
//! requests against one shared cluster, under the fair queue and the
//! worker-slot governor, with per-query handles.
//!
//! Life of a query:
//!
//! 1. [`QueryScheduler::submit`] validates the request (SQL plans, ML
//!    command parses) and offers it to the [`FairQueue`] — both can
//!    reject with a typed reason, immediately.
//! 2. An executor thread pops it in weighted-fair order, acquires its
//!    worker-slot cost from the [`WorkerGovernor`], and runs
//!    [`Pipeline::run_with`] with the query's [`CancelToken`].
//! 3. The token (explicit [`QueryHandle::cancel`] or a deadline) is
//!    polled at stage boundaries, at slot waits, and at every frame cut
//!    on the streaming data plane; a fired token unwinds the run through
//!    the normal error path.
//! 4. The outcome lands in the [`QueryHandle`]: status, shared result,
//!    and the queued/running latency split.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use sqlml_cache::CacheManager;
use sqlml_common::{CancelToken, Result, SqlmlError};
use sqlml_core::{Pipeline, PipelineReport, PipelineRequest, SimCluster, Strategy};
use sqlml_mlengine::job::TrainingSpec;

use crate::governor::WorkerGovernor;
use crate::queue::{FairQueue, RejectReason, Rejected};

/// Serving-plane tunables.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Executor threads — the maximum number of pipelines in some stage
    /// of execution (including waiting for worker slots) at once.
    pub max_concurrent: usize,
    /// Bounded admission-queue capacity (queued, not yet executing).
    pub queue_capacity: usize,
    /// Worker-slot capacity for the governor. One slot ≙ one engine
    /// worker; a streaming pipeline costs `sql_workers + ml_workers`
    /// slots, a staged one `max(sql_workers, ml_workers)`. `0` = auto:
    /// `(sql_workers + ml_workers) × 4`, i.e. a multiprogramming level
    /// of ~4 streaming pipelines time-sharing the cluster.
    pub worker_slots: usize,
    /// Deadline applied to queries that don't carry their own (`None` =
    /// unbounded). Measured from submission, so queue wait counts.
    pub default_deadline: Option<Duration>,
    /// Share one §5 [`CacheManager`] across all queries.
    pub enable_cache: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_concurrent: 4,
            queue_capacity: 32,
            worker_slots: 0,
            default_deadline: None,
            enable_cache: true,
        }
    }
}

/// One submission: who is asking, what to run, how to run it.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub tenant: String,
    pub request: PipelineRequest,
    pub strategy: Strategy,
    /// Per-query deadline override (measured from submission).
    pub deadline: Option<Duration>,
}

impl QuerySpec {
    pub fn new(tenant: &str, request: PipelineRequest, strategy: Strategy) -> QuerySpec {
        QuerySpec {
            tenant: tenant.to_string(),
            request,
            strategy,
            deadline: None,
        }
    }

    pub fn with_deadline(mut self, deadline: Duration) -> QuerySpec {
        self.deadline = Some(deadline);
        self
    }
}

/// Where a query is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Admitted, waiting in the fair queue (or for worker slots).
    Queued,
    /// Executing on the cluster.
    Running,
    Completed,
    Failed,
    /// Cancelled (explicitly or by deadline) before completing.
    Cancelled,
}

/// The queued/running/total latency split of a finished query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLatency {
    /// Submission → execution start (whole life for never-started runs).
    pub queued: Duration,
    /// Execution start → finish.
    pub running: Duration,
    /// Submission → finish.
    pub total: Duration,
}

struct QueryState {
    status: QueryStatus,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
    /// `Arc` because neither [`PipelineReport`] nor the error is `Clone`
    /// and several waiters may want the result.
    result: Option<Arc<Result<PipelineReport>>>,
}

struct QueryShared {
    id: u64,
    tenant: String,
    strategy: Strategy,
    cancel: CancelToken,
    state: Mutex<QueryState>,
    done: Condvar,
}

/// Serving-plane counters (monotonic except the in-flight gauge).
#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    inflight_now: AtomicUsize,
    inflight_hw: AtomicUsize,
}

/// A point-in-time copy of the serving-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStatsSnapshot {
    pub submitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    /// Admitted and not yet finished (queued + running).
    pub inflight_now: usize,
    /// Most queries ever in flight at once.
    pub inflight_high_water: usize,
}

/// Move a query to its terminal state exactly once. Returns false when
/// it was already terminal (e.g. cancelled while this worker ran it —
/// the stale result is discarded).
fn finalize(shared: &QueryShared, stats: &Stats, result: Result<PipelineReport>) -> bool {
    let status = match &result {
        Ok(_) => QueryStatus::Completed,
        Err(e) if e.is_cancelled() => QueryStatus::Cancelled,
        Err(_) => QueryStatus::Failed,
    };
    {
        let mut st = shared.state.lock();
        if st.result.is_some() {
            return false;
        }
        st.status = status;
        st.finished = Some(Instant::now());
        st.result = Some(Arc::new(result));
        // Counters update before the lock drops so a waiter woken by the
        // result never reads a snapshot that still counts this query as
        // in flight.
        match status {
            QueryStatus::Completed => stats.completed.fetch_add(1, Ordering::Relaxed),
            QueryStatus::Cancelled => stats.cancelled.fetch_add(1, Ordering::Relaxed),
            _ => stats.failed.fetch_add(1, Ordering::Relaxed),
        };
        stats.inflight_now.fetch_sub(1, Ordering::Relaxed);
    }
    shared.done.notify_all();
    true
}

/// The caller's view of one submitted query.
#[derive(Clone)]
pub struct QueryHandle {
    shared: Arc<QueryShared>,
    stats: Arc<Stats>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("id", &self.shared.id)
            .field("tenant", &self.shared.tenant)
            .field("strategy", &self.shared.strategy)
            .field("status", &self.status())
            .finish()
    }
}

impl QueryHandle {
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    pub fn tenant(&self) -> &str {
        &self.shared.tenant
    }

    pub fn strategy(&self) -> Strategy {
        self.shared.strategy
    }

    pub fn status(&self) -> QueryStatus {
        self.shared.state.lock().status
    }

    pub fn is_finished(&self) -> bool {
        self.shared.state.lock().result.is_some()
    }

    /// Fire the query's cancellation token. A still-queued query is
    /// finalized immediately; a running one unwinds at its next
    /// cancellation checkpoint (stage boundary or streaming frame cut).
    /// Cooperative by design: a run past its last checkpoint may still
    /// complete and deliver its result.
    pub fn cancel(&self, reason: &str) {
        self.shared.cancel.cancel(reason);
        let still_queued = self.shared.state.lock().status == QueryStatus::Queued;
        if still_queued {
            finalize(
                &self.shared,
                &self.stats,
                Err(SqlmlError::Cancelled(format!("while queued: {reason}"))),
            );
        }
    }

    /// Block until the query finishes; returns the shared result.
    pub fn wait(&self) -> Arc<Result<PipelineReport>> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(result) = &st.result {
                return Arc::clone(result);
            }
            self.shared.done.wait(&mut st);
        }
    }

    /// Like [`QueryHandle::wait`], bounded: `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<Result<PipelineReport>>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            if let Some(result) = &st.result {
                return Some(Arc::clone(result));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            self.shared.done.wait_for(&mut st, left);
        }
    }

    /// The latency split; `None` until the query finishes.
    pub fn latency(&self) -> Option<QueryLatency> {
        let st = self.shared.state.lock();
        let finished = st.finished?;
        let started = st.started.unwrap_or(finished);
        Some(QueryLatency {
            queued: started.duration_since(st.submitted),
            running: finished.duration_since(started),
            total: finished.duration_since(st.submitted),
        })
    }
}

/// What travels through the fair queue to an executor thread.
struct Job {
    shared: Arc<QueryShared>,
    request: PipelineRequest,
}

/// Worker slots a strategy occupies on this cluster: streaming holds the
/// SQL and ML sides live simultaneously; staged strategies hold one side
/// at a time, so their footprint is the wider of the two.
fn slot_cost(cluster: &SimCluster, strategy: Strategy) -> usize {
    let sql = cluster.config.sql_workers.max(1);
    let ml = cluster.config.ml_workers.max(1);
    match strategy {
        Strategy::Naive | Strategy::InSql => sql.max(ml),
        Strategy::InSqlStream => sql + ml,
    }
}

/// The serving plane over one shared [`SimCluster`].
pub struct QueryScheduler {
    cluster: Arc<SimCluster>,
    queue: Arc<FairQueue<Job>>,
    governor: Arc<WorkerGovernor>,
    stats: Arc<Stats>,
    default_deadline: Option<Duration>,
    next_id: AtomicU64,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl QueryScheduler {
    /// Spin up the executor threads. Each owns one [`Pipeline`] over the
    /// shared cluster; with `enable_cache` they all share one §5 cache.
    pub fn start(cluster: Arc<SimCluster>, config: SchedulerConfig) -> QueryScheduler {
        let auto_slots = (cluster.config.sql_workers + cluster.config.ml_workers).max(1) * 4;
        let governor = Arc::new(WorkerGovernor::new(match config.worker_slots {
            0 => auto_slots,
            n => n,
        }));
        let queue: Arc<FairQueue<Job>> = Arc::new(FairQueue::new(config.queue_capacity));
        let stats = Arc::new(Stats::default());
        let cache = config
            .enable_cache
            .then(|| Arc::new(CacheManager::new(cluster.engine.clone())));
        let workers = (0..config.max_concurrent.max(1))
            .map(|_| {
                let cluster = Arc::clone(&cluster);
                let queue = Arc::clone(&queue);
                let governor = Arc::clone(&governor);
                let stats = Arc::clone(&stats);
                let cache = cache.clone();
                std::thread::spawn(move || {
                    let pipeline = match cache {
                        Some(c) => Pipeline::with_shared_cache(&cluster, c),
                        None => Pipeline::new(&cluster),
                    };
                    while let Some(job) = queue.pop() {
                        run_one(&pipeline, &cluster, &governor, &stats, job);
                    }
                })
            })
            .collect();
        QueryScheduler {
            cluster,
            queue,
            governor,
            stats,
            default_deadline: config.default_deadline,
            next_id: AtomicU64::new(1),
            workers,
        }
    }

    /// Submit a query. Rejections (validation, backpressure, shutdown)
    /// are immediate and carry their reason; an `Ok` handle means the
    /// query is admitted and will eventually reach a terminal status.
    pub fn submit(&self, spec: QuerySpec) -> std::result::Result<QueryHandle, Rejected> {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        // Validate up front so a bad request is a reject-with-reason, not
        // a query that occupies the queue only to fail.
        if let Err(e) = TrainingSpec::parse(&spec.request.ml_command) {
            return Err(self.reject(RejectReason::Invalid(format!("ml command: {e}"))));
        }
        if let Err(e) = self.cluster.engine.validate(&spec.request.prep_sql) {
            return Err(self.reject(RejectReason::Invalid(format!("prep sql: {e}"))));
        }

        let cancel = match spec.deadline.or(self.default_deadline) {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let shared = Arc::new(QueryShared {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            tenant: spec.tenant.clone(),
            strategy: spec.strategy,
            cancel,
            state: Mutex::new(QueryState {
                status: QueryStatus::Queued,
                submitted: Instant::now(),
                started: None,
                finished: None,
                result: None,
            }),
            done: Condvar::new(),
        });
        let cost = slot_cost(&self.cluster, spec.strategy) as f64;
        let job = Job {
            shared: Arc::clone(&shared),
            request: spec.request,
        };
        // Count the query in flight *before* it becomes poppable — an
        // executor may pop and finalize (decrementing the gauge) the
        // instant the push lands.
        let now = self.stats.inflight_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.inflight_hw.fetch_max(now, Ordering::Relaxed);
        if let Err(rejected) = self.queue.push(&spec.tenant, cost, job) {
            self.stats.inflight_now.fetch_sub(1, Ordering::Relaxed);
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(rejected);
        }
        Ok(QueryHandle {
            shared,
            stats: Arc::clone(&self.stats),
        })
    }

    fn reject(&self, reason: RejectReason) -> Rejected {
        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        Rejected { reason }
    }

    /// Weighted fair share for a tenant (default 1).
    pub fn set_tenant_weight(&self, tenant: &str, weight: u32) {
        self.queue.set_weight(tenant, weight);
    }

    pub fn stats(&self) -> SchedStatsSnapshot {
        SchedStatsSnapshot {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            cancelled: self.stats.cancelled.load(Ordering::Relaxed),
            inflight_now: self.stats.inflight_now.load(Ordering::Relaxed),
            inflight_high_water: self.stats.inflight_hw.load(Ordering::Relaxed),
        }
    }

    /// Queries waiting in the admission queue right now.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Worker slots currently held / capacity.
    pub fn slot_usage(&self) -> (usize, usize) {
        (self.governor.in_use(), self.governor.capacity())
    }

    /// Graceful shutdown: stop admitting, drain everything already
    /// queued, and join the executor threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryScheduler {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Execute one admitted query on this worker thread.
fn run_one(
    pipeline: &Pipeline<'_>,
    cluster: &SimCluster,
    governor: &WorkerGovernor,
    stats: &Stats,
    job: Job,
) {
    let shared = job.shared;
    // Hold the query's slot cost for the whole run.
    let guard = match governor.acquire(slot_cost(cluster, shared.strategy), &shared.cancel) {
        Ok(g) => g,
        Err(e) => {
            finalize(&shared, stats, Err(e));
            return;
        }
    };
    // Claim Queued → Running; a query cancelled while queued is already
    // terminal and must not run.
    {
        let mut st = shared.state.lock();
        if st.result.is_some() {
            return;
        }
        st.status = QueryStatus::Running;
        st.started = Some(Instant::now());
    }
    let result = pipeline.run_with(&job.request, shared.strategy, &shared.cancel);
    drop(guard);
    finalize(&shared, stats, result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_core::workload::{WorkloadScale, PREP_QUERY};
    use sqlml_core::ClusterConfig;
    use sqlml_transform::TransformSpec;

    fn cluster() -> Arc<SimCluster> {
        let c = SimCluster::start(ClusterConfig::for_tests()).unwrap();
        c.load_workload(WorkloadScale::TINY, 11).unwrap();
        Arc::new(c)
    }

    fn request() -> PipelineRequest {
        PipelineRequest {
            prep_sql: PREP_QUERY.to_string(),
            spec: TransformSpec::new(&["gender"]),
            ml_command: "svm label=4 iterations=10".to_string(),
        }
    }

    #[test]
    fn invalid_requests_reject_with_reason() {
        let sched = QueryScheduler::start(cluster(), SchedulerConfig::default());
        let mut bad_ml = request();
        bad_ml.ml_command = "teleport label=1".into();
        let err = sched
            .submit(QuerySpec::new("t", bad_ml, Strategy::InSql))
            .unwrap_err();
        assert!(matches!(err.reason, RejectReason::Invalid(_)));
        assert!(err.to_string().contains("ml command"), "{err}");
        let mut bad_sql = request();
        bad_sql.prep_sql = "SELECT nothing FROM nowhere".into();
        let err = sched
            .submit(QuerySpec::new("t", bad_sql, Strategy::InSql))
            .unwrap_err();
        assert!(err.to_string().contains("prep sql"), "{err}");
        let s = sched.stats();
        assert_eq!((s.submitted, s.rejected), (2, 2));
        sched.shutdown();
    }

    #[test]
    fn one_query_completes_with_latency_split() {
        let sched = QueryScheduler::start(cluster(), SchedulerConfig::default());
        let handle = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSqlStream))
            .unwrap();
        let result = handle.wait();
        let report = result.as_ref().as_ref().expect("pipeline failed");
        assert!(report.rows_to_ml > 0);
        assert_eq!(handle.status(), QueryStatus::Completed);
        let lat = handle.latency().expect("finished queries have latency");
        assert_eq!(lat.total, lat.queued + lat.running);
        assert!(lat.running > Duration::ZERO);
        let s = sched.stats();
        assert_eq!((s.completed, s.inflight_now), (1, 0));
        assert!(s.inflight_high_water >= 1);
        sched.shutdown();
    }

    #[test]
    fn zero_deadline_cancels_cleanly_and_cluster_stays_usable() {
        let sched = QueryScheduler::start(cluster(), SchedulerConfig::default());
        let doomed = sched
            .submit(
                QuerySpec::new("t", request(), Strategy::InSqlStream).with_deadline(Duration::ZERO),
            )
            .unwrap();
        let result = doomed.wait();
        let err = result.as_ref().as_ref().unwrap_err();
        assert!(err.is_cancelled(), "expected cancellation, got {err}");
        assert_eq!(doomed.status(), QueryStatus::Cancelled);
        // The shared cluster is unharmed: the next query completes.
        let ok = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSqlStream))
            .unwrap();
        assert!(ok.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }

    #[test]
    fn explicit_cancel_of_a_queued_query_is_immediate() {
        // No executor will ever pop: fill the only worker with a query
        // first, then cancel the one stuck behind it.
        let sched = QueryScheduler::start(
            cluster(),
            SchedulerConfig {
                max_concurrent: 1,
                ..SchedulerConfig::default()
            },
        );
        let first = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        let second = sched
            .submit(QuerySpec::new("t", request(), Strategy::InSql))
            .unwrap();
        second.cancel("user pressed ctrl-c");
        let result = second.wait();
        let err = result.as_ref().as_ref().unwrap_err();
        assert!(err.to_string().contains("ctrl-c"), "{err}");
        assert!(first.wait().as_ref().as_ref().is_ok());
        sched.shutdown();
    }
}
