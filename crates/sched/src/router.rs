//! Cache-aware placement across serving shards.
//!
//! Each admitted request is placed on one of N `SimCluster` shards by a
//! score combining three signals an operator would reach for first:
//!
//! * **cache affinity** — a shard whose §5 cache already holds a usable
//!   full-transform or recode-map entry for the request's descriptor
//!   (probed cheaply via [`sqlml_cache::CacheManager::probe`]) can serve
//!   it near-free, so it earns a large bonus;
//! * **queue depth** — every request already waiting on a shard pushes
//!   new work elsewhere;
//! * **slot availability** — a shard whose worker-slot pool is mostly
//!   held will make even a short queue wait long.
//!
//! The affinity bonus is deliberately finite: a shard that is deeply
//! backlogged loses its cache advantage (a full-result hit is not worth
//! waiting behind eight queued pipelines), which is exactly the regime
//! where cross-shard work stealing takes over.
//!
//! **Lock discipline of the probe path** (audited for the lock-order
//! suite): the router itself holds no locks — its only state is an
//! atomic round-robin cursor — so placement can never participate in a
//! lock cycle. The per-shard [`sqlml_cache::CacheManager::probe`] it
//! calls takes `cache.full` and then `cache.maps` strictly
//! *sequentially* (each guard is released before the next lock), which
//! is consistent with the declared `cache.full → cache.maps` order from
//! `CacheManager::new`; the tracked layer (`sqlml_common::lockorder`,
//! built with `--features lock-order`) asserts that order at runtime
//! and aborts on any inversion.

use std::sync::atomic::{AtomicUsize, Ordering};

use sqlml_cache::CacheProbe;

/// What a full-result reuse is worth, in queue-depth units.
const FULL_BONUS: f64 = 8.0;
/// What a recode-map reuse is worth, in queue-depth units.
const MAP_BONUS: f64 = 3.0;
/// Penalty weight on the fraction of worker slots already held.
const SLOT_WEIGHT: f64 = 2.0;

/// WFQ cost multiplier for a query expected (or measured) to enjoy a
/// §5.1 full-result reuse: the run collapses to one SELECT over a
/// materialization, so charging full slot cost would let WFQ starve the
/// cluster of its cheapest, most profitable work.
pub const FULL_DISCOUNT: f64 = 0.1;
/// WFQ cost multiplier under §5.2 recode-map reuse (one of recoding's
/// two passes is skipped; the prep query still runs).
pub const MAP_DISCOUNT: f64 = 0.5;

/// The WFQ cost multiplier a probe outcome predicts.
pub fn probe_discount(probe: CacheProbe) -> f64 {
    match probe {
        CacheProbe::Full => FULL_DISCOUNT,
        CacheProbe::RecodeMap => MAP_DISCOUNT,
        CacheProbe::Miss => 1.0,
    }
}

/// One shard's load signals at placement time.
#[derive(Debug, Clone, Copy)]
pub struct ShardLoad {
    /// Requests waiting in the shard's admission queue.
    pub queue_depth: usize,
    /// Worker slots currently held on the shard.
    pub slots_in_use: usize,
    /// The shard's worker-slot capacity (≥ 1).
    pub slot_capacity: usize,
    /// What the shard's §5 cache would offer this request.
    pub probe: CacheProbe,
    /// The shard is leaving the fleet (`remove_shard` drain in
    /// progress): ineligible for placement no matter its score.
    pub draining: bool,
}

/// A placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the chosen shard.
    pub shard: usize,
    /// The cache reuse the chosen shard offers. `Miss` means the
    /// placement was load-driven and the job may be stolen by an idle
    /// peer; anything better pins the job to this shard.
    pub affinity: CacheProbe,
}

/// Scores shards and breaks ties round-robin so equally idle shards
/// share load instead of all placements landing on shard 0.
#[derive(Debug, Default)]
pub struct ShardRouter {
    rr: AtomicUsize,
}

impl ShardRouter {
    pub fn new() -> ShardRouter {
        ShardRouter::default()
    }

    fn score(load: &ShardLoad) -> f64 {
        let bonus = match load.probe {
            CacheProbe::Full => FULL_BONUS,
            CacheProbe::RecodeMap => MAP_BONUS,
            CacheProbe::Miss => 0.0,
        };
        let busy = load.slots_in_use as f64 / load.slot_capacity.max(1) as f64;
        bonus - load.queue_depth as f64 - SLOT_WEIGHT * busy
    }

    /// Choose a shard for one request; the scan starts at a rotating
    /// offset so exact ties spread round-robin. Draining shards are
    /// ineligible; `None` means no live shard exists (empty or
    /// fleet-wide drain — the caller rejects rather than placing onto a
    /// shard that is on its way out).
    pub fn place(&self, loads: &[ShardLoad]) -> Option<Placement> {
        if loads.is_empty() {
            return None;
        }
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % loads.len();
        let mut best: Option<usize> = None;
        let mut best_score = f64::NEG_INFINITY;
        for k in 0..loads.len() {
            let i = (start + k) % loads.len();
            if loads[i].draining {
                continue;
            }
            let s = Self::score(&loads[i]);
            if s > best_score {
                best_score = s;
                best = Some(i);
            }
        }
        best.map(|shard| Placement {
            shard,
            affinity: loads[shard].probe,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle(probe: CacheProbe) -> ShardLoad {
        ShardLoad {
            queue_depth: 0,
            slots_in_use: 0,
            slot_capacity: 8,
            probe,
            draining: false,
        }
    }

    #[test]
    fn cache_affinity_wins_on_an_idle_fleet() {
        let r = ShardRouter::new();
        let loads = [
            idle(CacheProbe::Miss),
            idle(CacheProbe::Full),
            idle(CacheProbe::RecodeMap),
        ];
        for _ in 0..8 {
            let p = r.place(&loads).unwrap();
            assert_eq!((p.shard, p.affinity), (1, CacheProbe::Full));
        }
    }

    #[test]
    fn deep_backlog_overrides_cache_affinity() {
        let r = ShardRouter::new();
        let mut loads = [idle(CacheProbe::Full), idle(CacheProbe::Miss)];
        loads[0].queue_depth = 12; // worth more than the FULL bonus of 8
        assert_eq!(r.place(&loads).unwrap().shard, 1);
        assert_eq!(r.place(&loads).unwrap().affinity, CacheProbe::Miss);
    }

    #[test]
    fn busy_slots_push_work_to_the_free_shard() {
        let r = ShardRouter::new();
        let mut loads = [idle(CacheProbe::Miss), idle(CacheProbe::Miss)];
        loads[0].slots_in_use = 8; // fully held
        for _ in 0..6 {
            assert_eq!(r.place(&loads).unwrap().shard, 1);
        }
    }

    #[test]
    fn exact_ties_spread_round_robin() {
        let r = ShardRouter::new();
        let loads = [idle(CacheProbe::Miss); 3];
        let picks: Vec<usize> = (0..6).map(|_| r.place(&loads).unwrap().shard).collect();
        for shard in 0..3 {
            assert_eq!(
                picks.iter().filter(|p| **p == shard).count(),
                2,
                "uneven spread: {picks:?}"
            );
        }
    }

    #[test]
    fn draining_shards_are_never_placed_onto() {
        let r = ShardRouter::new();
        // The draining shard has the best score by far (idle + cache
        // hit); placement must still avoid it.
        let mut loads = [idle(CacheProbe::Full), idle(CacheProbe::Miss)];
        loads[0].draining = true;
        loads[1].queue_depth = 6;
        for _ in 0..8 {
            assert_eq!(r.place(&loads).unwrap().shard, 1);
        }
        // A fleet-wide drain (or an empty fleet) has no placement.
        loads[1].draining = true;
        assert_eq!(r.place(&loads), None);
        assert_eq!(r.place(&[]), None);
    }

    #[test]
    fn discounts_order_by_reuse_quality() {
        assert!(probe_discount(CacheProbe::Full) < probe_discount(CacheProbe::RecodeMap));
        assert!(probe_discount(CacheProbe::RecodeMap) < probe_discount(CacheProbe::Miss));
        assert_eq!(probe_discount(CacheProbe::Miss), 1.0);
    }
}
