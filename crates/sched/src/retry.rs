//! Client-side retry for admission rejects.
//!
//! A bounded admission queue surfaces backpressure as
//! [`RejectReason::QueueFull`]; a closed-loop caller that immediately
//! resubmits turns that into a hot loop against the scheduler's mutex.
//! [`RetryPolicy`] is the standard remedy: bounded exponential backoff
//! with decorrelating jitter, giving up early when the caller's deadline
//! could no longer be met anyway. Only *transient* rejects are retried:
//! `QueueFull` (the backlog drains) and `Draining` (the targeted shard
//! is leaving the fleet, but an unpinned resubmission routes to a live
//! peer). `Invalid` and `ShuttingDown` rejects are permanent by
//! construction.
//!
//! The loop is written against a [`Clock`] so unit tests drive it with a
//! fake clock and assert the exact sleep schedule; production code uses
//! [`SystemClock`].

use std::time::{Duration, Instant};

use sqlml_common::SplitMix64;

use crate::queue::{RejectReason, Rejected};

/// Bounded exponential backoff with jitter for `QueueFull` rejects.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total admission attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a uniform
    /// factor in `[1 - jitter, 1]`, decorrelating competing clients.
    pub jitter: f64,
    /// Seed for the jitter stream (deterministic for tests; callers that
    /// want decorrelation across clients should vary it).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            jitter: 0.5,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The un-jittered backoff before retry number `retry` (0-based):
    /// `min(base × 2^retry, cap)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        exp.min(self.cap)
    }
}

/// Time source the retry loop runs against, so tests can fake it.
pub trait Clock {
    fn now(&self) -> Instant;
    fn sleep(&self, d: Duration);
}

/// The real clock.
#[derive(Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Run `attempt` until it succeeds, rejects permanently, exhausts
/// `policy.max_attempts`, or would sleep past `deadline` (measured from
/// the first attempt — the same origin the scheduler uses for query
/// deadlines, so a retried submission never sleeps through the window
/// the query needed to actually run).
pub fn retry_queue_full<T>(
    policy: &RetryPolicy,
    deadline: Option<Duration>,
    clock: &impl Clock,
    mut attempt: impl FnMut() -> Result<T, Rejected>,
) -> Result<T, Rejected> {
    let start = clock.now();
    let mut rng = SplitMix64::new(policy.seed);
    let attempts = policy.max_attempts.max(1);
    let mut last = None;
    for retry in 0..attempts {
        match attempt() {
            Ok(v) => return Ok(v),
            Err(r)
                if matches!(
                    r.reason,
                    RejectReason::QueueFull { .. } | RejectReason::Draining { .. }
                ) =>
            {
                last = Some(r)
            }
            Err(r) => return Err(r), // Invalid / ShuttingDown: permanent
        }
        if retry + 1 == attempts {
            break;
        }
        let mut sleep = policy.backoff(retry);
        if policy.jitter > 0.0 {
            // Uniform in [1 - jitter, 1].
            let unit = rng.next_below(1 << 20) as f64 / (1u64 << 20) as f64;
            let factor = 1.0 - policy.jitter.clamp(0.0, 1.0) * unit;
            sleep = sleep.mul_f64(factor);
        }
        if let Some(d) = deadline {
            // Deadline-aware give-up: if the next attempt could not even
            // be *made* before the deadline, surrender now with the last
            // reject instead of sleeping into certain failure.
            let elapsed = clock.now().saturating_duration_since(start);
            if elapsed + sleep >= d {
                break;
            }
        }
        clock.sleep(sleep);
    }
    Err(last.unwrap_or(Rejected {
        reason: RejectReason::QueueFull { capacity: 0 },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A fake clock: `sleep` advances time instantly and records itself.
    struct FakeClock {
        origin: Instant,
        elapsed: RefCell<Duration>,
        slept: RefCell<Vec<Duration>>,
    }

    impl FakeClock {
        fn new() -> FakeClock {
            FakeClock {
                origin: Instant::now(),
                elapsed: RefCell::new(Duration::ZERO),
                slept: RefCell::new(Vec::new()),
            }
        }
    }

    impl Clock for FakeClock {
        fn now(&self) -> Instant {
            self.origin + *self.elapsed.borrow()
        }
        fn sleep(&self, d: Duration) {
            *self.elapsed.borrow_mut() += d;
            self.slept.borrow_mut().push(d);
        }
    }

    fn full() -> Rejected {
        Rejected {
            reason: RejectReason::QueueFull { capacity: 2 },
        }
    }

    fn policy_no_jitter() -> RetryPolicy {
        RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(55),
            ..RetryPolicy::default()
        };
        let series: Vec<u64> = (0..5).map(|i| p.backoff(i).as_millis() as u64).collect();
        assert_eq!(series, vec![10, 20, 40, 55, 55]);
        // Huge retry counts saturate instead of overflowing the shift.
        assert_eq!(p.backoff(40), Duration::from_millis(55));
    }

    #[test]
    fn retries_queue_full_until_success() {
        let clock = FakeClock::new();
        let mut calls = 0;
        let out = retry_queue_full(&policy_no_jitter(), None, &clock, || {
            calls += 1;
            if calls < 3 {
                Err(full())
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
        // Two sleeps, exponentially spaced: 10ms then 20ms.
        assert_eq!(
            *clock.slept.borrow(),
            vec![Duration::from_millis(10), Duration::from_millis(20)]
        );
    }

    #[test]
    fn permanent_rejects_are_not_retried() {
        let clock = FakeClock::new();
        let mut calls = 0;
        let out: Result<(), Rejected> = retry_queue_full(&policy_no_jitter(), None, &clock, || {
            calls += 1;
            Err(Rejected {
                reason: RejectReason::Invalid("bad sql".into()),
            })
        });
        assert!(matches!(out.unwrap_err().reason, RejectReason::Invalid(_)));
        assert_eq!(calls, 1);
        assert!(clock.slept.borrow().is_empty());
    }

    #[test]
    fn exhausting_attempts_returns_the_last_reject() {
        let clock = FakeClock::new();
        let mut calls = 0;
        let out: Result<(), Rejected> = retry_queue_full(&policy_no_jitter(), None, &clock, || {
            calls += 1;
            Err(full())
        });
        assert!(matches!(
            out.unwrap_err().reason,
            RejectReason::QueueFull { capacity: 2 }
        ));
        assert_eq!(calls, 5);
        assert_eq!(clock.slept.borrow().len(), 4);
    }

    #[test]
    fn deadline_aware_give_up_skips_the_doomed_sleep() {
        let clock = FakeClock::new();
        let mut calls = 0;
        // First backoff is 10ms; a 5ms deadline means the retry could
        // never be attempted in time — give up after one call, no sleep.
        let out: Result<(), Rejected> = retry_queue_full(
            &policy_no_jitter(),
            Some(Duration::from_millis(5)),
            &clock,
            || {
                calls += 1;
                Err(full())
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
        assert!(clock.slept.borrow().is_empty());
    }

    #[test]
    fn deadline_admits_retries_that_still_fit() {
        let clock = FakeClock::new();
        let mut calls = 0;
        // 10 + 20ms of backoff fit a 100ms deadline; the third (40ms,
        // cumulative 70 < 100) fits too, so all 5 attempts are made
        // (cumulative sleeps 10+20+40+80 = 150 > 100 stops after the
        // fourth attempt's backoff check).
        let out: Result<(), Rejected> = retry_queue_full(
            &policy_no_jitter(),
            Some(Duration::from_millis(100)),
            &clock,
            || {
                calls += 1;
                Err(full())
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 4);
        assert_eq!(clock.slept.borrow().len(), 3);
    }

    #[test]
    fn draining_rejects_are_retried_like_queue_full() {
        // A submit that races a `remove_shard` sees Draining; the next
        // attempt routes to a live peer. The FakeClock pins the exact
        // backoff schedule: two sleeps (10ms, 20ms) before success.
        let clock = FakeClock::new();
        let mut calls = 0;
        let out = retry_queue_full(&policy_no_jitter(), None, &clock, || {
            calls += 1;
            if calls < 3 {
                Err(Rejected {
                    reason: RejectReason::Draining { shard: 1 },
                })
            } else {
                Ok("placed on a live peer")
            }
        });
        assert_eq!(out.unwrap(), "placed on a live peer");
        assert_eq!(calls, 3);
        assert_eq!(
            *clock.slept.borrow(),
            vec![Duration::from_millis(10), Duration::from_millis(20)]
        );
        // Exhaustion surfaces the Draining reject itself.
        let clock = FakeClock::new();
        let out: Result<(), Rejected> = retry_queue_full(&policy_no_jitter(), None, &clock, || {
            Err(Rejected {
                reason: RejectReason::Draining { shard: 7 },
            })
        });
        assert!(matches!(
            out.unwrap_err().reason,
            RejectReason::Draining { shard: 7 }
        ));
    }

    #[test]
    fn jitter_stays_within_the_configured_band() {
        let p = RetryPolicy {
            max_attempts: 20,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(100),
            jitter: 0.5,
            seed: 7,
        };
        let clock = FakeClock::new();
        let _: Result<(), Rejected> = retry_queue_full(&p, None, &clock, || Err(full()));
        let slept = clock.slept.borrow();
        assert_eq!(slept.len(), 19);
        assert!(slept
            .iter()
            .all(|d| *d >= Duration::from_millis(50) && *d <= Duration::from_millis(100)));
        // And it actually varies.
        assert!(slept.iter().any(|d| *d != slept[0]));
    }
}
