//! The worker-slot resource governor.
//!
//! One slot ≙ one engine worker thread (SQL or ML). An admitted pipeline
//! must acquire as many slots as the workers it will occupy *before* it
//! starts executing, and holds them for the whole run — so however many
//! pipelines are in flight, the number actually executing never
//! oversubscribes the capacity the operator configured. A counting
//! semaphore (mutex + condvar) rather than a per-resource lock: slots
//! are fungible.
//!
//! Waiting is cancellation-aware: a queued pipeline whose deadline fires
//! while it waits for slots gives up immediately instead of executing a
//! doomed run.

use std::time::Duration;

use sqlml_common::lockorder::{TrackedCondvar, TrackedMutex};
use sqlml_common::{CancelToken, Result};

/// How often a slot waiter re-polls its cancellation token. Waiters are
/// also woken eagerly whenever slots free up; this bounds only the
/// latency of observing a deadline while every slot stays busy.
const CANCEL_POLL: Duration = Duration::from_millis(25);

/// Counting semaphore over fungible worker slots.
#[derive(Debug)]
pub struct WorkerGovernor {
    capacity: usize,
    in_use: TrackedMutex<usize>,
    freed: TrackedCondvar,
}

impl WorkerGovernor {
    pub fn new(capacity: usize) -> WorkerGovernor {
        WorkerGovernor {
            capacity: capacity.max(1),
            in_use: TrackedMutex::new("sched.governor.in_use", 0),
            freed: TrackedCondvar::new("sched.governor.freed"),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently held.
    pub fn in_use(&self) -> usize {
        *self.in_use.lock()
    }

    /// Block until `want` slots are free, then take them. A request
    /// larger than the whole capacity is clamped to it (one query may
    /// use the entire cluster, never more than exists — otherwise it
    /// could never run). Returns a guard that releases on drop, or
    /// [`sqlml_common::SqlmlError::Cancelled`] if the token fires while
    /// waiting.
    pub fn acquire(&self, want: usize, cancel: &CancelToken) -> Result<SlotGuard<'_>> {
        let want = want.clamp(1, self.capacity);
        let mut in_use = self.in_use.lock();
        loop {
            cancel.check("worker-slot wait")?;
            if *in_use + want <= self.capacity {
                *in_use += want;
                return Ok(SlotGuard {
                    governor: self,
                    slots: want,
                });
            }
            self.freed.wait_for(&mut in_use, CANCEL_POLL);
        }
    }
}

/// RAII slot lease; dropping it returns the slots and wakes waiters.
#[derive(Debug)]
pub struct SlotGuard<'g> {
    governor: &'g WorkerGovernor,
    slots: usize,
}

impl SlotGuard<'_> {
    pub fn slots(&self) -> usize {
        self.slots
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        {
            let mut in_use = self.governor.in_use.lock();
            *in_use = in_use.saturating_sub(self.slots);
        }
        // Several waiters with different demands may now fit; wake all.
        self.governor.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn slots_are_counted_and_released() {
        let g = WorkerGovernor::new(4);
        let never = CancelToken::new();
        let a = g.acquire(3, &never).unwrap();
        assert_eq!(g.in_use(), 3);
        let b = g.acquire(1, &never).unwrap();
        assert_eq!(g.in_use(), 4);
        drop(a);
        assert_eq!(g.in_use(), 1);
        drop(b);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn oversized_requests_clamp_to_capacity() {
        let g = WorkerGovernor::new(2);
        let guard = g.acquire(100, &CancelToken::new()).unwrap();
        assert_eq!(guard.slots(), 2);
    }

    #[test]
    fn governor_serializes_past_capacity() {
        let g = Arc::new(WorkerGovernor::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let now = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let (g, peak, now) = (Arc::clone(&g), Arc::clone(&peak), Arc::clone(&now));
                s.spawn(move || {
                    let _guard = g.acquire(1, &CancelToken::new()).unwrap();
                    let running = now.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(running, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(10));
                    now.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "oversubscribed");
    }

    #[test]
    fn cancelled_waiter_gives_up() {
        let g = WorkerGovernor::new(1);
        let hog = g.acquire(1, &CancelToken::new()).unwrap();
        let t = CancelToken::with_deadline(Duration::from_millis(30));
        let start = std::time::Instant::now();
        let err = g.acquire(1, &t).unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        assert!(start.elapsed() < Duration::from_secs(2));
        drop(hog);
    }
}
