//! The query-serving plane: many concurrent [`sqlml_core::PipelineRequest`]s
//! multiplexed over a fleet of [`sqlml_core::SimCluster`] shards.
//!
//! The paper's premise is that SQL+analytics pipelines are a *recurring,
//! shared* workload — §5's caching only pays off when many queries hit
//! the same cluster. This crate supplies the subsystem that makes that
//! real: a serving layer in front of [`sqlml_core::Pipeline`] with
//!
//! * a **bounded admission queue** per shard with backpressure — a full
//!   queue (or an invalid request) is rejected immediately with a typed
//!   [`RejectReason`], never silently dropped or unboundedly buffered —
//!   plus an opt-in client-side [`RetryPolicy`] (bounded exponential
//!   backoff + jitter, deadline-aware give-up) for riding out transient
//!   `QueueFull` rejects;
//! * **weighted fair scheduling** across tenants: virtual-finish-time
//!   stamps (WFQ) so a tenant with weight 2 drains twice as fast as one
//!   with weight 1, and no tenant starves behind another's burst. The
//!   cost model is **cache-aware**: a query the §5 cache probe predicts
//!   will be (nearly) free is admitted at a discounted cost, and the
//!   *measured* cost is settled back onto the tenant's virtual clock
//!   after the run, so mispredictions never compound;
//! * a **shard router** ([`ShardRouter`]) placing each admitted query on
//!   one of N replicated-warehouse shards by a score combining queue
//!   depth, worker-slot availability, and cache affinity (probed via the
//!   non-materializing [`sqlml_cache::CacheManager::probe`]);
//! * **bounded cross-shard work stealing**: an idle shard's executor may
//!   claim the head-of-line query of the most-backlogged peer — never a
//!   cache-pinned one — and run it entirely on its own cluster;
//! * a **worker-slot governor** per shard: each admitted pipeline must
//!   hold slots proportional to the SQL/ML workers it occupies before it
//!   may run, so concurrent pipelines time-share each cluster instead of
//!   oversubscribing it;
//! * **per-query deadlines and cooperative cancellation** threaded
//!   through the SQL → transfer → ML stages (see
//!   [`sqlml_common::CancelToken`]), unwinding through the normal error
//!   path so no threads, sockets, spill files, or temp tables leak —
//!   wherever the query ended up running;
//! * per-query [`QueryHandle`]s exposing status, the result, the
//!   queued/running/total latency split, and placement (which shard, and
//!   whether the query was stolen or migrated off a drained shard);
//! * an **elastic fleet**: shards join ([`QueryScheduler::add_shard`])
//!   and leave ([`QueryScheduler::remove_shard`]) at runtime behind an
//!   epoch-versioned registry, with a two-phase drain that migrates or
//!   drains queued work and settles WFQ costs before the shard's
//!   executors are joined. A pluggable [`ScalePolicy`] can advise
//!   grow/shrink from the live [`ScaleSignal`]; none is installed by
//!   default and the scheduler never actuates on its own.
//!
//! Schedulers are built with [`SchedulerBuilder`]:
//!
//! ```no_run
//! # use sqlml_core::{ClusterConfig, PipelineRequest, Strategy, WorkloadScale};
//! # use sqlml_sched::{DrainPolicy, QueryScheduler, QuerySpec, SchedulerConfig, SubmitOpts};
//! # use sqlml_transform::TransformSpec;
//! let sched = QueryScheduler::builder(SchedulerConfig::default())
//!     .warehouse(ClusterConfig::for_tests(), WorkloadScale::TINY, 42)
//!     .shards(2)
//!     .build()
//!     .unwrap();
//! let handle = sched
//!     .submit(QuerySpec::new(
//!         "analytics",
//!         PipelineRequest {
//!             prep_sql: "SELECT age, amount, abandoned FROM carts".into(),
//!             spec: TransformSpec::default(),
//!             ml_command: "svm label=2 iterations=10".into(),
//!         },
//!         Strategy::InSqlStream,
//!     ))
//!     .unwrap();
//! let result = handle.wait();
//! // Grow under load, then drain the newcomer back out; queued work
//! // migrates to the survivors and no handle is ever lost.
//! let id = sched.add_shard().unwrap();
//! let removal = sched.remove_shard(id, DrainPolicy::Migrate).unwrap();
//! # let _ = (result, removal);
//! // Pin a query to a specific shard via SubmitOpts:
//! let pinned = sched.submit_opts(
//!     QuerySpec::new(
//!         "analytics",
//!         PipelineRequest {
//!             prep_sql: "SELECT 1".into(),
//!             spec: TransformSpec::default(),
//!             ml_command: "svm label=0 iterations=1".into(),
//!         },
//!         Strategy::InSql,
//!     ),
//!     SubmitOpts::pinned(0),
//! );
//! # let _ = pinned;
//! ```

pub mod governor;
pub mod queue;
mod registry;
pub mod retry;
pub mod router;
pub mod scale;
pub mod scheduler;

pub use governor::{SlotGuard, WorkerGovernor};
pub use queue::{FairQueue, Popped, RejectReason, Rejected};
pub use retry::{retry_queue_full, Clock, RetryPolicy, SystemClock};
pub use router::{probe_discount, Placement, ShardLoad, ShardRouter, FULL_DISCOUNT, MAP_DISCOUNT};
pub use scale::{ScaleAdvice, ScalePolicy, ScaleSignal, ThresholdScalePolicy};
pub use scheduler::{
    ClusterCounters, DrainPolicy, QueryHandle, QueryLatency, QueryScheduler, QuerySpec,
    QueryStatus, Retry, SchedStatsSnapshot, SchedulerBuilder, SchedulerConfig, ShardRemoval,
    ShardStat, ShardTemplate, SubmitOpts,
};
