//! The query-serving plane: many concurrent [`sqlml_core::PipelineRequest`]s
//! multiplexed over one shared [`sqlml_core::SimCluster`].
//!
//! The paper's premise is that SQL+analytics pipelines are a *recurring,
//! shared* workload — §5's caching only pays off when many queries hit
//! the same cluster. This crate supplies the subsystem that makes that
//! real: a serving layer in front of [`sqlml_core::Pipeline`] with
//!
//! * a **bounded admission queue** with backpressure — a full queue (or
//!   an invalid request) is rejected immediately with a typed
//!   [`RejectReason`], never silently dropped or unboundedly buffered;
//! * **weighted fair scheduling** across tenants: virtual-finish-time
//!   stamps (WFQ) so a tenant with weight 2 drains twice as fast as one
//!   with weight 1, and no tenant starves behind another's burst;
//! * a **worker-slot governor**: each admitted pipeline must hold slots
//!   proportional to the SQL/ML workers it occupies before it may run,
//!   so concurrent pipelines time-share the cluster instead of
//!   oversubscribing it;
//! * **per-query deadlines and cooperative cancellation** threaded
//!   through the SQL → transfer → ML stages (see
//!   [`sqlml_common::CancelToken`]), unwinding through the normal error
//!   path so no threads, sockets, spill files, or temp tables leak;
//! * per-query [`QueryHandle`]s exposing status, the result, and the
//!   queued/running/total latency split.
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use sqlml_core::{ClusterConfig, PipelineRequest, SimCluster, Strategy};
//! # use sqlml_sched::{QueryScheduler, QuerySpec, SchedulerConfig};
//! # use sqlml_transform::TransformSpec;
//! let cluster = Arc::new(SimCluster::start(ClusterConfig::for_tests()).unwrap());
//! let sched = QueryScheduler::start(Arc::clone(&cluster), SchedulerConfig::default());
//! let handle = sched
//!     .submit(QuerySpec::new(
//!         "analytics",
//!         PipelineRequest {
//!             prep_sql: "SELECT age, amount, abandoned FROM carts".into(),
//!             spec: TransformSpec::default(),
//!             ml_command: "svm label=2 iterations=10".into(),
//!         },
//!         Strategy::InSqlStream,
//!     ))
//!     .unwrap();
//! let result = handle.wait();
//! # let _ = result;
//! ```

pub mod governor;
pub mod queue;
pub mod scheduler;

pub use governor::{SlotGuard, WorkerGovernor};
pub use queue::{FairQueue, RejectReason, Rejected};
pub use scheduler::{
    QueryHandle, QueryLatency, QueryScheduler, QuerySpec, QueryStatus, SchedStatsSnapshot,
    SchedulerConfig,
};
