//! End-to-end orchestration for queue-based transfer: publish a table
//! from the SQL engine, then run (any number of) ML jobs over the topic.
//!
//! The structural difference from the socket path is visible in the API:
//! publish and consume are **separate calls** — the broker's log sits
//! between them, so the SQL side never waits for the ML side (and one
//! publish can feed many jobs, the "Kafka as cache" idea of §8).

use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlml_common::{Result, Schema, SqlmlError};
use sqlml_mlengine::job::{JobConfig, JobOutcome, JobRunner, TrainingSpec};
use sqlml_sqlengine::Engine;

use crate::broker::Broker;
use crate::input_format::{ConsumerFaults, MqInputFormat};
use crate::udf::MqTransferUdf;

/// Statistics of a queue-based pipeline run.
#[derive(Debug)]
pub struct MqPipelineOutcome {
    pub job: JobOutcome,
    pub rows_published: u64,
    pub bytes_published: u64,
    pub publish_time: Duration,
    pub consume_rows: usize,
}

/// Register the `mq_transfer` UDF on an engine. Call once per engine.
pub fn install_udf(engine: &Engine, broker: &Broker) {
    engine.register_table_udf(Arc::new(MqTransferUdf::new(broker.clone())));
}

/// Publish a catalog table to `topic` (creating the topic with one
/// partition per table partition). Returns (rows, bytes) published and
/// the table's schema.
pub fn publish_table(
    engine: &Engine,
    broker: &Broker,
    table: &str,
    topic: &str,
) -> Result<(u64, u64, Schema)> {
    let source = engine.catalog().table(table)?;
    let schema = source.schema().clone();
    broker.create_topic(topic, source.num_partitions())?;
    let stats = engine.query(&format!(
        "SELECT * FROM TABLE(mq_transfer({table}, '{topic}')) AS s"
    ))?;
    let mut rows = 0u64;
    let mut bytes = 0u64;
    for r in stats.collect_rows() {
        rows += r.get(1).as_i64()? as u64;
        bytes += r.get(2).as_i64()? as u64;
    }
    Ok((rows, bytes, schema))
}

/// Run one ML job over an already-published topic.
pub fn run_mq_job(
    broker: &Broker,
    topic: &str,
    schema: Schema,
    command: &str,
    ml_config: JobConfig,
    faults: Option<Arc<ConsumerFaults>>,
) -> Result<JobOutcome> {
    let spec = TrainingSpec::parse(command)?;
    let mut format = MqInputFormat::new(broker.clone(), topic, schema);
    if let Some(f) = faults {
        format = format.with_faults(f);
    }
    JobRunner::new(ml_config).run(&format, &spec)
}

/// Full pipeline: publish, then train — the queue analogue of
/// `StreamSession::run`.
pub fn run_mq_pipeline(
    engine: &Engine,
    broker: &Broker,
    table: &str,
    topic: &str,
    command: &str,
    ml_config: JobConfig,
) -> Result<MqPipelineOutcome> {
    let t0 = Instant::now();
    let (rows_published, bytes_published, schema) = publish_table(engine, broker, table, topic)?;
    let publish_time = t0.elapsed();
    let job = run_mq_job(broker, topic, schema, command, ml_config, None)?;
    if job.ingest.rows as u64 != rows_published {
        return Err(SqlmlError::Transfer(format!(
            "published {rows_published} rows but the job ingested {}",
            job.ingest.rows
        )));
    }
    Ok(MqPipelineOutcome {
        rows_published,
        bytes_published,
        publish_time,
        consume_rows: job.ingest.rows,
        job,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};
    use sqlml_common::{Row, SplitMix64};
    use sqlml_sqlengine::EngineConfig;

    fn engine_with_points(workers: usize, n: usize, seed: u64) -> Engine {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        let schema = Schema::new(vec![
            Field::new("x", DataType::Double),
            Field::new("y", DataType::Double),
            Field::new("label", DataType::Int),
        ]);
        let mut rng = SplitMix64::new(seed);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let cls = (i % 2) as i64;
                let c = if cls == 0 { -2.0 } else { 2.0 };
                row![
                    c + rng.next_gaussian() * 0.4,
                    c + rng.next_gaussian() * 0.4,
                    cls
                ]
            })
            .collect();
        engine.register_rows("points", schema, rows);
        engine
    }

    #[test]
    fn publish_then_train_end_to_end() {
        let engine = engine_with_points(3, 300, 101);
        let broker = Broker::new(BrokerConfig::default());
        install_udf(&engine, &broker);
        let outcome = run_mq_pipeline(
            &engine,
            &broker,
            "points",
            "points-topic",
            "svm label=2 iterations=40",
            JobConfig {
                num_workers: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.rows_published, 300);
        assert_eq!(outcome.consume_rows, 300);
        assert_eq!(outcome.job.model.predict(&[2.0, 2.0]), 1.0);
        assert_eq!(outcome.job.model.predict(&[-2.0, -2.0]), 0.0);
    }

    #[test]
    fn one_publish_feeds_many_jobs() {
        // §8: "Kafka could also be the system to cache the data" — the
        // log is durable, so several algorithms train from one publish.
        let engine = engine_with_points(2, 200, 103);
        let broker = Broker::new(BrokerConfig::default());
        install_udf(&engine, &broker);
        let (rows, _, schema) = publish_table(&engine, &broker, "points", "shared").unwrap();
        assert_eq!(rows, 200);
        for command in [
            "svm label=2 iterations=10",
            "nb label=2",
            "tree label=2 depth=3",
        ] {
            let job = run_mq_job(
                &broker,
                "shared",
                schema.clone(),
                command,
                JobConfig {
                    num_workers: 2,
                    ..Default::default()
                },
                None,
            )
            .unwrap();
            assert_eq!(job.ingest.rows, 200, "{command}");
        }
        // The log still holds everything.
        assert_eq!(broker.stats("shared").unwrap().sealed_partitions, 2);
    }

    #[test]
    fn consumer_failure_never_touches_the_producer() {
        // The §8 durability argument vs the §6 socket restart: a consumer
        // fault is absorbed by log replay; the publish is not redone.
        let engine = engine_with_points(2, 150, 107);
        let broker = Broker::new(BrokerConfig::default());
        install_udf(&engine, &broker);
        let (rows, _, schema) = publish_table(&engine, &broker, "points", "faulty").unwrap();
        let records_before = broker.stats("faulty").unwrap().records;

        let faults = Arc::new(ConsumerFaults::new());
        faults.fail_partition_after(0, 1);
        faults.fail_partition_after(1, 1);
        let job = run_mq_job(
            &broker,
            "faulty",
            schema,
            "nb label=2",
            JobConfig {
                num_workers: 2,
                ..Default::default()
            },
            Some(Arc::clone(&faults)),
        )
        .unwrap();
        assert_eq!(job.ingest.rows as u64, rows, "exactly-once after replay");
        assert_eq!(faults.fired().len(), 2);
        // Nothing was re-published.
        assert_eq!(broker.stats("faulty").unwrap().records, records_before);
    }

    #[test]
    fn slow_consumer_is_fully_decoupled() {
        // Publish completes with no consumer at all; a consumer started
        // afterwards still gets everything — the log *is* the buffer.
        let engine = engine_with_points(2, 120, 109);
        let broker = Broker::new(BrokerConfig::default());
        install_udf(&engine, &broker);
        let (rows, _, schema) = publish_table(&engine, &broker, "points", "late").unwrap();
        assert_eq!(broker.stats("late").unwrap().sealed_partitions, 2);
        std::thread::sleep(Duration::from_millis(30));
        let job = run_mq_job(
            &broker,
            "late",
            schema,
            "nb label=2",
            JobConfig {
                num_workers: 2,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(job.ingest.rows as u64, rows);
    }
}
