//! Message-queue data transfer — the paper's §8 future work, built out.
//!
//! > "As future work, we plan to investigate using a message passing
//! > system like Kafka to pass the data between SQL and ML workers.
//! > Kafka would guarantee at least one read, in case of failures. Kafka
//! > could also be the system to cache the data when the ML workers are
//! > not fast enough to consume the data."
//!
//! This crate implements that design against a Kafka-like [`Broker`]:
//!
//! * **durable partitioned logs** — each topic is a set of append-only
//!   record logs with monotone offsets; records survive consumer
//!   failures, so a crashed reader just replays from its last committed
//!   offset (at-least-once; the reader turns it into exactly-once by
//!   discarding partial reads, like the socket path);
//! * **producer/consumer decoupling** — the log absorbs the whole
//!   stream, so slow (or not-yet-started) ML workers never block the SQL
//!   side, and the *same* published data can feed many ML jobs (the
//!   caching use the paper anticipates);
//! * **no sender restart** — unlike §6's socket protocol, a consumer
//!   failure never reaches the SQL side: the producer publishes once.
//!
//! The pieces mirror the socket-based `sqlml-transfer` crate: a
//! [`MqTransferUdf`] table UDF publishes a table from inside the SQL
//! engine (one topic partition per SQL worker), and an [`MqInputFormat`]
//! lets any unmodified ML job consume it.

pub mod broker;
pub mod input_format;
pub mod session;
pub mod udf;

pub use broker::{Broker, BrokerConfig, TopicStats};
pub use input_format::{ConsumerFaults, MqInputFormat};
pub use session::{publish_table, run_mq_job, MqPipelineOutcome};
pub use udf::MqTransferUdf;
