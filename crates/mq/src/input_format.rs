//! The ML-side `MqInputFormat`: consume a topic through the standard
//! `InputFormat` interface, with replay-on-failure.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use sqlml_common::lockorder::TrackedMutex;
use sqlml_common::{codec, Result, Row, Schema, SqlmlError};
use sqlml_mlengine::input::{InputFormat, InputSplit, RecordReader};

use crate::broker::Broker;

/// How long a consumer waits for the producer before giving up.
pub const CONSUME_TIMEOUT: Duration = Duration::from_secs(60);

/// How many times a reader replays its partition after an (injected or
/// real) failure.
pub const MAX_CONSUME_ATTEMPTS: u32 = 8;

/// Deliberate consumer-side failures for the fault tests: "(partition,
/// fail after N records)" plans, each firing once.
#[derive(Debug)]
pub struct ConsumerFaults {
    plans: TrackedMutex<Vec<(usize, usize)>>,
    fired: TrackedMutex<Vec<(usize, usize)>>,
}

impl Default for ConsumerFaults {
    fn default() -> Self {
        ConsumerFaults {
            plans: TrackedMutex::new("mq.consumer_faults.plans", Vec::new()),
            fired: TrackedMutex::new("mq.consumer_faults.fired", Vec::new()),
        }
    }
}

impl ConsumerFaults {
    pub fn new() -> Self {
        ConsumerFaults::default()
    }

    pub fn fail_partition_after(&self, partition: usize, records: usize) {
        self.plans.lock().push((partition, records));
    }

    fn should_fail(&self, partition: usize, consumed: usize) -> bool {
        // Take the matching plan out under `plans` alone; `fired` is
        // locked only after that guard is released (keeps the two locks
        // order-free for the lock-order suite).
        let plan = {
            let mut plans = self.plans.lock();
            plans
                .iter()
                .position(|(p, after)| *p == partition && consumed >= *after)
                .map(|pos| plans.remove(pos))
        };
        if let Some(plan) = plan {
            self.fired.lock().push(plan);
            true
        } else {
            false
        }
    }

    pub fn fired(&self) -> Vec<(usize, usize)> {
        self.fired.lock().clone()
    }
}

/// One split = one topic partition.
#[derive(Debug, Clone)]
pub struct MqSplit {
    pub topic: String,
    pub partition: usize,
    /// The broker "node" — queue transfers have no SQL-worker locality,
    /// which is part of the §8 trade-off this crate makes observable.
    pub location: String,
}

impl InputSplit for MqSplit {
    fn locations(&self) -> Vec<String> {
        vec![self.location.clone()]
    }

    fn describe(&self) -> String {
        format!("mq:{}/{}", self.topic, self.partition)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Consume a topic as ML input.
pub struct MqInputFormat {
    broker: Broker,
    topic: String,
    schema: Schema,
    faults: Option<Arc<ConsumerFaults>>,
}

impl MqInputFormat {
    pub fn new(broker: Broker, topic: impl Into<String>, schema: Schema) -> Self {
        MqInputFormat {
            broker,
            topic: topic.into(),
            schema,
            faults: None,
        }
    }

    pub fn with_faults(mut self, faults: Arc<ConsumerFaults>) -> Self {
        self.faults = Some(faults);
        self
    }
}

impl InputFormat for MqInputFormat {
    fn get_splits(&self, _requested: usize) -> Result<Vec<Arc<dyn InputSplit>>> {
        let partitions = self.broker.num_partitions(&self.topic)?;
        Ok((0..partitions)
            .map(|p| {
                Arc::new(MqSplit {
                    topic: self.topic.clone(),
                    partition: p,
                    location: "broker".to_string(),
                }) as Arc<dyn InputSplit>
            })
            .collect())
    }

    fn create_reader(&self, split: &dyn InputSplit) -> Result<Box<dyn RecordReader>> {
        let s = split
            .as_any()
            .downcast_ref::<MqSplit>()
            .ok_or_else(|| SqlmlError::Transfer("MqInputFormat got a foreign split".into()))?;
        Ok(Box::new(MqRecordReader {
            broker: self.broker.clone(),
            split: s.clone(),
            schema: self.schema.clone(),
            rows: None,
            faults: self.faults.clone(),
        }))
    }

    fn schema(&self) -> Schema {
        self.schema.clone()
    }
}

/// Reader over one topic partition. Drains the whole partition (possibly
/// replaying after failures — the log makes replay always possible)
/// before yielding the first row, so delivery is exactly-once per split.
struct MqRecordReader {
    broker: Broker,
    split: MqSplit,
    schema: Schema,
    rows: Option<VecDeque<Row>>,
    faults: Option<Arc<ConsumerFaults>>,
}

impl MqRecordReader {
    fn drain(&self) -> Result<VecDeque<Row>> {
        let mut last_err = None;
        for _ in 0..MAX_CONSUME_ATTEMPTS {
            match self.consume_from_start() {
                Ok(rows) => return Ok(rows),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| SqlmlError::Transfer("consume failed".into())))
    }

    /// One consume attempt: replay the partition from offset 0 — the
    /// at-least-once read the paper wants from Kafka.
    fn consume_from_start(&self) -> Result<VecDeque<Row>> {
        let mut rows = VecDeque::new();
        let mut offset = 0u64;
        let mut consumed_records = 0usize;
        loop {
            if let Some(f) = &self.faults {
                if f.should_fail(self.split.partition, consumed_records) {
                    return Err(SqlmlError::InjectedFault(format!(
                        "consumer of {}/{} killed after {consumed_records} records",
                        self.split.topic, self.split.partition
                    )));
                }
            }
            match self.broker.read(
                &self.split.topic,
                self.split.partition,
                offset,
                CONSUME_TIMEOUT,
            )? {
                Some(record) => {
                    let mut body: &[u8] = &record;
                    while !body.is_empty() {
                        let (row, used) = codec::decode_binary_row(body)?;
                        // Guard against schema drift between publisher
                        // and consumer.
                        if row.len() != self.schema.len() {
                            return Err(SqlmlError::Transfer(format!(
                                "record arity {} does not match schema arity {}",
                                row.len(),
                                self.schema.len()
                            )));
                        }
                        rows.push_back(row);
                        body = &body[used..];
                    }
                    offset += 1;
                    consumed_records += 1;
                }
                None => return Ok(rows), // sealed: clean EOF
            }
        }
    }
}

impl RecordReader for MqRecordReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.rows.is_none() {
            self.rows = Some(self.drain()?);
        }
        match self.rows.as_mut() {
            Some(rows) => Ok(rows.pop_front()),
            None => Err(SqlmlError::Ml(
                "record reader buffer missing after drain".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int)])
    }

    fn publish(broker: &Broker, topic: &str, partition: usize, rows: &[Row]) {
        let mut buf = Vec::new();
        for r in rows {
            codec::encode_binary_row(r, &mut buf).unwrap();
        }
        broker.append(topic, partition, buf).unwrap();
        broker.seal(topic, partition).unwrap();
    }

    #[test]
    fn consumes_all_partitions() {
        let broker = Broker::new(BrokerConfig::default());
        broker.create_topic("t", 2).unwrap();
        publish(&broker, "t", 0, &[row![1i64], row![2i64]]);
        publish(&broker, "t", 1, &[row![3i64]]);
        let fmt = MqInputFormat::new(broker, "t", schema());
        let splits = fmt.get_splits(0).unwrap();
        assert_eq!(splits.len(), 2);
        let mut all = Vec::new();
        for s in &splits {
            let mut r = fmt.create_reader(s.as_ref()).unwrap();
            while let Some(row) = r.next_row().unwrap() {
                all.push(row);
            }
        }
        all.sort();
        assert_eq!(all, vec![row![1i64], row![2i64], row![3i64]]);
    }

    #[test]
    fn consumer_fault_replays_from_the_log() {
        let broker = Broker::new(BrokerConfig::default());
        broker.create_topic("t", 1).unwrap();
        // Three records of one row each.
        for i in 0..3i64 {
            let mut buf = Vec::new();
            codec::encode_binary_row(&row![i], &mut buf).unwrap();
            broker.append("t", 0, buf).unwrap();
        }
        broker.seal("t", 0).unwrap();

        let faults = Arc::new(ConsumerFaults::new());
        faults.fail_partition_after(0, 2);
        let fmt = MqInputFormat::new(broker, "t", schema()).with_faults(Arc::clone(&faults));
        let splits = fmt.get_splits(0).unwrap();
        let mut r = fmt.create_reader(splits[0].as_ref()).unwrap();
        let mut rows = Vec::new();
        while let Some(row) = r.next_row().unwrap() {
            rows.push(row);
        }
        // Exactly-once despite the mid-read failure.
        assert_eq!(rows, vec![row![0i64], row![1i64], row![2i64]]);
        assert_eq!(faults.fired(), vec![(0, 2)]);
    }

    #[test]
    fn schema_arity_mismatch_is_detected() {
        let broker = Broker::new(BrokerConfig::default());
        broker.create_topic("t", 1).unwrap();
        publish(&broker, "t", 0, &[row![1i64, 2i64]]); // two columns
        let fmt = MqInputFormat::new(broker, "t", schema()); // expects one
        let splits = fmt.get_splits(0).unwrap();
        let mut r = fmt.create_reader(splits[0].as_ref()).unwrap();
        assert!(r.next_row().is_err());
    }

    #[test]
    fn missing_topic_fails_at_split_time() {
        let broker = Broker::new(BrokerConfig::default());
        let fmt = MqInputFormat::new(broker, "missing", schema());
        assert!(fmt.get_splits(0).is_err());
    }
}
