//! The Kafka-like broker: topics of append-only, offset-addressed
//! partition logs.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlml_common::lockorder::{TrackedCondvar, TrackedMutex};
use sqlml_common::{Result, SqlmlError};

/// Broker configuration.
#[derive(Debug, Clone, Default)]
pub struct BrokerConfig {
    /// Optional broker I/O bandwidth in bytes/second (produce and
    /// consume both pay it), modeling a real broker's disk/network.
    pub bytes_per_sec: Option<u64>,
}

/// One partition's log.
#[derive(Debug, Default)]
struct PartitionLog {
    records: Vec<Arc<Vec<u8>>>,
    /// Producer finished: consumers reaching the end see EOF instead of
    /// blocking.
    sealed: bool,
}

#[derive(Debug, Default)]
struct Topic {
    partitions: Vec<PartitionLog>,
}

/// Per-topic counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopicStats {
    pub partitions: usize,
    pub records: usize,
    pub bytes: u64,
    pub sealed_partitions: usize,
}

struct Inner {
    topics: TrackedMutex<HashMap<String, Topic>>,
    appended: TrackedCondvar,
    throttle: Option<sqlml_dfs::Throttle>,
}

/// A shared handle to an in-process broker. Clones address the same
/// topics.
///
/// ```
/// use sqlml_mq::{Broker, broker::BrokerConfig};
/// use std::time::Duration;
///
/// let broker = Broker::new(BrokerConfig::default());
/// broker.create_topic("events", 2).unwrap();
/// broker.append("events", 0, b"hello".to_vec()).unwrap();
/// broker.seal("events", 0).unwrap();
/// let rec = broker
///     .read("events", 0, 0, Duration::from_millis(50))
///     .unwrap()
///     .unwrap();
/// assert_eq!(&*rec, b"hello");
/// // Replay is always possible: the log is durable.
/// assert!(broker.read("events", 0, 0, Duration::from_millis(50)).unwrap().is_some());
/// ```
#[derive(Clone)]
pub struct Broker {
    inner: Arc<Inner>,
}

impl Broker {
    pub fn new(config: BrokerConfig) -> Broker {
        Broker {
            inner: Arc::new(Inner {
                topics: TrackedMutex::new("mq.broker.topics", HashMap::new()),
                appended: TrackedCondvar::new("mq.broker.appended"),
                throttle: config.bytes_per_sec.map(sqlml_dfs::Throttle::new),
            }),
        }
    }

    /// Create (or recreate, truncating) a topic with `partitions` logs.
    pub fn create_topic(&self, name: &str, partitions: usize) -> Result<()> {
        if partitions == 0 {
            return Err(SqlmlError::Transfer(
                "a topic needs at least one partition".into(),
            ));
        }
        let mut topics = self.inner.topics.lock();
        topics.insert(
            name.to_string(),
            Topic {
                partitions: (0..partitions).map(|_| PartitionLog::default()).collect(),
            },
        );
        Ok(())
    }

    pub fn has_topic(&self, name: &str) -> bool {
        self.inner.topics.lock().contains_key(name)
    }

    pub fn num_partitions(&self, topic: &str) -> Result<usize> {
        let topics = self.inner.topics.lock();
        Ok(self.topic(&topics, topic)?.partitions.len())
    }

    fn topic<'a>(&self, topics: &'a HashMap<String, Topic>, name: &str) -> Result<&'a Topic> {
        topics
            .get(name)
            .ok_or_else(|| SqlmlError::Transfer(format!("unknown topic {name:?}")))
    }

    /// Append one record; returns its offset.
    pub fn append(&self, topic: &str, partition: usize, record: Vec<u8>) -> Result<u64> {
        if let Some(t) = &self.inner.throttle {
            t.consume(record.len());
        }
        let mut topics = self.inner.topics.lock();
        let t = topics
            .get_mut(topic)
            .ok_or_else(|| SqlmlError::Transfer(format!("unknown topic {topic:?}")))?;
        let log = t.partitions.get_mut(partition).ok_or_else(|| {
            SqlmlError::Transfer(format!("topic {topic:?} has no partition {partition}"))
        })?;
        if log.sealed {
            return Err(SqlmlError::Transfer(format!(
                "append to sealed partition {topic:?}/{partition}"
            )));
        }
        log.records.push(Arc::new(record));
        let offset = log.records.len() as u64 - 1;
        drop(topics);
        self.inner.appended.notify_all();
        Ok(offset)
    }

    /// Mark a partition complete: consumers at the end see EOF.
    pub fn seal(&self, topic: &str, partition: usize) -> Result<()> {
        let mut topics = self.inner.topics.lock();
        let t = topics
            .get_mut(topic)
            .ok_or_else(|| SqlmlError::Transfer(format!("unknown topic {topic:?}")))?;
        let log = t.partitions.get_mut(partition).ok_or_else(|| {
            SqlmlError::Transfer(format!("topic {topic:?} has no partition {partition}"))
        })?;
        log.sealed = true;
        drop(topics);
        self.inner.appended.notify_all();
        Ok(())
    }

    /// Read the record at `offset`, blocking until it exists or the
    /// partition is sealed (then `Ok(None)` = clean EOF). Errors on
    /// timeout — a stuck producer must not hang consumers forever.
    pub fn read(
        &self,
        topic: &str,
        partition: usize,
        offset: u64,
        timeout: Duration,
    ) -> Result<Option<Arc<Vec<u8>>>> {
        let deadline = Instant::now() + timeout;
        let mut topics = self.inner.topics.lock();
        loop {
            let t = self.topic(&topics, topic)?;
            let log = t.partitions.get(partition).ok_or_else(|| {
                SqlmlError::Transfer(format!("topic {topic:?} has no partition {partition}"))
            })?;
            if let Some(rec) = log.records.get(offset as usize) {
                let rec = Arc::clone(rec);
                drop(topics);
                if let Some(th) = &self.inner.throttle {
                    th.consume(rec.len());
                }
                return Ok(Some(rec));
            }
            if log.sealed {
                return Ok(None);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SqlmlError::Transfer(format!(
                    "timed out waiting for {topic:?}/{partition}@{offset}"
                )));
            }
            self.inner.appended.wait_for(&mut topics, deadline - now);
        }
    }

    /// Current record count of a partition.
    pub fn partition_len(&self, topic: &str, partition: usize) -> Result<u64> {
        let topics = self.inner.topics.lock();
        let t = self.topic(&topics, topic)?;
        t.partitions
            .get(partition)
            .map(|l| l.records.len() as u64)
            .ok_or_else(|| {
                SqlmlError::Transfer(format!("topic {topic:?} has no partition {partition}"))
            })
    }

    pub fn stats(&self, topic: &str) -> Result<TopicStats> {
        let topics = self.inner.topics.lock();
        let t = self.topic(&topics, topic)?;
        Ok(TopicStats {
            partitions: t.partitions.len(),
            records: t.partitions.iter().map(|p| p.records.len()).sum(),
            bytes: t
                .partitions
                .iter()
                .flat_map(|p| p.records.iter())
                .map(|r| r.len() as u64)
                .sum(),
            sealed_partitions: t.partitions.iter().filter(|p| p.sealed).count(),
        })
    }

    /// Drop a topic and its data.
    pub fn delete_topic(&self, name: &str) -> Result<()> {
        self.inner
            .topics
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| SqlmlError::Transfer(format!("unknown topic {name:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker() -> Broker {
        Broker::new(BrokerConfig::default())
    }

    #[test]
    fn append_read_round_trip_with_offsets() {
        let b = broker();
        b.create_topic("t", 2).unwrap();
        assert_eq!(b.append("t", 0, vec![1]).unwrap(), 0);
        assert_eq!(b.append("t", 0, vec![2]).unwrap(), 1);
        assert_eq!(b.append("t", 1, vec![3]).unwrap(), 0);
        let timeout = Duration::from_millis(100);
        assert_eq!(*b.read("t", 0, 0, timeout).unwrap().unwrap(), vec![1]);
        assert_eq!(*b.read("t", 0, 1, timeout).unwrap().unwrap(), vec![2]);
        assert_eq!(*b.read("t", 1, 0, timeout).unwrap().unwrap(), vec![3]);
    }

    #[test]
    fn read_blocks_until_append_or_seal() {
        let b = broker();
        b.create_topic("t", 1).unwrap();
        let b2 = b.clone();
        let reader =
            std::thread::spawn(move || b2.read("t", 0, 0, Duration::from_secs(2)).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        b.append("t", 0, vec![9]).unwrap();
        assert_eq!(*reader.join().unwrap().unwrap(), vec![9]);

        // EOF after seal.
        let b3 = b.clone();
        let reader =
            std::thread::spawn(move || b3.read("t", 0, 1, Duration::from_secs(2)).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        b.seal("t", 0).unwrap();
        assert!(reader.join().unwrap().is_none());
    }

    #[test]
    fn read_times_out_on_a_stuck_producer() {
        let b = broker();
        b.create_topic("t", 1).unwrap();
        let err = b.read("t", 0, 0, Duration::from_millis(80)).unwrap_err();
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn sealed_partitions_reject_appends_but_replay_fine() {
        let b = broker();
        b.create_topic("t", 1).unwrap();
        b.append("t", 0, vec![1]).unwrap();
        b.seal("t", 0).unwrap();
        assert!(b.append("t", 0, vec![2]).is_err());
        // Replay from offset 0 still works — the at-least-once property.
        let timeout = Duration::from_millis(50);
        assert_eq!(*b.read("t", 0, 0, timeout).unwrap().unwrap(), vec![1]);
        assert_eq!(*b.read("t", 0, 0, timeout).unwrap().unwrap(), vec![1]);
        assert!(b.read("t", 0, 1, timeout).unwrap().is_none());
    }

    #[test]
    fn stats_and_lifecycle() {
        let b = broker();
        b.create_topic("t", 3).unwrap();
        b.append("t", 0, vec![0; 10]).unwrap();
        b.append("t", 2, vec![0; 5]).unwrap();
        b.seal("t", 1).unwrap();
        let s = b.stats("t").unwrap();
        assert_eq!(s.partitions, 3);
        assert_eq!(s.records, 2);
        assert_eq!(s.bytes, 15);
        assert_eq!(s.sealed_partitions, 1);
        assert!(b.has_topic("t"));
        b.delete_topic("t").unwrap();
        assert!(!b.has_topic("t"));
        assert!(b.stats("t").is_err());
    }

    #[test]
    fn bad_partition_indices_error() {
        let b = broker();
        b.create_topic("t", 1).unwrap();
        assert!(b.append("t", 5, vec![1]).is_err());
        assert!(b.read("t", 5, 0, Duration::from_millis(10)).is_err());
        assert!(b.create_topic("zero", 0).is_err());
        assert!(b.append("missing", 0, vec![1]).is_err());
    }

    #[test]
    fn recreating_a_topic_truncates_it() {
        let b = broker();
        b.create_topic("t", 1).unwrap();
        b.append("t", 0, vec![1]).unwrap();
        b.create_topic("t", 2).unwrap();
        assert_eq!(b.stats("t").unwrap().records, 0);
        assert_eq!(b.num_partitions("t").unwrap(), 2);
    }
}
