//! The SQL-side publishing table UDF: `TABLE(mq_transfer(t, 'topic'))`.
//!
//! Runs once per partition in parallel (like `stream_transfer`), but
//! instead of holding sockets open to live readers, each SQL worker
//! appends its rows to its own topic partition and seals it. The SQL
//! side is completely decoupled from the ML side — it finishes even if
//! no consumer ever starts, and never restarts on consumer failure.

use sqlml_common::schema::{DataType, Field};
use sqlml_common::{codec, Result, Row, Schema, SqlmlError, Value};
use sqlml_sqlengine::udf::{PartitionCtx, TableUdf};

use crate::broker::Broker;

/// Rows per published record (one record = one encoded row batch).
pub const BATCH_ROWS: usize = 64;

/// Output layout of the UDF: per-worker publish statistics.
pub fn stats_schema() -> Schema {
    Schema::new(vec![
        Field::new("worker", DataType::Int),
        Field::new("rows_published", DataType::Int),
        Field::new("bytes_published", DataType::Int),
        Field::new("records", DataType::Int),
    ])
}

/// The publishing UDF, bound to one broker.
pub struct MqTransferUdf {
    broker: Broker,
}

impl MqTransferUdf {
    pub fn new(broker: Broker) -> Self {
        MqTransferUdf { broker }
    }

    fn parse_args(args: &[Value]) -> Result<String> {
        if args.len() != 1 {
            return Err(SqlmlError::Plan(
                "mq_transfer takes exactly one argument: the topic name".into(),
            ));
        }
        Ok(args[0].as_str()?.to_string())
    }
}

impl TableUdf for MqTransferUdf {
    fn name(&self) -> &str {
        "mq_transfer"
    }

    fn output_schema(&self, _input: &Schema, args: &[Value]) -> Result<Schema> {
        Self::parse_args(args)?;
        Ok(stats_schema())
    }

    fn execute(
        &self,
        rows: &[Row],
        _input_schema: &Schema,
        args: &[Value],
        ctx: &PartitionCtx,
    ) -> Result<Vec<Row>> {
        let topic = Self::parse_args(args)?;
        // Topic partitioning mirrors the table's: partition p of the
        // table goes to partition p of the topic. The first worker to
        // arrive creates the topic (idempotent races are fine: creation
        // under the session helper happens up front; this is the
        // fallback for direct SQL use).
        if !self.broker.has_topic(&topic) {
            // Racy create is acceptable: create_topic truncates, and all
            // workers run before any append when invoked via SQL in one
            // statement... To stay safe, only create when invoked for a
            // topic that genuinely does not exist, and require the
            // session helper for concurrent use.
            self.broker.create_topic(&topic, ctx.num_partitions)?;
        }
        if self.broker.num_partitions(&topic)? != ctx.num_partitions {
            return Err(SqlmlError::Transfer(format!(
                "topic {topic:?} has {} partitions but the table has {}",
                self.broker.num_partitions(&topic)?,
                ctx.num_partitions
            )));
        }

        let mut bytes = 0u64;
        let mut records = 0u64;
        for batch in rows.chunks(BATCH_ROWS) {
            let mut buf = Vec::with_capacity(batch.len() * 32);
            for r in batch {
                codec::encode_binary_row(r, &mut buf)?;
            }
            bytes += buf.len() as u64;
            self.broker.append(&topic, ctx.partition, buf)?;
            records += 1;
        }
        self.broker.seal(&topic, ctx.partition)?;

        Ok(vec![Row::new(vec![
            Value::Int(ctx.partition as i64),
            Value::Int(rows.len() as i64),
            Value::Int(bytes as i64),
            Value::Int(records as i64),
        ])])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use sqlml_common::row;

    fn ctx(partition: usize, total: usize) -> PartitionCtx {
        PartitionCtx {
            partition,
            num_partitions: total,
            worker: partition,
            num_workers: total,
            node: format!("node-{partition}"),
        }
    }

    #[test]
    fn publishes_batches_and_seals() {
        let broker = Broker::new(BrokerConfig::default());
        broker.create_topic("out", 2).unwrap();
        let udf = MqTransferUdf::new(broker.clone());
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64]).collect();
        let args = vec![Value::Str("out".into())];
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);

        let stats = udf.execute(&rows, &schema, &args, &ctx(1, 2)).unwrap();
        assert_eq!(stats[0].get(1), &Value::Int(100));
        assert_eq!(stats[0].get(3), &Value::Int(2)); // 100 rows / 64-per-record

        let topic_stats = broker.stats("out").unwrap();
        assert_eq!(topic_stats.records, 2);
        assert_eq!(topic_stats.sealed_partitions, 1);
        // Partition 0 untouched.
        assert_eq!(broker.partition_len("out", 0).unwrap(), 0);
    }

    #[test]
    fn partition_count_mismatch_is_rejected() {
        let broker = Broker::new(BrokerConfig::default());
        broker.create_topic("out", 5).unwrap();
        let udf = MqTransferUdf::new(broker);
        let args = vec![Value::Str("out".into())];
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        assert!(udf.execute(&[], &schema, &args, &ctx(0, 2)).is_err());
    }

    #[test]
    fn arg_validation() {
        let broker = Broker::new(BrokerConfig::default());
        let udf = MqTransferUdf::new(broker);
        assert!(udf.output_schema(&Schema::empty(), &[]).is_err());
        assert!(udf
            .output_schema(&Schema::empty(), &[Value::Int(3)])
            .is_err());
        assert!(udf
            .output_schema(&Schema::empty(), &[Value::Str("t".into())])
            .is_ok());
    }
}
