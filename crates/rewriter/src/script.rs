//! Rewrite-script construction.
//!
//! A [`RewriteScript`] is an ordered list of SQL statements over the
//! engine's registered UDFs. Most statements are fully static; the one
//! runtime-dependent value — the cardinality `K` of a freshly recoded
//! column, needed by `dummy_code` — is carried as a `$K('col', map_tbl)`
//! placeholder that the executor resolves by counting the just-built
//! recode-map table (mirroring §2.2: the dummy-coding UDF "takes in the
//! number of distinct values … already obtained during the recoding
//! phase").

use std::sync::atomic::{AtomicUsize, Ordering};

use sqlml_common::{Result, Schema, SqlmlError};
use sqlml_transform::{RecodeMap, TransformSpec};

/// Streaming-transfer parameters for the final hand-off statement.
#[derive(Debug, Clone)]
pub struct StreamTarget {
    pub coordinator_addr: String,
    pub transfer_id: u64,
    /// ML command, e.g. `svm label=3 iterations=50`.
    pub command: String,
    pub splits_per_worker: u32,
    pub send_buffer_bytes: usize,
}

/// How the rewriter decided to execute.
#[derive(Debug, Clone)]
pub enum RewritePlan {
    /// No cache reuse: full prepare → transform pipeline.
    Fresh,
    /// §5.2: reuse this recode map; skip the map-building statements.
    CachedMap { map: RecodeMap },
    /// §5.1: the whole transformed result is cached; `sql` answers the
    /// request directly.
    CachedResult { sql: String, map: RecodeMap },
}

/// The rewriter's output.
#[derive(Debug, Clone)]
pub struct RewriteScript {
    /// Statements to execute in order; the last is a SELECT producing
    /// the pipeline output (transformed rows, or transfer statistics
    /// when streaming).
    pub statements: Vec<String>,
    /// Temporary tables the script creates (for cleanup).
    pub temp_tables: Vec<String>,
    pub plan: RewritePlan,
}

static SCRIPT_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Build the statement script for one request.
pub fn build_script(
    user_sql: &str,
    result_schema: &Schema,
    spec: &TransformSpec,
    stream: Option<&StreamTarget>,
    plan: RewritePlan,
) -> Result<RewriteScript> {
    let recode_columns = spec.effective_recode_columns(result_schema);
    for d in &spec.dummy_code_columns {
        if !recode_columns.iter().any(|c| c.eq_ignore_ascii_case(d)) {
            return Err(SqlmlError::Plan(format!(
                "dummy-code column {d:?} is not among the recoded columns"
            )));
        }
    }
    let seq = SCRIPT_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut statements = Vec::new();
    let mut temp_tables = Vec::new();
    let temp = |tag: &str, temp_tables: &mut Vec<String>| -> String {
        let name = format!("__rw_{tag}_{seq}_{}", temp_tables.len());
        temp_tables.push(name.clone());
        name
    };

    // §5.1 short-circuit: the cached materialization answers everything.
    if let RewritePlan::CachedResult { sql, map } = plan {
        if let Some(t) = stream {
            let tbl = temp("cached", &mut temp_tables);
            statements.push(format!("CREATE TABLE {tbl} AS {sql}"));
            statements.push(stream_statement(&tbl, t));
        } else {
            statements.push(sql.clone());
        }
        return Ok(RewriteScript {
            statements,
            temp_tables,
            plan: RewritePlan::CachedResult { sql, map },
        });
    }

    // 1. Materialize the preparation query.
    let prep = temp("prep", &mut temp_tables);
    statements.push(format!("CREATE TABLE {prep} AS {user_sql}"));

    // 2. Recode-map acquisition: build fresh, or inject the cached map.
    let map_table = temp("map", &mut temp_tables);
    let cached_map = match &plan {
        RewritePlan::CachedMap { map } => Some(map.clone()),
        _ => None,
    };
    if recode_columns.is_empty() {
        // Nothing to recode; drop the unused map temp name.
        temp_tables.pop();
    } else if cached_map.is_none() {
        let pairs = temp("pairs", &mut temp_tables);
        let col_args = recode_columns
            .iter()
            .map(|c| format!("'{c}'"))
            .collect::<Vec<_>>()
            .join(", ");
        statements.push(format!(
            "CREATE TABLE {pairs} AS \
             SELECT DISTINCT colname, colval \
             FROM TABLE(distinct_values({prep}, {col_args})) AS d \
             ORDER BY colname, colval"
        ));
        statements.push(format!(
            "CREATE TABLE {map_table} AS \
             SELECT * FROM TABLE(assign_recode_ids({pairs})) AS m"
        ));
    }
    // (For a cached map the executor registers it as `map_table` itself —
    // see `inject_cached_map` — so the join below works unchanged.)

    // 3. The §2.1 recode join.
    let mut current = prep.clone();
    if !recode_columns.is_empty() {
        let recoded = temp("recoded", &mut temp_tables);
        let mut projections = Vec::new();
        let mut froms = vec![format!("{current} T")];
        let mut predicates = Vec::new();
        for field in result_schema.fields() {
            if let Some(pos) = recode_columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(&field.name))
            {
                let alias = format!("M{pos}");
                projections.push(format!("{alias}.recodeval AS {}", field.name));
                froms.push(format!("{map_table} AS {alias}"));
                predicates.push(format!("{alias}.colname = '{}'", field.name));
                predicates.push(format!("T.{} = {alias}.colval", field.name));
            } else {
                projections.push(format!("T.{}", field.name));
            }
        }
        statements.push(format!(
            "CREATE TABLE {recoded} AS SELECT {} FROM {} WHERE {}",
            projections.join(", "),
            froms.join(", "),
            predicates.join(" AND ")
        ));
        current = recoded;
    }

    // 4. Dummy coding. Cardinality comes from the cached map when we
    //    have it, otherwise from the `$K(...)` placeholder the executor
    //    resolves against the freshly built map table.
    for col in &spec.dummy_code_columns {
        let coded = temp("coded", &mut temp_tables);
        let k_arg = match &cached_map {
            Some(m) => {
                let k = m.cardinality(col);
                if k == 0 {
                    return Err(SqlmlError::Cache(format!(
                        "cached recode map lacks column {col:?}"
                    )));
                }
                k.to_string()
            }
            None => format!("$K('{col}', {map_table})"),
        };
        statements.push(format!(
            "CREATE TABLE {coded} AS \
             SELECT * FROM TABLE(dummy_code({current}, '{col}', {k_arg})) AS dc"
        ));
        current = coded;
    }

    // 5. Hand-off: stream, or yield the transformed rows.
    match stream {
        Some(t) => statements.push(stream_statement(&current, t)),
        None => statements.push(format!("SELECT * FROM {current}")),
    }

    Ok(RewriteScript {
        statements,
        temp_tables,
        plan,
    })
}

fn stream_statement(table: &str, t: &StreamTarget) -> String {
    format!(
        "SELECT * FROM TABLE(stream_transfer({table}, '{}', {}, '{}', {}, {})) AS s",
        t.coordinator_addr, t.transfer_id, t.command, t.splits_per_worker, t.send_buffer_bytes
    )
}

impl RewriteScript {
    /// The name of the recode-map temp table the script expects, if any
    /// (used to inject a cached map before execution).
    pub fn map_table_name(&self) -> Option<&str> {
        self.temp_tables
            .iter()
            .find(|t| t.starts_with("__rw_map_"))
            .map(|s| s.as_str())
    }

    /// Whether any statement still carries a `$K` placeholder.
    pub fn has_placeholders(&self) -> bool {
        self.statements.iter().any(|s| s.contains("$K("))
    }
}

/// Resolve a `$K('col', map_tbl)` placeholder in one statement by
/// counting the map table. Exposed for the executor in `lib.rs`.
pub fn resolve_cardinality_placeholder(
    engine: &sqlml_sqlengine::Engine,
    stmt: &str,
) -> Result<String> {
    let Some(start) = stmt.find("$K(") else {
        return Ok(stmt.to_string());
    };
    let rest = &stmt[start + 3..];
    let end = rest
        .find(')')
        .ok_or_else(|| SqlmlError::Plan("malformed $K placeholder".into()))?;
    let inner = &rest[..end];
    let mut parts = inner.splitn(2, ',');
    let col = parts
        .next()
        .unwrap_or_default()
        .trim()
        .trim_matches('\'')
        .to_string();
    let map_table = parts
        .next()
        .ok_or_else(|| SqlmlError::Plan("malformed $K placeholder".into()))?
        .trim();
    let rows = engine
        .query(&format!(
            "SELECT COUNT(*) FROM {map_table} WHERE colname = '{col}'"
        ))?
        .collect_rows();
    let k = rows
        .first()
        .map(|r| r.get(0).as_i64())
        .transpose()?
        .unwrap_or(0);
    if k == 0 {
        return Err(SqlmlError::Execution(format!(
            "recode map has no entries for column {col:?}"
        )));
    }
    let resolved = format!("{}{k}{}", &stmt[..start], &rest[end + 1..]);
    // Recurse in case of multiple placeholders in one statement.
    resolve_cardinality_placeholder(engine, &resolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::new("amount", DataType::Double),
            Field::categorical("abandoned"),
        ])
    }

    #[test]
    fn fresh_script_statement_order() {
        let script = build_script(
            "SELECT 1 FROM t",
            &schema(),
            &TransformSpec::new(&["gender"]),
            None,
            RewritePlan::Fresh,
        )
        .unwrap();
        let kinds: Vec<&str> = script
            .statements
            .iter()
            .map(|s| {
                if s.contains("distinct_values(") {
                    "pairs"
                } else if s.contains("assign_recode_ids(") {
                    "map"
                } else if s.contains("recodeval AS") {
                    "recode"
                } else if s.contains("dummy_code(") {
                    "dummy"
                } else if s.starts_with("CREATE TABLE") {
                    "prep"
                } else {
                    "final"
                }
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["prep", "pairs", "map", "recode", "dummy", "final"]
        );
        assert!(script.has_placeholders());
        assert!(script.map_table_name().is_some());
    }

    #[test]
    fn cached_map_script_inlines_cardinality() {
        let map = RecodeMap::from_pairs(vec![
            ("gender".into(), "F".into()),
            ("gender".into(), "M".into()),
            ("abandoned".into(), "Yes".into()),
            ("abandoned".into(), "No".into()),
        ]);
        let script = build_script(
            "SELECT 1 FROM t",
            &schema(),
            &TransformSpec::new(&["gender"]),
            None,
            RewritePlan::CachedMap { map },
        )
        .unwrap();
        assert!(!script.has_placeholders());
        let all = script.statements.join("\n");
        assert!(all.contains("dummy_code"), "{all}");
        assert!(all.contains("'gender', 2"), "{all}");
        assert!(!all.contains("distinct_values"), "{all}");
    }

    #[test]
    fn no_categoricals_means_minimal_script() {
        let plain = Schema::new(vec![Field::new("x", DataType::Int)]);
        let script = build_script(
            "SELECT x FROM t",
            &plain,
            &TransformSpec::default(),
            None,
            RewritePlan::Fresh,
        )
        .unwrap();
        assert_eq!(script.statements.len(), 2); // prep + final select
    }

    #[test]
    fn cached_result_plus_stream_materializes_then_streams() {
        let target = StreamTarget {
            coordinator_addr: "127.0.0.1:1".into(),
            transfer_id: 1,
            command: "nb label=0".into(),
            splits_per_worker: 1,
            send_buffer_bytes: 64,
        };
        let script = build_script(
            "ignored",
            &schema(),
            &TransformSpec::default(),
            Some(&target),
            RewritePlan::CachedResult {
                sql: "SELECT age FROM __sqlml_cache_0".into(),
                map: RecodeMap::default(),
            },
        )
        .unwrap();
        assert_eq!(script.statements.len(), 2);
        assert!(script.statements[1].contains("stream_transfer("));
    }

    #[test]
    fn missing_cached_cardinality_is_an_error() {
        let map = RecodeMap::from_pairs(vec![("abandoned".into(), "Yes".into())]);
        // gender missing from the map → error at script build.
        assert!(build_script(
            "SELECT 1 FROM t",
            &schema(),
            &TransformSpec::new(&["gender"]),
            None,
            RewritePlan::CachedMap { map },
        )
        .is_err());
    }
}
