//! The query rewriter (§4).
//!
//! "A user provides this query rewriter with her SQL query, the
//! transformations needed on the results of the query, and if parallel
//! data streaming is needed, the necessary information for calling the
//! target ML algorithm. Then, the query rewriter will extend the given
//! query into another query with UDFs, and other operations to perform
//! the required transformations and the data transfer."
//!
//! [`QueryRewriter::rewrite`] produces exactly that: a SQL script (a
//! sequence of statements over the engine's UDFs) implementing the whole
//! pipeline. Per §5's extension, the rewriter first consults the
//! [`CacheManager`]: a §5.1 hit collapses the script to a single query
//! over the materialized result; a §5.2 hit drops the map-building
//! statements and injects the cached recode map.

pub mod script;

pub use script::{RewritePlan, RewriteScript, StreamTarget};

use std::sync::Arc;

use sqlml_cache::{CacheDecision, CacheManager, QueryDescriptor};
use sqlml_common::{Result, Schema, SqlmlError};
use sqlml_sqlengine::parser::parse_select;
use sqlml_sqlengine::Engine;
use sqlml_transform::{register_udfs, RecodeMap, TransformSpec};

/// The §4 rewriter: SQL + transformation spec (+ optional stream target)
/// in, executable statement script out.
pub struct QueryRewriter {
    engine: Engine,
    cache: Option<Arc<CacheManager>>,
}

impl QueryRewriter {
    /// A rewriter without caching.
    pub fn new(engine: Engine) -> Self {
        register_udfs(&engine);
        QueryRewriter {
            engine,
            cache: None,
        }
    }

    /// A rewriter that consults (but does not populate) a cache.
    pub fn with_cache(engine: Engine, cache: Arc<CacheManager>) -> Self {
        register_udfs(&engine);
        QueryRewriter {
            engine,
            cache: Some(cache),
        }
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Normalize a preparation query into a descriptor (when it has the
    /// cacheable shape).
    pub fn describe(&self, sql: &str) -> Result<Option<QueryDescriptor>> {
        let stmt = parse_select(sql)?;
        QueryDescriptor::from_select(&stmt, self.engine.catalog())
    }

    /// Decide how to execute: cached result, cached map, or fresh.
    pub fn plan(&self, sql: &str, spec: &TransformSpec) -> Result<RewritePlan> {
        if let Some(cache) = &self.cache {
            if let Some(descriptor) = self.describe(sql)? {
                match cache.lookup(&descriptor, spec) {
                    CacheDecision::Full(reuse) => {
                        return Ok(RewritePlan::CachedResult {
                            sql: reuse.sql,
                            map: reuse.map,
                        })
                    }
                    CacheDecision::RecodeMap(map) => return Ok(RewritePlan::CachedMap { map }),
                    CacheDecision::Miss => {}
                }
            }
        }
        Ok(RewritePlan::Fresh)
    }

    /// Produce the full rewritten script for a request. The script is
    /// plain SQL over the engine's registered UDFs; running its
    /// statements in order performs preparation, transformation, and
    /// (optionally) the streaming transfer.
    pub fn rewrite(
        &self,
        sql: &str,
        spec: &TransformSpec,
        stream: Option<&StreamTarget>,
    ) -> Result<RewriteScript> {
        // Validate the user's query and get its output schema — needed to
        // know the categorical columns and generate the recode join.
        let schema = self.engine.validate(sql)?;
        let plan = self.plan(sql, spec)?;
        script::build_script(sql, &schema, spec, stream, plan)
    }

    /// Convenience: rewrite, then execute the script's statements in
    /// order, returning the final statement's result table.
    ///
    /// Handles the two runtime details a script alone cannot: a cached
    /// recode map is registered under the script's map-table name before
    /// execution, and `$K('col', map)` cardinality placeholders are
    /// resolved against the (built or injected) map table.
    pub fn rewrite_and_run(
        &self,
        sql: &str,
        spec: &TransformSpec,
        stream: Option<&StreamTarget>,
    ) -> Result<(sqlml_sqlengine::PartitionedTable, RewriteScript)> {
        let rewritten = self.rewrite(sql, spec, stream)?;
        if let RewritePlan::CachedMap { map } = &rewritten.plan {
            if let Some(map_table) = rewritten.map_table_name() {
                self.engine.register_table(
                    map_table,
                    sqlml_sqlengine::PartitionedTable::single(
                        sqlml_transform::recode::recode_map_schema(),
                        map.to_rows(),
                    ),
                );
            }
        }
        let mut last = None;
        for stmt in &rewritten.statements {
            let resolved = script::resolve_cardinality_placeholder(&self.engine, stmt)?;
            last = self.engine.execute(&resolved)?;
        }
        let result = last.ok_or_else(|| {
            SqlmlError::Plan("rewritten script ended with a non-SELECT statement".into())
        })?;
        // Drop the script's temporaries.
        for t in &rewritten.temp_tables {
            let _ = self.engine.catalog().drop_table(t);
        }
        Ok((result, rewritten))
    }

    /// The recode map a cached-map plan carries, if any (test helper).
    pub fn cached_map_of(plan: &RewritePlan) -> Option<&RecodeMap> {
        match plan {
            RewritePlan::CachedMap { map } => Some(map),
            RewritePlan::CachedResult { map, .. } => Some(map),
            RewritePlan::Fresh => None,
        }
    }

    /// Output schema of a statement script's final SELECT, without
    /// executing anything before it (only valid for cached-result
    /// scripts whose single statement is a plain SELECT).
    pub fn validate_final(&self, script: &RewriteScript) -> Result<Schema> {
        let last = script
            .statements
            .last()
            .ok_or_else(|| SqlmlError::Plan("empty script".into()))?;
        self.engine.validate(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};
    use sqlml_sqlengine::EngineConfig;

    fn engine() -> Engine {
        let e = Engine::new(EngineConfig::with_workers(2));
        let carts = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("amount", DataType::Double),
            Field::categorical("abandoned"),
        ]);
        let users = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::categorical("country"),
        ]);
        e.register_rows(
            "carts",
            carts,
            (0..12)
                .map(|i| {
                    row![
                        (i % 4) as i64,
                        i as f64,
                        if i % 2 == 0 { "Yes" } else { "No" }
                    ]
                })
                .collect(),
        );
        e.register_rows(
            "users",
            users,
            (0..4)
                .map(|i| {
                    row![
                        i as i64,
                        20 + i as i64,
                        if i % 2 == 0 { "F" } else { "M" },
                        "USA"
                    ]
                })
                .collect(),
        );
        e
    }

    const PREP: &str = "SELECT U.age, U.gender, C.amount, C.abandoned \
                        FROM carts C, users U \
                        WHERE C.userid = U.userid AND U.country = 'USA'";

    #[test]
    fn fresh_script_contains_all_pipeline_stages() {
        let rw = QueryRewriter::new(engine());
        let script = rw
            .rewrite(PREP, &TransformSpec::new(&["gender"]), None)
            .unwrap();
        let all = script.statements.join(";\n");
        assert!(all.contains("distinct_values("), "{all}");
        assert!(all.contains("assign_recode_ids("), "{all}");
        assert!(all.contains("recodeval AS gender"), "{all}");
        assert!(all.contains("dummy_code("), "{all}");
        assert!(!all.contains("stream_transfer("), "no stream requested");
        assert!(matches!(script.plan, RewritePlan::Fresh));
    }

    #[test]
    fn script_executes_end_to_end_and_cleans_up() {
        let rw = QueryRewriter::new(engine());
        let before = rw.engine().catalog().table_names().len();
        let (result, script) = rw
            .rewrite_and_run(PREP, &TransformSpec::new(&["gender"]), None)
            .unwrap();
        // 12 carts all join USA users.
        assert_eq!(result.num_rows(), 12);
        // gender expanded into two indicator columns (generic names: the
        // static script does not know the value names).
        assert_eq!(
            result.schema().names(),
            vec!["age", "gender_1", "gender_2", "amount", "abandoned"]
        );
        // Every row is fully numeric — ready for the ML side.
        for r in result.collect_rows() {
            assert!(r.to_f64_vec().is_ok());
        }
        assert!(!script.temp_tables.is_empty());
        let after = rw.engine().catalog().table_names().len();
        assert_eq!(before, after, "temporaries must be dropped");
    }

    #[test]
    fn streaming_request_appends_transfer_statement() {
        let rw = QueryRewriter::new(engine());
        let target = StreamTarget {
            coordinator_addr: "127.0.0.1:4545".into(),
            transfer_id: 9,
            command: "svm label=4 iterations=10".into(),
            splits_per_worker: 2,
            send_buffer_bytes: 4096,
        };
        let script = rw
            .rewrite(PREP, &TransformSpec::default(), Some(&target))
            .unwrap();
        let last = script.statements.last().unwrap();
        assert!(last.contains("stream_transfer("), "{last}");
        assert!(last.contains("127.0.0.1:4545"), "{last}");
        assert!(last.contains("svm label=4"), "{last}");
    }

    #[test]
    fn cache_full_hit_collapses_to_single_statement() {
        use sqlml_transform::InSqlTransformer;
        let e = engine();
        let cache = Arc::new(CacheManager::new(e.clone()));
        // Prime: run prep + transform, store.
        e.execute(&format!("CREATE TABLE prep AS {PREP}")).unwrap();
        let tr = InSqlTransformer::new(e.clone());
        let spec = TransformSpec::default();
        let out = tr.transform("prep", &spec).unwrap();
        let stmt = parse_select(PREP).unwrap();
        let d = QueryDescriptor::from_select(&stmt, e.catalog())
            .unwrap()
            .unwrap();
        cache.store_full(d, spec.clone(), out.recode_map, out.table);
        e.execute("DROP TABLE prep").unwrap();

        let rw = QueryRewriter::with_cache(e.clone(), cache);
        let subset = "SELECT U.age, C.amount, C.abandoned FROM carts C, users U \
                      WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'F'";
        let script = rw.rewrite(subset, &spec, None).unwrap();
        assert_eq!(script.statements.len(), 1, "{:?}", script.statements);
        assert!(matches!(script.plan, RewritePlan::CachedResult { .. }));
        let (result, _) = rw.rewrite_and_run(subset, &spec, None).unwrap();
        // gender='F' selects users 0 and 2 => carts with userid 0 or 2: 6 rows.
        assert_eq!(result.num_rows(), 6);
    }

    #[test]
    fn cache_map_hit_removes_map_building_statements() {
        use sqlml_transform::InSqlTransformer;
        let e = engine();
        let cache = Arc::new(CacheManager::new(e.clone()));
        e.execute(&format!("CREATE TABLE prep AS {PREP}")).unwrap();
        let tr = InSqlTransformer::new(e.clone());
        let spec = TransformSpec::default();
        let out = tr.transform("prep", &spec).unwrap();
        let stmt = parse_select(PREP).unwrap();
        let d = QueryDescriptor::from_select(&stmt, e.catalog())
            .unwrap()
            .unwrap();
        cache.store_recode_map(d, out.recode_map);
        e.execute("DROP TABLE prep").unwrap();

        let rw = QueryRewriter::with_cache(e.clone(), cache);
        // §5.2-style query: extra conjunct, different projection.
        let q = "SELECT U.age, U.gender, C.amount, C.abandoned FROM carts C, users U \
                 WHERE C.userid = U.userid AND U.country = 'USA' AND C.amount > 3";
        let script = rw.rewrite(q, &spec, None).unwrap();
        assert!(matches!(script.plan, RewritePlan::CachedMap { .. }));
        let all = script.statements.join(";\n");
        assert!(
            !all.contains("distinct_values("),
            "map build must be skipped: {all}"
        );
        assert!(all.contains("recodeval AS gender"), "{all}");
        let (result, _) = rw.rewrite_and_run(q, &spec, None).unwrap();
        assert_eq!(result.num_rows(), 8); // amount in 4..=11 joined to USA users
        for r in result.collect_rows() {
            assert!(r.to_f64_vec().is_ok());
        }
    }

    #[test]
    fn rejects_invalid_input_queries() {
        let rw = QueryRewriter::new(engine());
        assert!(rw
            .rewrite("SELECT nope FROM users", &TransformSpec::default(), None)
            .is_err());
        assert!(rw
            .rewrite("NOT SQL AT ALL", &TransformSpec::default(), None)
            .is_err());
    }

    #[test]
    fn dummy_spec_on_non_categorical_column_fails() {
        let rw = QueryRewriter::new(engine());
        let spec = TransformSpec {
            recode_columns: vec![],
            dummy_code_columns: vec!["age".into()],
        };
        assert!(rw.rewrite(PREP, &spec, None).is_err());
    }
}
