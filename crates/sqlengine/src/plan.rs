//! Logical/physical query plans.
//!
//! The planner produces a [`Plan`] tree; the optimizer rewrites it; the
//! executor interprets it directly. Each node carries its output schema.

use std::fmt;
use std::sync::Arc;

use sqlml_common::{Schema, Value};

use crate::ast::{AggFunc, JoinKind};
use crate::expr::Expr;
use crate::table::PartitionedTable;
use crate::udf::TableUdf;

/// One aggregate computation within an [`Plan::Aggregate`] node.
#[derive(Clone, Debug)]
pub struct AggExpr {
    pub func: AggFunc,
    /// `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
    pub distinct: bool,
}

/// Which join side the executor builds the hash table from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSide {
    Left,
    Right,
}

/// One stage of a [`Plan::Fused`] chain, in execution order.
#[derive(Clone)]
pub enum FusedStage {
    Filter(Expr),
    Project {
        exprs: Vec<Expr>,
    },
    Udf {
        udf: Arc<dyn TableUdf>,
        args: Vec<Value>,
        /// Schema the UDF sees (its input), captured at fuse time.
        input_schema: Schema,
    },
}

/// The plan tree.
pub enum Plan {
    /// Leaf: a catalog table.
    Scan {
        name: String,
        table: Arc<PartitionedTable>,
    },
    /// Parallel table UDF applied per partition of `input`.
    TableUdfScan {
        udf: Arc<dyn TableUdf>,
        input: Box<Plan>,
        args: Vec<Value>,
        schema: Schema,
    },
    Filter {
        input: Box<Plan>,
        predicate: Expr,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<Expr>,
        schema: Schema,
    },
    /// Hash equi-join. `left_keys[i]` pairs with `right_keys[i]`.
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        kind: JoinKind,
        build: BuildSide,
        schema: Schema,
    },
    /// Duplicate elimination over full rows (two-phase in the executor).
    Distinct {
        input: Box<Plan>,
    },
    /// Hash aggregation. Output layout: group columns then aggregates.
    Aggregate {
        input: Box<Plan>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggExpr>,
        schema: Schema,
    },
    /// Total sort by output column indices (gathers to one partition).
    Sort {
        input: Box<Plan>,
        keys: Vec<(usize, bool)>, // (column index, descending)
    },
    Limit {
        input: Box<Plan>,
        n: usize,
    },
    /// A fused `Filter`/`Project`/`TableUdfScan` chain executed as a
    /// single `map_partitions` pass: consecutive scalar stages run
    /// row-at-a-time with no intermediate partition vectors. Produced by
    /// the optimizer's fusion pass.
    Fused {
        input: Box<Plan>,
        /// Stages in execution order (closest-to-input first).
        stages: Vec<FusedStage>,
        schema: Schema,
    },
}

impl Plan {
    /// Output schema of this node.
    pub fn schema(&self) -> Schema {
        match self {
            Plan::Scan { table, .. } => table.schema().clone(),
            Plan::TableUdfScan { schema, .. } => schema.clone(),
            Plan::Filter { input, .. } => input.schema(),
            Plan::Project { schema, .. } => schema.clone(),
            Plan::HashJoin { schema, .. } => schema.clone(),
            Plan::Distinct { input } => input.schema(),
            Plan::Aggregate { schema, .. } => schema.clone(),
            Plan::Sort { input, .. } => input.schema(),
            Plan::Limit { input, .. } => input.schema(),
            Plan::Fused { schema, .. } => schema.clone(),
        }
    }

    /// Crude cardinality estimate used for broadcast-side selection.
    pub fn estimated_rows(&self) -> usize {
        match self {
            Plan::Scan { table, .. } => table.num_rows(),
            Plan::TableUdfScan { input, .. } => input.estimated_rows(),
            // Uniform selectivity guess; enough to order join sides.
            Plan::Filter { input, .. } => (input.estimated_rows() / 4).max(1),
            Plan::Project { input, .. } => input.estimated_rows(),
            Plan::HashJoin { left, right, .. } => left.estimated_rows().max(right.estimated_rows()),
            Plan::Distinct { input } => (input.estimated_rows() / 2).max(1),
            Plan::Aggregate { input, .. } => (input.estimated_rows() / 10).max(1),
            Plan::Sort { input, .. } => input.estimated_rows(),
            Plan::Limit { input, n } => input.estimated_rows().min(*n),
            Plan::Fused { input, stages, .. } => {
                stages
                    .iter()
                    .fold(input.estimated_rows(), |est, s| match s {
                        FusedStage::Filter(_) => (est / 4).max(1),
                        _ => est,
                    })
            }
        }
    }

    /// Indented EXPLAIN-style rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.fmt_tree(0, &mut out);
        out
    }

    fn fmt_tree(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { name, table } => {
                out.push_str(&format!(
                    "{pad}Scan {name} rows={} partitions={}\n",
                    table.num_rows(),
                    table.num_partitions()
                ));
            }
            Plan::TableUdfScan {
                udf, input, args, ..
            } => {
                out.push_str(&format!("{pad}TableUdf {}({args:?})\n", udf.name()));
                input.fmt_tree(depth + 1, out);
            }
            Plan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate:?}\n"));
                input.fmt_tree(depth + 1, out);
            }
            Plan::Project {
                input,
                exprs,
                schema,
            } => {
                out.push_str(&format!(
                    "{pad}Project {exprs:?} -> {}\n",
                    schema.names().join(", ")
                ));
                input.fmt_tree(depth + 1, out);
            }
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                build,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}HashJoin {kind:?} build={build:?} on {left_keys:?} = {right_keys:?}\n"
                ));
                left.fmt_tree(depth + 1, out);
                right.fmt_tree(depth + 1, out);
            }
            Plan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.fmt_tree(depth + 1, out);
            }
            Plan::Aggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Aggregate groups={group_exprs:?} aggs={aggs:?}\n"
                ));
                input.fmt_tree(depth + 1, out);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort {keys:?}\n"));
                input.fmt_tree(depth + 1, out);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.fmt_tree(depth + 1, out);
            }
            Plan::Fused { input, stages, .. } => {
                let labels: Vec<String> = stages
                    .iter()
                    .map(|s| match s {
                        FusedStage::Filter(p) => format!("Filter {p:?}"),
                        FusedStage::Project { exprs } => format!("Project {exprs:?}"),
                        FusedStage::Udf { udf, args, .. } => {
                            format!("TableUdf {}({args:?})", udf.name())
                        }
                    })
                    .collect();
                out.push_str(&format!("{pad}Fused [{}]\n", labels.join(" -> ")));
                input.fmt_tree(depth + 1, out);
            }
        }
    }
}

impl fmt::Debug for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};

    fn scan(rows: usize) -> Plan {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let data: Vec<_> = (0..rows).map(|i| row![i as i64]).collect();
        Plan::Scan {
            name: "t".into(),
            table: Arc::new(PartitionedTable::partition_rows(schema, data, 2, &[])),
        }
    }

    #[test]
    fn schema_propagates_through_filter_and_limit() {
        let p = Plan::Limit {
            input: Box::new(Plan::Filter {
                input: Box::new(scan(10)),
                predicate: Expr::Lit(Value::Bool(true)),
            }),
            n: 3,
        };
        assert_eq!(p.schema().names(), vec!["x"]);
    }

    #[test]
    fn estimates_shrink_through_filters() {
        let base = scan(100);
        let filtered = Plan::Filter {
            input: Box::new(scan(100)),
            predicate: Expr::Lit(Value::Bool(true)),
        };
        assert!(filtered.estimated_rows() < base.estimated_rows());
    }

    #[test]
    fn explain_renders_tree() {
        let p = Plan::Distinct {
            input: Box::new(scan(5)),
        };
        let text = p.explain();
        assert!(text.contains("Distinct"));
        assert!(text.contains("Scan t rows=5"));
        // Child is indented under parent.
        assert!(text.lines().nth(1).unwrap().starts_with("  "));
    }
}
