//! Compiled (physical) expressions.
//!
//! The planner resolves syntactic [`crate::ast::AstExpr`]s against a scope
//! into these index-based expressions, which evaluate directly over rows
//! with SQL three-valued logic.

use std::fmt;
use std::sync::Arc;

use sqlml_common::{Result, Row, SqlmlError, Value};

use crate::ast::{ArithOp, CmpOp};
use crate::udf::ScalarUdf;

/// A resolved expression over a fixed input row layout.
#[derive(Clone)]
pub enum Expr {
    /// Input column by position.
    Col(usize),
    Lit(Value),
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Cast {
        expr: Box<Expr>,
        to: sqlml_common::schema::DataType,
    },
    Scalar {
        udf: Arc<dyn ScalarUdf>,
        args: Vec<Expr>,
    },
    Neg(Box<Expr>),
}

impl Expr {
    /// Evaluate against one row. NULL handling follows SQL: comparisons
    /// and arithmetic propagate NULL; AND/OR use Kleene logic.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Col(i) => Ok(row.get(*i).clone()),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(compare(*op, &l, &r)))
            }
            Expr::Arith { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                arith(*op, &l, &r)
            }
            Expr::And(l, r) => {
                // Kleene: false dominates, then null.
                match (truth(l.eval(row)?)?, truth(r.eval(row)?)?) {
                    (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(false)),
                    (Some(true), Some(true)) => Ok(Value::Bool(true)),
                    _ => Ok(Value::Null),
                }
            }
            Expr::Or(l, r) => match (truth(l.eval(row)?)?, truth(r.eval(row)?)?) {
                (Some(true), _) | (_, Some(true)) => Ok(Value::Bool(true)),
                (Some(false), Some(false)) => Ok(Value::Bool(false)),
                _ => Ok(Value::Null),
            },
            Expr::Not(e) => match truth(e.eval(row)?)? {
                Some(b) => Ok(Value::Bool(!b)),
                None => Ok(Value::Null),
            },
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if iv == v {
                        return Ok(Value::Bool(!*negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Between { expr, lo, hi } => {
                let v = expr.eval(row)?;
                let l = lo.eval(row)?;
                let h = hi.eval(row)?;
                if v.is_null() || l.is_null() || h.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(
                    compare(CmpOp::GtEq, &v, &l) && compare(CmpOp::LtEq, &v, &h),
                ))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let matched = like_match(v.as_str()?, p.as_str()?);
                Ok(Value::Bool(matched != *negated))
            }
            Expr::Cast { expr, to } => cast_value(expr.eval(row)?, *to),
            Expr::Scalar { udf, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row)?);
                }
                udf.eval(&vals)
            }
            Expr::Neg(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Double(d) => Ok(Value::Double(-d)),
                other => Err(SqlmlError::Type(format!("cannot negate {other}"))),
            },
        }
    }

    /// Evaluate as a filter predicate: NULL and false both reject.
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        Ok(matches!(self.eval(row)?, Value::Bool(true)))
    }
}

/// Map a value to Kleene truth (None = NULL/unknown).
fn truth(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(b)),
        other => Err(SqlmlError::Type(format!(
            "expected a boolean condition, got {other}"
        ))),
    }
}

/// Non-null comparison. Cross-type Int/Double comparisons are numeric;
/// otherwise [`Value`]'s total order applies.
fn compare(op: CmpOp, l: &Value, r: &Value) -> bool {
    match op {
        CmpOp::Eq => l == r,
        CmpOp::NotEq => l != r,
        CmpOp::Lt => l < r,
        CmpOp::LtEq => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::GtEq => l >= r,
    }
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            // Division always yields DOUBLE: the ML-bound pipelines this
            // engine serves must not silently truncate features.
            ArithOp::Div => {
                if *b == 0 {
                    return Err(SqlmlError::Execution("division by zero".into()));
                }
                Value::Double(*a as f64 / *b as f64)
            }
        }),
        _ => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            Ok(match op {
                ArithOp::Add => Value::Double(a + b),
                ArithOp::Sub => Value::Double(a - b),
                ArithOp::Mul => Value::Double(a * b),
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(SqlmlError::Execution("division by zero".into()));
                    }
                    Value::Double(a / b)
                }
            })
        }
    }
}

/// SQL LIKE matching: `%` = any sequence, `_` = exactly one character.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                // Greedy-free: try every split point.
                (0..=t.len()).any(|i| rec(&t[i..], rest))
            }
            Some(('_', rest)) => !t.is_empty() && rec(&t[1..], rest),
            Some((c, rest)) => t.first() == Some(c) && rec(&t[1..], rest),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

/// SQL CAST semantics. NULL casts to NULL; numeric↔numeric truncates
/// toward zero (Int) or widens (Double); anything casts to VARCHAR via
/// the text rendering; strings parse into the target type.
pub fn cast_value(v: Value, to: sqlml_common::schema::DataType) -> Result<Value> {
    use sqlml_common::schema::DataType;
    if v.is_null() {
        return Ok(Value::Null);
    }
    Ok(match (v, to) {
        (v @ Value::Bool(_), DataType::Bool) => v,
        (v @ Value::Int(_), DataType::Int) => v,
        (v @ Value::Double(_), DataType::Double) => v,
        (v @ Value::Str(_), DataType::Str) => v,
        (Value::Bool(b), DataType::Int) => Value::Int(b as i64),
        (Value::Bool(b), DataType::Double) => Value::Double(b as i64 as f64),
        (Value::Int(i), DataType::Double) => Value::Double(i as f64),
        (Value::Int(i), DataType::Bool) => Value::Bool(i != 0),
        (Value::Double(d), DataType::Int) => {
            if !d.is_finite() || d < i64::MIN as f64 || d > i64::MAX as f64 {
                return Err(SqlmlError::Execution(format!("cannot cast {d} to BIGINT")));
            }
            // Range-checked just above; truncation toward zero is the
            // SQL CAST(double AS BIGINT) semantics.
            #[allow(clippy::cast_possible_truncation)]
            let i = d.trunc() as i64;
            Value::Int(i)
        }
        (Value::Double(d), DataType::Bool) => Value::Bool(d != 0.0),
        (v, DataType::Str) => Value::Str(v.render().into()),
        (Value::Str(s), ty) => Value::parse_typed(s.trim(), ty)
            .map_err(|e| SqlmlError::Execution(format!("CAST failed: {e}")))?,
        (Value::Null, _) => Value::Null, // unreachable: handled above
    })
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp { op, left, right } => {
                write!(f, "({left:?} {} {right:?})", op.symbol())
            }
            Expr::Arith { op, left, right } => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({left:?} {sym} {right:?})")
            }
            Expr::And(l, r) => write!(f, "({l:?} AND {r:?})"),
            Expr::Or(l, r) => write!(f, "({l:?} OR {r:?})"),
            Expr::Not(e) => write!(f, "(NOT {e:?})"),
            Expr::IsNull { expr, negated } => {
                write!(
                    f,
                    "({expr:?} IS {}NULL)",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => write!(
                f,
                "({expr:?} {}IN {list:?})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Between { expr, lo, hi } => {
                write!(f, "({expr:?} BETWEEN {lo:?} AND {hi:?})")
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr:?} {}LIKE {pattern:?})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Cast { expr, to } => write!(f, "CAST({expr:?} AS {to})"),
            Expr::Scalar { udf, args } => write!(f, "{}({args:?})", udf.name()),
            Expr::Neg(e) => write!(f, "(-{e:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;

    fn col(i: usize) -> Box<Expr> {
        Box::new(Expr::Col(i))
    }

    fn lit(v: impl Into<Value>) -> Box<Expr> {
        Box::new(Expr::Lit(v.into()))
    }

    #[test]
    fn comparisons_over_row_values() {
        let r = row![5i64, "USA", 2.5];
        let e = Expr::Cmp {
            op: CmpOp::Eq,
            left: col(1),
            right: lit("USA"),
        };
        assert!(e.eval_predicate(&r).unwrap());
        let e = Expr::Cmp {
            op: CmpOp::Gt,
            left: col(0),
            right: lit(2.5),
        };
        assert!(e.eval_predicate(&r).unwrap());
    }

    #[test]
    fn null_comparison_yields_null_and_filters_out() {
        let r = Row::new(vec![Value::Null]);
        let e = Expr::Cmp {
            op: CmpOp::Eq,
            left: col(0),
            right: lit(1i64),
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&r).unwrap());
    }
    use sqlml_common::Row;

    #[test]
    fn kleene_and_or() {
        let r = Row::new(vec![Value::Null]);
        let null_cond = || {
            Box::new(Expr::Cmp {
                op: CmpOp::Eq,
                left: col(0),
                right: lit(1i64),
            })
        };
        // false AND NULL = false
        let e = Expr::And(lit(false), null_cond());
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
        // true AND NULL = NULL
        let e = Expr::And(lit(true), null_cond());
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        // true OR NULL = true
        let e = Expr::Or(null_cond(), lit(true));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        // false OR NULL = NULL
        let e = Expr::Or(lit(false), null_cond());
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        // NOT NULL = NULL
        let e = Expr::Not(null_cond());
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_types() {
        let r = row![7i64, 2i64, 1.5];
        let add = Expr::Arith {
            op: ArithOp::Add,
            left: col(0),
            right: col(1),
        };
        assert_eq!(add.eval(&r).unwrap(), Value::Int(9));
        let div = Expr::Arith {
            op: ArithOp::Div,
            left: col(0),
            right: col(1),
        };
        assert_eq!(div.eval(&r).unwrap(), Value::Double(3.5));
        let mixed = Expr::Arith {
            op: ArithOp::Mul,
            left: col(0),
            right: col(2),
        };
        assert_eq!(mixed.eval(&r).unwrap(), Value::Double(10.5));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let r = row![1i64, 0i64];
        let div = Expr::Arith {
            op: ArithOp::Div,
            left: col(0),
            right: col(1),
        };
        assert!(div.eval(&r).is_err());
    }

    #[test]
    fn in_list_with_null_semantics() {
        let r = row![2i64];
        let e = Expr::InList {
            expr: col(0),
            list: vec![Expr::Lit(Value::Int(1)), Expr::Lit(Value::Int(2))],
            negated: false,
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        // 3 NOT IN (1, NULL) is NULL (unknown).
        let r = row![3i64];
        let e = Expr::InList {
            expr: col(0),
            list: vec![Expr::Lit(Value::Int(1)), Expr::Lit(Value::Null)],
            negated: true,
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn between_inclusive() {
        let e = Expr::Between {
            expr: col(0),
            lo: lit(1i64),
            hi: lit(3i64),
        };
        assert!(e.eval_predicate(&row![1i64]).unwrap());
        assert!(e.eval_predicate(&row![3i64]).unwrap());
        assert!(!e.eval_predicate(&row![4i64]).unwrap());
    }

    #[test]
    fn is_null_variants() {
        let null_row = Row::new(vec![Value::Null]);
        let e = Expr::IsNull {
            expr: col(0),
            negated: false,
        };
        assert!(e.eval_predicate(&null_row).unwrap());
        let e = Expr::IsNull {
            expr: col(0),
            negated: true,
        };
        assert!(!e.eval_predicate(&null_row).unwrap());
        assert!(e.eval_predicate(&row![1i64]).unwrap());
    }

    #[test]
    fn like_matching_semantics() {
        for (text, pattern, expect) in [
            ("hello", "hello", true),
            ("hello", "h%", true),
            ("hello", "%o", true),
            ("hello", "%ell%", true),
            ("hello", "h_llo", true),
            ("hello", "h_l_o", true),
            ("hello", "h_l_x", false),
            ("hello", "h_llo_", false),
            ("hello", "", false),
            ("", "%", true),
            ("", "", true),
            ("abc", "a%b%c", true),
            ("mississippi", "%ss%ss%", true),
            ("über", "ü%", true),
        ] {
            assert_eq!(
                like_match(text, pattern),
                expect,
                "{text:?} LIKE {pattern:?}"
            );
        }
    }

    #[test]
    fn like_null_propagates() {
        let e = Expr::Like {
            expr: col(0),
            pattern: lit("x%"),
            negated: false,
        };
        assert_eq!(e.eval(&Row::new(vec![Value::Null])).unwrap(), Value::Null);
    }

    #[test]
    fn cast_semantics() {
        use sqlml_common::schema::DataType;
        assert_eq!(
            cast_value(Value::Double(3.9), DataType::Int).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            cast_value(Value::Double(-3.9), DataType::Int).unwrap(),
            Value::Int(-3)
        );
        assert_eq!(
            cast_value(Value::Int(5), DataType::Str).unwrap(),
            Value::Str("5".into())
        );
        assert_eq!(
            cast_value(Value::Str(" 7 ".into()), DataType::Int).unwrap(),
            Value::Int(7)
        );
        assert_eq!(cast_value(Value::Null, DataType::Int).unwrap(), Value::Null);
        assert!(cast_value(Value::Double(f64::NAN), DataType::Int).is_err());
        assert!(cast_value(Value::Str("abc".into()), DataType::Int).is_err());
    }

    #[test]
    fn neg_and_debug_format() {
        let e = Expr::Neg(col(0));
        assert_eq!(e.eval(&row![5i64]).unwrap(), Value::Int(-5));
        assert_eq!(e.eval(&row![2.5]).unwrap(), Value::Double(-2.5));
        let formatted = format!("{e:?}");
        assert!(formatted.contains("#0"), "{formatted}");
    }
}
