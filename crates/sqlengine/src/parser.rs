//! Recursive-descent parser for the supported SQL subset.

use sqlml_common::schema::DataType;
use sqlml_common::{Result, SqlmlError, Value};

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};

/// Parse one statement (a trailing `;` is permitted).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.accept(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a bare SELECT query.
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(SqlmlError::Parse(format!(
            "expected a SELECT statement, found {other:?}"
        ))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: lex(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn accept(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, kind: &TokenKind) -> Result<()> {
        if self.accept(kind) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {kind:?}")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.accept_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword {kw}")))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error("expected end of statement"))
        }
    }

    fn error(&self, msg: &str) -> SqlmlError {
        SqlmlError::Parse(format!(
            "{msg}, found {:?} at byte {}",
            self.tokens[self.pos].kind, self.tokens[self.pos].pos
        ))
    }

    /// Any identifier; keywords are rejected so errors stay clear.
    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(SqlmlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.accept_keyword("CREATE") {
            self.expect_keyword("TABLE")?;
            let name = self.ident()?;
            if self.accept_keyword("AS") {
                let query = self.select()?;
                return Ok(Statement::CreateTableAs { name, query });
            }
            self.expect_token(&TokenKind::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col_name = self.ident()?;
                let type_name = match self.advance() {
                    TokenKind::Ident(s) => s,
                    TokenKind::Keyword(s) => s,
                    other => {
                        return Err(SqlmlError::Parse(format!(
                            "expected a type name, found {other:?}"
                        )))
                    }
                };
                let data_type = DataType::parse_sql_name(&type_name)?;
                let categorical = self.accept_keyword("CATEGORICAL");
                columns.push(ColumnDef {
                    name: col_name,
                    data_type,
                    categorical,
                });
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_token(&TokenKind::RParen)?;
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.accept_keyword("DROP") {
            self.expect_keyword("TABLE")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.accept_keyword("EXPLAIN") {
            return Ok(Statement::Explain(self.select()?));
        }
        Ok(Statement::Select(self.select()?))
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = self.accept_keyword("DISTINCT");
        let projection = self.select_list()?;

        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        let mut joins = Vec::new();
        loop {
            if self.accept(&TokenKind::Comma) {
                from.push(self.table_ref()?);
                continue;
            }
            let kind = if self.accept_keyword("JOIN") {
                Some(JoinKind::Inner)
            } else if self.accept_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                Some(JoinKind::Inner)
            } else if self.accept_keyword("LEFT") {
                self.accept_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                Some(JoinKind::LeftOuter)
            } else {
                None
            };
            match kind {
                Some(kind) => {
                    let table = self.table_ref()?;
                    self.expect_keyword("ON")?;
                    let on = self.expr()?;
                    joins.push(JoinClause { kind, table, on });
                }
                None => break,
            }
        }

        let selection = if self.accept_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.accept_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let having = if self.accept_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.accept_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.accept_keyword("DESC") {
                    true
                } else {
                    self.accept_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.accept_keyword("LIMIT") {
            match self.advance() {
                // Guarded non-negative; a LIMIT larger than usize::MAX
                // is indistinguishable from no limit anyway.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                TokenKind::IntLit(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlmlError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            projection,
            from,
            joins,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.accept(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else if let TokenKind::Ident(name) = self.peek().clone() {
                // Lookahead for `alias.*`.
                if self.tokens[self.pos + 1].kind == TokenKind::Dot
                    && self.tokens[self.pos + 2].kind == TokenKind::Star
                {
                    self.advance();
                    self.advance();
                    self.advance();
                    items.push(SelectItem::QualifiedWildcard(name));
                } else {
                    items.push(self.select_expr_item()?);
                }
            } else {
                items.push(self.select_expr_item()?);
            }
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn select_expr_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.accept_keyword("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            // Bare alias (`SELECT a b`): allowed, SQL style.
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.accept_keyword("TABLE") {
            // `TABLE(udf(arg, ...))` — parallel table UDF invocation.
            self.expect_token(&TokenKind::LParen)?;
            let udf = self.ident()?;
            self.expect_token(&TokenKind::LParen)?;
            let mut args = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    let arg = match self.advance() {
                        TokenKind::Ident(t) => TableFuncArg::Table(t),
                        TokenKind::IntLit(v) => TableFuncArg::Literal(Value::Int(v)),
                        TokenKind::DoubleLit(v) => TableFuncArg::Literal(Value::Double(v)),
                        TokenKind::StrLit(v) => TableFuncArg::Literal(Value::Str(v.into())),
                        TokenKind::Keyword(k) if k == "TRUE" => {
                            TableFuncArg::Literal(Value::Bool(true))
                        }
                        TokenKind::Keyword(k) if k == "FALSE" => {
                            TableFuncArg::Literal(Value::Bool(false))
                        }
                        TokenKind::Keyword(k) if k == "NULL" => TableFuncArg::Literal(Value::Null),
                        other => {
                            return Err(SqlmlError::Parse(format!(
                                "bad table-UDF argument {other:?}"
                            )))
                        }
                    };
                    args.push(arg);
                    if !self.accept(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect_token(&TokenKind::RParen)?;
            self.expect_token(&TokenKind::RParen)?;
            let alias = self.optional_alias()?;
            return Ok(TableRef::TableFunction { udf, args, alias });
        }
        let name = self.ident()?;
        let alias = self.optional_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.accept_keyword("AS") {
            return Ok(Some(self.ident()?));
        }
        if let TokenKind::Ident(_) = self.peek() {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    // Expression grammar, loosest to tightest: OR, AND, NOT, comparison /
    // IS NULL / IN / BETWEEN, additive, multiplicative, unary, primary.
    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.accept_keyword("OR") {
            let right = self.and_expr()?;
            left = AstExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.accept_keyword("AND") {
            let right = self.not_expr()?;
            left = AstExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.accept_keyword("NOT") {
            return Ok(AstExpr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.accept_keyword("IS") {
            let negated = self.accept_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN (...) / BETWEEN
        let negated_prefix = self.accept_keyword("NOT");
        if self.accept_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(AstExpr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated: negated_prefix,
            });
        }
        if self.accept_keyword("IN") {
            self.expect_token(&TokenKind::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.additive()?);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_token(&TokenKind::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated: negated_prefix,
            });
        }
        if self.accept_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.expect_keyword("AND")?;
            let hi = self.additive()?;
            let between = AstExpr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
            };
            return Ok(if negated_prefix {
                AstExpr::Not(Box::new(between))
            } else {
                between
            });
        }
        if negated_prefix {
            return Err(self.error("expected IN, LIKE or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::NotEq => CmpOp::NotEq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::LtEq => CmpOp::LtEq,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::GtEq => CmpOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(AstExpr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = AstExpr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = AstExpr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.accept(&TokenKind::Minus) {
            return Ok(AstExpr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.advance() {
            TokenKind::IntLit(v) => Ok(AstExpr::Literal(Value::Int(v))),
            TokenKind::DoubleLit(v) => Ok(AstExpr::Literal(Value::Double(v))),
            TokenKind::StrLit(v) => Ok(AstExpr::Literal(Value::Str(v.into()))),
            TokenKind::Keyword(k) if k == "CAST" => {
                self.expect_token(&TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect_keyword("AS")?;
                let type_name = match self.advance() {
                    TokenKind::Ident(s) => s,
                    TokenKind::Keyword(s) => s,
                    other => {
                        return Err(SqlmlError::Parse(format!(
                            "expected a type name in CAST, found {other:?}"
                        )))
                    }
                };
                let to = DataType::parse_sql_name(&type_name)?;
                self.expect_token(&TokenKind::RParen)?;
                Ok(AstExpr::Cast {
                    expr: Box::new(e),
                    to,
                })
            }
            TokenKind::Keyword(k) if k == "TRUE" => Ok(AstExpr::Literal(Value::Bool(true))),
            TokenKind::Keyword(k) if k == "FALSE" => Ok(AstExpr::Literal(Value::Bool(false))),
            TokenKind::Keyword(k) if k == "NULL" => Ok(AstExpr::Literal(Value::Null)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect_token(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Keyword(k)
                if matches!(k.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") =>
            {
                let func = match k.as_str() {
                    "COUNT" => AggFunc::Count,
                    "SUM" => AggFunc::Sum,
                    "AVG" => AggFunc::Avg,
                    "MIN" => AggFunc::Min,
                    _ => AggFunc::Max,
                };
                self.expect_token(&TokenKind::LParen)?;
                if func == AggFunc::Count && self.accept(&TokenKind::Star) {
                    self.expect_token(&TokenKind::RParen)?;
                    return Ok(AstExpr::Agg {
                        func,
                        arg: None,
                        distinct: false,
                    });
                }
                let distinct = self.accept_keyword("DISTINCT");
                let arg = self.expr()?;
                self.expect_token(&TokenKind::RParen)?;
                Ok(AstExpr::Agg {
                    func,
                    arg: Some(Box::new(arg)),
                    distinct,
                })
            }
            TokenKind::Ident(name) => {
                // Qualified column, scalar function call, or bare column.
                if self.accept(&TokenKind::Dot) {
                    let col = self.ident()?;
                    return Ok(AstExpr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                if self.accept(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.accept(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_token(&TokenKind::RParen)?;
                    return Ok(AstExpr::FuncCall { name, args });
                }
                Ok(AstExpr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(SqlmlError::Parse(format!(
                "expected an expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example_query() {
        let q = parse_select(
            "SELECT U.age, U.gender, C.amount, C.abandoned \
             FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA'",
        )
        .unwrap();
        assert_eq!(q.projection.len(), 4);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].binding(), Some("C"));
        assert_eq!(q.from[1].binding(), Some("U"));
        let sel = q.selection.unwrap();
        assert_eq!(sel.conjuncts().len(), 2);
    }

    #[test]
    fn parses_the_paper_recode_join() {
        let q = parse_select(
            "SELECT T.age, Mg.recodeVal AS gender, T.amount, Ma.recodeVal AS abandoned \
             FROM T, M AS Mg, M AS Ma \
             WHERE Mg.colName='gender' AND T.gender=Mg.colVal \
               AND Ma.colName='abandoned' AND T.abandoned=Ma.colVal",
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.selection.unwrap().conjuncts().len(), 4);
        match &q.projection[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("gender")),
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_table_udf_in_from() {
        let q = parse_select(
            "SELECT DISTINCT colName, colVal FROM TABLE(distinct_values('result', 'gender', 'abandoned')) AS d",
        )
        .unwrap();
        assert!(q.distinct);
        match &q.from[0] {
            TableRef::TableFunction { udf, args, alias } => {
                assert_eq!(udf, "distinct_values");
                assert_eq!(args.len(), 3);
                assert_eq!(args[0], TableFuncArg::Literal(Value::Str("result".into())));
                assert_eq!(alias.as_deref(), Some("d"));
            }
            other => panic!("unexpected from {other:?}"),
        }
    }

    #[test]
    fn parses_table_udf_with_table_name_arg() {
        let q = parse_select("SELECT * FROM TABLE(dummy_code(result, 'gender')) AS x").unwrap();
        match &q.from[0] {
            TableRef::TableFunction { args, .. } => {
                assert_eq!(args[0], TableFuncArg::Table("result".into()));
            }
            other => panic!("unexpected from {other:?}"),
        }
    }

    #[test]
    fn parses_explicit_joins() {
        let q = parse_select(
            "SELECT c.amount FROM carts c JOIN users u ON c.userid = u.userid \
             LEFT JOIN extras e ON e.id = c.id WHERE u.age > 18",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].kind, JoinKind::Inner);
        assert_eq!(q.joins[1].kind, JoinKind::LeftOuter);
    }

    #[test]
    fn parses_group_by_having_order_limit() {
        let q = parse_select(
            "SELECT gender, COUNT(*), AVG(amount) AS avg_amt FROM carts \
             GROUP BY gender HAVING COUNT(*) > 10 ORDER BY avg_amt DESC, gender LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn parses_in_between_is_null() {
        let q = parse_select(
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 0 AND 10 \
             AND c IS NOT NULL AND d NOT IN ('x')",
        )
        .unwrap();
        let conj = q.selection.unwrap();
        assert_eq!(conj.conjuncts().len(), 4);
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let q = parse_select("SELECT a + b * 2 - c / 4 FROM t").unwrap();
        match &q.projection[0] {
            SelectItem::Expr { expr, .. } => {
                // Top node must be the subtraction.
                match expr {
                    AstExpr::Arith {
                        op: ArithOp::Sub, ..
                    } => {}
                    other => panic!("precedence wrong: {other:?}"),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_create_table() {
        let s = parse_statement(
            "CREATE TABLE users (userid BIGINT, gender VARCHAR CATEGORICAL, age INT)",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "users");
                assert_eq!(columns.len(), 3);
                assert!(columns[1].categorical);
                assert!(!columns[0].categorical);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_table_as() {
        let s = parse_statement("CREATE TABLE snapshot AS SELECT * FROM carts WHERE year = 2014")
            .unwrap();
        assert!(matches!(s, Statement::CreateTableAs { .. }));
    }

    #[test]
    fn parses_drop_table() {
        assert_eq!(
            parse_statement("DROP TABLE tmp;").unwrap(),
            Statement::DropTable { name: "tmp".into() }
        );
    }

    #[test]
    fn wildcard_variants() {
        let q = parse_select("SELECT *, u.*, age FROM users u").unwrap();
        assert_eq!(q.projection.len(), 3);
        assert!(matches!(q.projection[0], SelectItem::Wildcard));
        assert!(matches!(
            q.projection[1],
            SelectItem::QualifiedWildcard(ref a) if a == "u"
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_statement("SELECT 1 FROM t WHERE").is_err());
        assert!(parse_statement("SELECT 1 FROM t 42").is_err());
    }

    #[test]
    fn not_precedence_binds_tighter_than_and() {
        let q = parse_select("SELECT * FROM t WHERE NOT a = 1 AND b = 2").unwrap();
        match q.selection.unwrap() {
            AstExpr::And(l, _) => assert!(matches!(*l, AstExpr::Not(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_star_and_count_distinct() {
        let q = parse_select("SELECT COUNT(*), COUNT(DISTINCT gender) FROM t").unwrap();
        match (&q.projection[0], &q.projection[1]) {
            (
                SelectItem::Expr {
                    expr: AstExpr::Agg { arg: None, .. },
                    ..
                },
                SelectItem::Expr {
                    expr:
                        AstExpr::Agg {
                            arg: Some(_),
                            distinct: true,
                            ..
                        },
                    ..
                },
            ) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
