//! The engine facade: SQL in, partitioned tables out.

use std::sync::Arc;

use sqlml_common::schema::Field;
use sqlml_common::{Result, Row, Schema};
use sqlml_dfs::Dfs;

use crate::ast::{SelectStmt, Statement};
use crate::catalog::Catalog;
use crate::executor::ExecContext;
use crate::optimizer::optimize;
use crate::parser::{parse_select, parse_statement};
use crate::plan::Plan;
use crate::planner::plan_select;
use crate::table::PartitionedTable;
use crate::udf::{ScalarUdf, TableUdf};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of SQL worker threads (the paper's "SQL workers").
    pub num_workers: usize,
    /// Cluster node names the workers are placed on, round-robin. Empty
    /// means one synthetic node per worker.
    pub nodes: Vec<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_workers: 4,
            nodes: Vec::new(),
        }
    }
}

impl EngineConfig {
    pub fn with_workers(num_workers: usize) -> Self {
        EngineConfig {
            num_workers,
            ..Default::default()
        }
    }
}

/// An MPP SQL engine instance: a catalog plus a worker pool. Cheap to
/// clone (shared catalog), so transformation layers can hold a handle.
///
/// ```
/// use sqlml_sqlengine::{Engine, EngineConfig};
/// use sqlml_common::schema::{DataType, Field, Schema};
/// use sqlml_common::row;
///
/// let engine = Engine::new(EngineConfig::with_workers(2));
/// engine.register_rows(
///     "users",
///     Schema::new(vec![
///         Field::new("age", DataType::Int),
///         Field::categorical("country"),
///     ]),
///     vec![row![34i64, "USA"], row![51i64, "CA"], row![29i64, "USA"]],
/// );
/// let result = engine
///     .query("SELECT age FROM users WHERE country = 'USA' ORDER BY age")
///     .unwrap();
/// assert_eq!(result.num_rows(), 2);
/// ```
#[derive(Clone)]
pub struct Engine {
    catalog: Arc<Catalog>,
    ctx: ExecContext,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        let catalog = Arc::new(Catalog::new());
        crate::functions::register_builtins(&catalog);
        Engine {
            catalog,
            ctx: ExecContext::new(config.num_workers, config.nodes),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn num_workers(&self) -> usize {
        self.ctx.num_workers
    }

    /// Node name hosting a given SQL worker.
    pub fn worker_node(&self, worker: usize) -> &str {
        self.ctx.worker_node(worker)
    }

    pub fn exec_context(&self) -> &ExecContext {
        &self.ctx
    }

    // -- registration -----------------------------------------------------

    /// Register rows as a table partitioned across the worker pool.
    pub fn register_rows(&self, name: &str, schema: Schema, rows: Vec<Row>) {
        let t =
            PartitionedTable::partition_rows(schema, rows, self.ctx.num_workers, &self.ctx.nodes);
        self.catalog.register_table(name, t);
    }

    /// Register an already-partitioned table.
    pub fn register_table(&self, name: &str, table: PartitionedTable) {
        self.catalog.register_table(name, table);
    }

    /// Load a text table from a DFS directory of part files, then
    /// repartition it across the worker pool.
    pub fn load_text_table(&self, name: &str, schema: Schema, dfs: &Dfs, dir: &str) -> Result<()> {
        let raw = PartitionedTable::load_text(dfs, dir, schema)?;
        let t = raw.repartition(self.ctx.num_workers, &self.ctx.nodes);
        self.catalog.register_table(name, t);
        Ok(())
    }

    pub fn register_scalar_udf(&self, udf: Arc<dyn ScalarUdf>) {
        self.catalog.register_scalar_udf(udf);
    }

    pub fn register_table_udf(&self, udf: Arc<dyn TableUdf>) {
        self.catalog.register_table_udf(udf);
    }

    // -- query execution ----------------------------------------------------

    /// Execute any statement. SELECT returns its result; DDL returns
    /// `None`.
    pub fn execute(&self, sql: &str) -> Result<Option<PartitionedTable>> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => Ok(Some(self.run_select(&stmt)?)),
            Statement::CreateTable { name, columns } => {
                let fields = columns
                    .into_iter()
                    .map(|c| {
                        let mut f = Field::new(c.name, c.data_type);
                        f.categorical = c.categorical;
                        f
                    })
                    .collect();
                self.register_rows(&name, Schema::new(fields), Vec::new());
                Ok(None)
            }
            Statement::CreateTableAs { name, query } => {
                let result = self.run_select(&query)?;
                self.catalog.register_table(&name, result);
                Ok(None)
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(&name)?;
                Ok(None)
            }
            Statement::Explain(stmt) => {
                let text = self.plan(&stmt)?.explain();
                let rows = text
                    .lines()
                    .map(|l| Row::new(vec![sqlml_common::Value::Str(l.into())]))
                    .collect();
                Ok(Some(PartitionedTable::single(
                    Schema::new(vec![Field::new(
                        "plan",
                        sqlml_common::schema::DataType::Str,
                    )]),
                    rows,
                )))
            }
        }
    }

    /// Execute a SELECT, returning the partitioned result.
    pub fn query(&self, sql: &str) -> Result<PartitionedTable> {
        let stmt = parse_select(sql)?;
        self.run_select(&stmt)
    }

    /// Execute a SELECT and gather all rows (schema + rows).
    pub fn query_collect(&self, sql: &str) -> Result<(Schema, Vec<Row>)> {
        let t = self.query(sql)?;
        Ok((t.schema().clone(), t.collect_rows()))
    }

    /// Execute an already-parsed SELECT.
    pub fn run_select(&self, stmt: &SelectStmt) -> Result<PartitionedTable> {
        let plan = self.plan(stmt)?;
        crate::executor::execute(&plan, &self.ctx)
    }

    /// Plan (and optimize) a SELECT without executing it. With debug
    /// assertions on (dev and test profiles), the plan semantic analyzer
    /// runs after planning and again after the optimizer rewrite, so a
    /// broken invariant is a hard error long before execution; release
    /// builds skip the walk entirely.
    pub fn plan(&self, stmt: &SelectStmt) -> Result<Plan> {
        let unoptimized = plan_select(stmt, &self.catalog)?;
        self.debug_validate(&unoptimized)?;
        let plan = optimize(unoptimized);
        self.debug_validate(&plan)?;
        Ok(plan)
    }

    /// Plan a SELECT without the operator-fusion pass — the
    /// row-at-a-time reference path used by differential tests.
    pub fn plan_unfused(&self, stmt: &SelectStmt) -> Result<Plan> {
        let unoptimized = plan_select(stmt, &self.catalog)?;
        self.debug_validate(&unoptimized)?;
        let plan = crate::optimizer::optimize_unfused(unoptimized);
        self.debug_validate(&plan)?;
        Ok(plan)
    }

    #[cfg(debug_assertions)]
    fn debug_validate(&self, plan: &Plan) -> Result<()> {
        crate::validate::validate(plan, &self.catalog).map(|_| ())
    }

    #[cfg(not(debug_assertions))]
    fn debug_validate(&self, _plan: &Plan) -> Result<()> {
        Ok(())
    }

    /// Execute a SELECT through the unfused reference plan. Produces the
    /// same rows as [`Engine::query`]; exists so tests can compare the
    /// fused executor against the one-operator-at-a-time path.
    pub fn query_unfused(&self, sql: &str) -> Result<PartitionedTable> {
        let stmt = parse_select(sql)?;
        let plan = self.plan_unfused(&stmt)?;
        crate::executor::execute(&plan, &self.ctx)
    }

    /// EXPLAIN: the optimized plan as text.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = parse_select(sql)?;
        Ok(self.plan(&stmt)?.explain())
    }

    /// Apply a registered table UDF directly to a table (API-level
    /// equivalent of `SELECT * FROM TABLE(udf(t, args...))`).
    pub fn apply_table_udf(
        &self,
        input: &PartitionedTable,
        udf_name: &str,
        args: &[sqlml_common::Value],
    ) -> Result<PartitionedTable> {
        let udf = self.catalog.table_udf(udf_name)?;
        let out_schema = udf.output_schema(input.schema(), args)?;
        let input_schema = input.schema().clone();
        let mapped = crate::executor::map_partitions(input, &self.ctx, |rows, pctx| {
            udf.execute(rows, &input_schema, args, pctx)
        })?;
        Ok(PartitionedTable::from_shared(
            out_schema,
            mapped.partitions().to_vec(),
            mapped.homes().to_vec(),
        ))
    }

    /// Export a SELECT result to the DFS as text part files — the
    /// materialization hop of the naive pipeline. Returns bytes written.
    pub fn query_to_dfs(&self, sql: &str, dfs: &Dfs, dir: &str) -> Result<u64> {
        let t = self.query(sql)?;
        t.save_text(dfs, dir)
    }

    /// Ensure a SELECT query is valid (parse + plan) without running it.
    pub fn validate(&self, sql: &str) -> Result<Schema> {
        let stmt = parse_select(sql)?;
        Ok(self.plan(&stmt)?.schema())
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("num_workers", &self.ctx.num_workers)
            .field("tables", &self.catalog.table_names())
            .finish()
    }
}

// A convenience used by error paths in tests.
impl Engine {
    /// The total row count of a registered table.
    pub fn table_rows(&self, name: &str) -> Result<usize> {
        Ok(self.catalog.table(name)?.num_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use sqlml_common::schema::DataType;
    use sqlml_common::Value;

    fn engine_with_data() -> Engine {
        let e = Engine::new(EngineConfig::with_workers(3));
        let carts = Schema::new(vec![
            Field::new("cartid", DataType::Int),
            Field::new("userid", DataType::Int),
            Field::new("amount", DataType::Double),
            Field::categorical("abandoned"),
        ]);
        let users = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::categorical("country"),
        ]);
        let cart_rows: Vec<Row> = (0..30)
            .map(|i| {
                row![
                    i as i64,
                    (i % 10) as i64,
                    10.0 + i as f64,
                    if i % 3 == 0 { "Yes" } else { "No" }
                ]
            })
            .collect();
        let user_rows: Vec<Row> = (0..10)
            .map(|i| {
                row![
                    i as i64,
                    20 + i as i64,
                    if i % 2 == 0 { "F" } else { "M" },
                    if i < 8 { "USA" } else { "CA" }
                ]
            })
            .collect();
        e.register_rows("carts", carts, cart_rows);
        e.register_rows("users", users, user_rows);
        e
    }

    #[test]
    fn end_to_end_paper_query() {
        let e = engine_with_data();
        let t = e
            .query(
                "SELECT U.age, U.gender, C.amount, C.abandoned \
                 FROM carts C, users U \
                 WHERE C.userid=U.userid AND U.country='USA'",
            )
            .unwrap();
        // users 0..8 are USA; carts reference userid i%10, so 24 of 30 match.
        assert_eq!(t.num_rows(), 24);
        assert_eq!(
            t.schema().names(),
            vec!["age", "gender", "amount", "abandoned"]
        );
        for r in t.collect_rows() {
            let age = r.get(0).as_i64().unwrap();
            assert!((20..28).contains(&age));
        }
    }

    #[test]
    fn join_matches_reference_nested_loop() {
        let e = engine_with_data();
        let got = e
            .query(
                "SELECT C.cartid, U.userid FROM carts C, users U \
                 WHERE C.userid = U.userid AND U.age > 24",
            )
            .unwrap()
            .collect_sorted();
        // Reference: nested loops over the same data.
        let mut expect = Vec::new();
        for i in 0..30i64 {
            let uid = i % 10;
            let age = 20 + uid;
            if age > 24 {
                expect.push(row![i, uid]);
            }
        }
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn select_distinct() {
        let e = engine_with_data();
        let t = e
            .query("SELECT DISTINCT gender FROM users")
            .unwrap()
            .collect_sorted();
        assert_eq!(t, vec![row!["F"], row!["M"]]);
    }

    #[test]
    fn group_by_count_avg() {
        let e = engine_with_data();
        let rows = e
            .query(
                "SELECT abandoned, COUNT(*) AS n, AVG(amount) AS a \
                 FROM carts GROUP BY abandoned ORDER BY abandoned",
            )
            .unwrap()
            .collect_rows();
        assert_eq!(rows.len(), 2);
        // "No": 20 rows, "Yes": 10 rows.
        assert_eq!(rows[0].get(0), &Value::Str("No".into()));
        assert_eq!(rows[0].get(1), &Value::Int(20));
        assert_eq!(rows[1].get(1), &Value::Int(10));
        // AVG(Yes) = mean of 10 + 3k for k=0..9 = 10 + 13.5.
        let avg_yes = rows[1].get(2).as_f64().unwrap();
        assert!((avg_yes - 23.5).abs() < 1e-9);
    }

    #[test]
    fn global_aggregate_without_group() {
        let e = engine_with_data();
        let rows = e
            .query("SELECT COUNT(*), SUM(amount), MIN(userid), MAX(userid) FROM carts")
            .unwrap()
            .collect_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(30));
        assert_eq!(rows[0].get(2), &Value::Int(0));
        assert_eq!(rows[0].get(3), &Value::Int(9));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let e = engine_with_data();
        let rows = e
            .query("SELECT COUNT(*), SUM(amount) FROM carts WHERE amount < 0")
            .unwrap()
            .collect_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(0));
        assert!(rows[0].get(1).is_null());
    }

    #[test]
    fn order_by_and_limit() {
        let e = engine_with_data();
        let rows = e
            .query("SELECT cartid, amount FROM carts ORDER BY amount DESC LIMIT 3")
            .unwrap()
            .collect_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(0), &Value::Int(29));
        assert_eq!(rows[1].get(0), &Value::Int(28));
    }

    #[test]
    fn left_join_preserves_unmatched() {
        let e = engine_with_data();
        // User 9 never bought anything... all userids 0..9 appear in carts
        // (i % 10), so add an extra user with no carts.
        let rows = e
            .query(
                "SELECT u.userid, c.cartid FROM users u \
                 LEFT JOIN carts c ON u.userid = c.userid \
                 WHERE u.userid = 5",
            )
            .unwrap()
            .collect_rows();
        assert_eq!(rows.len(), 3); // carts 5, 15, 25
        let e2 = engine_with_data();
        e2.register_rows(
            "lonely",
            Schema::new(vec![Field::new("userid", DataType::Int)]),
            vec![row![999i64]],
        );
        let rows = e2
            .query(
                "SELECT l.userid, c.cartid FROM lonely l LEFT JOIN carts c ON l.userid = c.userid",
            )
            .unwrap()
            .collect_rows();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].get(1).is_null());
    }

    #[test]
    fn create_table_as_registers_result() {
        let e = engine_with_data();
        e.execute("CREATE TABLE usa_users AS SELECT userid, age FROM users WHERE country = 'USA'")
            .unwrap();
        assert_eq!(e.table_rows("usa_users").unwrap(), 8);
        let rows = e
            .query("SELECT COUNT(*) FROM usa_users")
            .unwrap()
            .collect_rows();
        assert_eq!(rows[0].get(0), &Value::Int(8));
    }

    #[test]
    fn create_and_drop_table() {
        let e = Engine::new(EngineConfig::default());
        e.execute("CREATE TABLE t (a BIGINT, b VARCHAR CATEGORICAL)")
            .unwrap();
        assert_eq!(e.table_rows("t").unwrap(), 0);
        assert!(
            e.catalog()
                .table("t")
                .unwrap()
                .schema()
                .field(1)
                .categorical
        );
        e.execute("DROP TABLE t").unwrap();
        assert!(e.catalog().table("t").is_err());
    }

    #[test]
    fn scalar_udf_in_query() {
        use crate::udf::ScalarFn;
        let e = engine_with_data();
        e.register_scalar_udf(Arc::new(ScalarFn::new("squared", |a: &[Value]| {
            let x = a[0].as_f64()?;
            Ok(Value::Double(x * x))
        })));
        let rows = e
            .query("SELECT squared(amount) AS s FROM carts WHERE cartid = 2")
            .unwrap()
            .collect_rows();
        assert_eq!(rows[0].get(0), &Value::Double(144.0));
    }

    #[test]
    fn query_to_dfs_round_trips() {
        use sqlml_dfs::{Dfs, DfsConfig};
        let e = engine_with_data();
        let dfs = Dfs::new(DfsConfig::for_tests());
        let bytes = e
            .query_to_dfs("SELECT userid, age FROM users", &dfs, "/out/users")
            .unwrap();
        assert!(bytes > 0);
        let schema = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("age", DataType::Int),
        ]);
        let e2 = Engine::new(EngineConfig::with_workers(2));
        e2.load_text_table("u2", schema, &dfs, "/out/users")
            .unwrap();
        assert_eq!(e2.table_rows("u2").unwrap(), 10);
    }

    #[test]
    fn explain_is_available_through_facade() {
        let e = engine_with_data();
        let text = e
            .explain("SELECT u.age FROM users u, carts c WHERE u.userid = c.userid")
            .unwrap();
        assert!(text.contains("HashJoin"));
    }

    #[test]
    fn validate_rejects_bad_queries_without_running() {
        let e = engine_with_data();
        assert!(e.validate("SELECT nope FROM users").is_err());
        let schema = e.validate("SELECT age FROM users").unwrap();
        assert_eq!(schema.names(), vec!["age"]);
    }

    #[test]
    fn explain_statement_returns_plan_rows() {
        let e = engine_with_data();
        let plan = e
            .execute("EXPLAIN SELECT U.age FROM carts C, users U WHERE C.userid = U.userid")
            .unwrap()
            .unwrap();
        let text: Vec<String> = plan
            .collect_rows()
            .iter()
            .map(|r| r.get(0).as_str().unwrap().to_string())
            .collect();
        assert!(text.iter().any(|l| l.contains("HashJoin")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Scan")), "{text:?}");
    }

    #[test]
    fn like_patterns() {
        let e = engine_with_data();
        // Countries: USA (8 users), CA (2 users).
        let n = e
            .query("SELECT userid FROM users WHERE country LIKE 'U%'")
            .unwrap()
            .num_rows();
        assert_eq!(n, 8);
        let n = e
            .query("SELECT userid FROM users WHERE country NOT LIKE '_A'")
            .unwrap()
            .num_rows();
        assert_eq!(n, 8);
        let n = e
            .query("SELECT userid FROM users WHERE country LIKE '%A%'")
            .unwrap()
            .num_rows();
        assert_eq!(n, 10);
        let n = e
            .query("SELECT userid FROM users WHERE gender LIKE 'F'")
            .unwrap()
            .num_rows();
        assert_eq!(n, 5);
    }

    #[test]
    fn cast_expressions() {
        let e = engine_with_data();
        let rows = e
            .query(
                "SELECT CAST(amount AS BIGINT), CAST(C.userid AS VARCHAR), \
                    CAST('42' AS INT), CAST(age AS DOUBLE) \
                    FROM carts C, users U WHERE C.userid = U.userid AND C.cartid = 3",
            )
            .unwrap()
            .collect_rows();
        assert_eq!(rows[0].get(0), &Value::Int(13)); // 13.0 truncated
        assert_eq!(rows[0].get(1), &Value::Str("3".into()));
        assert_eq!(rows[0].get(2), &Value::Int(42));
        assert_eq!(rows[0].get(3), &Value::Double(23.0));
        // Output schema reflects the cast target.
        let schema = e
            .validate("SELECT CAST(amount AS BIGINT) AS a FROM carts")
            .unwrap();
        assert_eq!(schema.field(0).data_type, DataType::Int);
        // Bad string casts fail at runtime.
        assert!(e.query("SELECT CAST(gender AS INT) FROM users").is_err());
    }

    #[test]
    fn join_with_empty_sides() {
        let e = engine_with_data();
        e.register_rows(
            "nobody",
            Schema::new(vec![Field::new("userid", DataType::Int)]),
            vec![],
        );
        // Inner join against an empty table: zero rows, not an error.
        let n = e
            .query("SELECT c.cartid FROM carts c, nobody n WHERE c.userid = n.userid")
            .unwrap()
            .num_rows();
        assert_eq!(n, 0);
        // LEFT JOIN with an empty right side preserves every left row.
        let n = e
            .query(
                "SELECT n.userid, c.cartid FROM carts c LEFT JOIN nobody n ON c.userid = n.userid",
            )
            .unwrap()
            .collect_rows();
        assert_eq!(n.len(), 30);
        assert!(n.iter().all(|r| r.get(0).is_null()));
    }

    #[test]
    fn limit_zero_and_oversized() {
        let e = engine_with_data();
        assert_eq!(
            e.query("SELECT cartid FROM carts LIMIT 0")
                .unwrap()
                .num_rows(),
            0
        );
        assert_eq!(
            e.query("SELECT cartid FROM carts LIMIT 9999")
                .unwrap()
                .num_rows(),
            30
        );
    }

    #[test]
    fn udf_errors_propagate_from_worker_threads() {
        use crate::udf::ScalarFn;
        let e = engine_with_data();
        e.register_scalar_udf(Arc::new(ScalarFn::new("boom", |_: &[Value]| {
            Err(sqlml_common::SqlmlError::Execution("deliberate".into()))
        })));
        let err = e.query("SELECT boom(cartid) FROM carts").unwrap_err();
        assert!(err.to_string().contains("deliberate"), "{err}");
    }

    #[test]
    fn null_join_keys_never_match() {
        let e = Engine::new(EngineConfig::with_workers(2));
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        e.register_rows(
            "l",
            schema.clone(),
            vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int(1)])],
        );
        e.register_rows(
            "r",
            schema,
            vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int(1)])],
        );
        // SQL: NULL = NULL is unknown, so only the 1-1 pair joins.
        let n = e
            .query("SELECT l.k FROM l, r WHERE l.k = r.k")
            .unwrap()
            .num_rows();
        assert_eq!(n, 1);
    }

    #[test]
    fn order_by_is_deterministic_under_ties() {
        let e = engine_with_data();
        // `abandoned` has only two values; ties broken by secondary key.
        let a = e
            .query("SELECT abandoned, cartid FROM carts ORDER BY abandoned, cartid")
            .unwrap()
            .collect_rows();
        let b = e
            .query("SELECT abandoned, cartid FROM carts ORDER BY abandoned, cartid")
            .unwrap()
            .collect_rows();
        assert_eq!(a, b);
        // And cartid ascends within each abandoned group.
        let mut prev: Option<(String, i64)> = None;
        for r in a {
            let key = (
                r.get(0).as_str().unwrap().to_string(),
                r.get(1).as_i64().unwrap(),
            );
            if let Some(p) = &prev {
                assert!(*p <= key, "{p:?} > {key:?}");
            }
            prev = Some(key);
        }
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let sql = "SELECT U.age, C.amount FROM carts C, users U \
                   WHERE C.userid=U.userid AND U.country='USA' AND C.amount > 15";
        let mut reference: Option<Vec<Row>> = None;
        for workers in [1, 2, 5, 8] {
            let e = Engine::new(EngineConfig::with_workers(workers));
            let carts = Schema::new(vec![
                Field::new("cartid", DataType::Int),
                Field::new("userid", DataType::Int),
                Field::new("amount", DataType::Double),
                Field::categorical("abandoned"),
            ]);
            let users = Schema::new(vec![
                Field::new("userid", DataType::Int),
                Field::new("age", DataType::Int),
                Field::categorical("gender"),
                Field::categorical("country"),
            ]);
            e.register_rows(
                "carts",
                carts,
                (0..30)
                    .map(|i| row![i as i64, (i % 10) as i64, 10.0 + i as f64, "No"])
                    .collect(),
            );
            e.register_rows(
                "users",
                users,
                (0..10)
                    .map(|i| {
                        row![
                            i as i64,
                            20 + i as i64,
                            "F",
                            if i < 8 { "USA" } else { "CA" }
                        ]
                    })
                    .collect(),
            );
            let got = e.query(sql).unwrap().collect_sorted();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "workers={workers}"),
            }
        }
    }
}
