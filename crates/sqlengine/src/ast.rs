//! Abstract syntax for the supported SQL subset.

use sqlml_common::schema::DataType;
use sqlml_common::Value;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `CREATE TABLE name (col TYPE [CATEGORICAL], ...)`
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    /// `CREATE TABLE name AS SELECT ...` — materializes a query result as
    /// a new catalog table (used for recode maps and cached results).
    CreateTableAs {
        name: String,
        query: SelectStmt,
    },
    /// `DROP TABLE name`
    DropTable {
        name: String,
    },
    /// `EXPLAIN SELECT ...` — returns the optimized plan as text rows.
    Explain(SelectStmt),
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub categorical: bool,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    /// Explicit `JOIN ... ON` clauses attached to the FROM list.
    pub joins: Vec<JoinClause>,
    pub selection: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// expression with optional output alias
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// A relation in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named catalog table with optional alias: `carts C`.
    Named { name: String, alias: Option<String> },
    /// A parallel table UDF invocation: `TABLE(udf(arg, ...)) AS alias`.
    /// Identifier arguments name input tables; literal arguments are
    /// passed to the UDF as values.
    TableFunction {
        udf: String,
        args: Vec<TableFuncArg>,
        alias: Option<String>,
    },
}

impl TableRef {
    /// The name this relation binds in the query scope.
    pub fn binding(&self) -> Option<&str> {
        match self {
            TableRef::Named { alias, name } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::TableFunction { alias, .. } => alias.as_deref(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableFuncArg {
    /// Refers to a catalog table by name.
    Table(String),
    /// A literal value forwarded to the UDF.
    Literal(Value),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
}

#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub kind: JoinKind,
    pub table: TableRef,
    pub on: AstExpr,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: AstExpr,
    pub desc: bool,
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }

    /// The comparison with operand order swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// An unresolved (syntactic) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `col` or `alias.col`
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    Cmp {
        op: CmpOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Arith {
        op: ArithOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    And(Box<AstExpr>, Box<AstExpr>),
    Or(Box<AstExpr>, Box<AstExpr>),
    Not(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`
    InList {
        expr: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`
    Between {
        expr: Box<AstExpr>,
        lo: Box<AstExpr>,
        hi: Box<AstExpr>,
    },
    /// Aggregate call; `COUNT(*)` has `arg: None`.
    Agg {
        func: AggFunc,
        arg: Option<Box<AstExpr>>,
        distinct: bool,
    },
    /// `expr [NOT] LIKE pattern` (SQL `%`/`_` wildcards).
    Like {
        expr: Box<AstExpr>,
        pattern: Box<AstExpr>,
        negated: bool,
    },
    /// `CAST(expr AS TYPE)`.
    Cast {
        expr: Box<AstExpr>,
        to: sqlml_common::schema::DataType,
    },
    /// Scalar UDF (or future built-in function) call by name.
    FuncCall {
        name: String,
        args: Vec<AstExpr>,
    },
    Neg(Box<AstExpr>),
}

impl AstExpr {
    pub fn col(name: &str) -> AstExpr {
        AstExpr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    pub fn qcol(qualifier: &str, name: &str) -> AstExpr {
        AstExpr::Column {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> AstExpr {
        AstExpr::Literal(v.into())
    }

    /// Split a conjunction into its conjuncts (flattening nested ANDs).
    pub fn conjuncts(&self) -> Vec<&AstExpr> {
        match self {
            AstExpr::And(l, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuild a conjunction from conjuncts; `None` for an empty list.
    pub fn conjoin(mut exprs: Vec<AstExpr>) -> Option<AstExpr> {
        let first = exprs.pop()?;
        Some(
            exprs
                .into_iter()
                .rev()
                .fold(first, |acc, e| AstExpr::And(Box::new(e), Box::new(acc))),
        )
    }

    /// True if the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            AstExpr::Agg { .. } => true,
            AstExpr::Column { .. } | AstExpr::Literal(_) => false,
            AstExpr::Cmp { left, right, .. } | AstExpr::Arith { left, right, .. } => {
                left.has_aggregate() || right.has_aggregate()
            }
            AstExpr::And(l, r) | AstExpr::Or(l, r) => l.has_aggregate() || r.has_aggregate(),
            AstExpr::Not(e) | AstExpr::Neg(e) => e.has_aggregate(),
            AstExpr::IsNull { expr, .. } => expr.has_aggregate(),
            AstExpr::InList { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(|e| e.has_aggregate())
            }
            AstExpr::Between { expr, lo, hi } => {
                expr.has_aggregate() || lo.has_aggregate() || hi.has_aggregate()
            }
            AstExpr::Like { expr, pattern, .. } => expr.has_aggregate() || pattern.has_aggregate(),
            AstExpr::Cast { expr, .. } => expr.has_aggregate(),
            AstExpr::FuncCall { args, .. } => args.iter().any(|e| e.has_aggregate()),
        }
    }

    /// The set of column references (qualifier, name) in this expression.
    pub fn column_refs(&self) -> Vec<(Option<&str>, &str)> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<(Option<&'a str>, &'a str)>) {
        match self {
            AstExpr::Column { qualifier, name } => out.push((qualifier.as_deref(), name)),
            AstExpr::Literal(_) => {}
            AstExpr::Cmp { left, right, .. } | AstExpr::Arith { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            AstExpr::And(l, r) | AstExpr::Or(l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            AstExpr::Not(e) | AstExpr::Neg(e) => e.collect_columns(out),
            AstExpr::IsNull { expr, .. } => expr.collect_columns(out),
            AstExpr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            AstExpr::Between { expr, lo, hi } => {
                expr.collect_columns(out);
                lo.collect_columns(out);
                hi.collect_columns(out);
            }
            AstExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
            AstExpr::Like { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
            AstExpr::Cast { expr, .. } => expr.collect_columns(out),
            AstExpr::FuncCall { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = AstExpr::And(
            Box::new(AstExpr::And(
                Box::new(AstExpr::col("a")),
                Box::new(AstExpr::col("b")),
            )),
            Box::new(AstExpr::col("c")),
        );
        let names: Vec<&str> = e
            .conjuncts()
            .iter()
            .map(|c| match c {
                AstExpr::Column { name, .. } => name.as_str(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn conjoin_round_trips() {
        let parts = vec![AstExpr::col("a"), AstExpr::col("b"), AstExpr::col("c")];
        let joined = AstExpr::conjoin(parts).unwrap();
        assert_eq!(joined.conjuncts().len(), 3);
        assert!(AstExpr::conjoin(vec![]).is_none());
    }

    #[test]
    fn aggregate_detection() {
        let agg = AstExpr::Agg {
            func: AggFunc::Sum,
            arg: Some(Box::new(AstExpr::col("x"))),
            distinct: false,
        };
        assert!(agg.has_aggregate());
        let nested = AstExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(agg),
            right: Box::new(AstExpr::lit(1i64)),
        };
        assert!(nested.has_aggregate());
        assert!(!AstExpr::col("x").has_aggregate());
    }

    #[test]
    fn column_refs_collects_qualified_names() {
        let e = AstExpr::And(
            Box::new(AstExpr::Cmp {
                op: CmpOp::Eq,
                left: Box::new(AstExpr::qcol("C", "userid")),
                right: Box::new(AstExpr::qcol("U", "userid")),
            }),
            Box::new(AstExpr::Cmp {
                op: CmpOp::Eq,
                left: Box::new(AstExpr::qcol("U", "country")),
                right: Box::new(AstExpr::lit("USA")),
            }),
        );
        let refs = e.column_refs();
        assert_eq!(refs.len(), 3);
        assert!(refs.contains(&(Some("U"), "country")));
    }

    #[test]
    fn cmp_flip_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::NotEq,
            CmpOp::Lt,
            CmpOp::LtEq,
            CmpOp::Gt,
            CmpOp::GtEq,
        ] {
            assert_eq!(op.flipped().flipped(), op);
        }
    }
}
