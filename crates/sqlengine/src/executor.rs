//! Parallel plan execution.
//!
//! Plans execute partition-at-a-time across a pool of worker threads: the
//! engine's "SQL workers". Worker `w` processes partitions `w, w+W, …` of
//! every operator, so a table UDF invoked over an `n`-partition table runs
//! `n` parallel instances spread over `W` workers — exactly the execution
//! model the paper's In-SQL transformations and streaming-transfer UDF
//! rely on.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use sqlml_common::{Result, Row, SqlmlError, Value};

use crate::ast::{AggFunc, JoinKind};
use crate::expr::Expr;
use crate::plan::{AggExpr, BuildSide, FusedStage, Plan};
use crate::table::PartitionedTable;
use crate::udf::PartitionCtx;

/// Execution environment: worker pool size and the cluster node names the
/// workers live on (worker `w` is on `nodes[w % nodes.len()]`).
#[derive(Debug, Clone)]
pub struct ExecContext {
    pub num_workers: usize,
    pub nodes: Vec<String>,
}

impl ExecContext {
    pub fn new(num_workers: usize, nodes: Vec<String>) -> Self {
        assert!(num_workers > 0);
        let nodes = if nodes.is_empty() {
            (0..num_workers).map(sqlml_dfs::node_name).collect()
        } else {
            nodes
        };
        ExecContext { num_workers, nodes }
    }

    pub fn worker_node(&self, worker: usize) -> &str {
        &self.nodes[worker % self.nodes.len()]
    }
}

/// Execute a plan, producing a partitioned result.
pub fn execute(plan: &Plan, ctx: &ExecContext) -> Result<PartitionedTable> {
    match plan {
        Plan::Scan { table, .. } => Ok(PartitionedTable::from_shared(
            table.schema().clone(),
            table.partitions().to_vec(),
            table.homes().to_vec(),
        )),

        Plan::Filter { input, predicate } => {
            let child = execute(input, ctx)?;
            map_partitions(&child, ctx, |rows, _| {
                // Preallocate from the planner's uniform selectivity
                // guess (1/4) so typical filters don't regrow the output.
                let mut out = Vec::with_capacity(rows.len() / 4 + 1);
                for r in rows {
                    if predicate.eval_predicate(r)? {
                        out.push(r.clone());
                    }
                }
                Ok(out)
            })
        }

        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            let child = execute(input, ctx)?;
            let mapped = map_partitions(&child, ctx, |rows, _| {
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    let mut values = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        values.push(e.eval(r)?);
                    }
                    out.push(Row::new(values));
                }
                Ok(out)
            })?;
            Ok(replace_schema(mapped, schema.clone()))
        }

        Plan::TableUdfScan {
            udf,
            input,
            args,
            schema,
        } => {
            let child = execute(input, ctx)?;
            let input_schema = child.schema().clone();
            let mapped = map_partitions(&child, ctx, |rows, pctx| {
                udf.execute(rows, &input_schema, args, pctx)
            })?;
            Ok(replace_schema(mapped, schema.clone()))
        }

        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            build,
            schema,
        } => execute_join(
            left, right, left_keys, right_keys, *kind, *build, schema, ctx,
        ),

        Plan::Distinct { input } => {
            let child = execute(input, ctx)?;
            execute_distinct(&child, ctx)
        }

        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => {
            let child = execute(input, ctx)?;
            let rows = execute_aggregate(&child, group_exprs, aggs, ctx)?;
            Ok(gather_to_first_home(schema.clone(), rows, &child))
        }

        Plan::Sort { input, keys } => {
            let child = execute(input, ctx)?;
            let rows = parallel_sort(&child, keys, ctx)?;
            Ok(gather_to_first_home(child.schema().clone(), rows, &child))
        }

        Plan::Limit { input, n } => {
            let child = execute(input, ctx)?;
            let mut rows = Vec::with_capacity((*n).min(child.num_rows()));
            // Bulk-copy each partition's prefix instead of per-row clone.
            for p in child.partitions() {
                let take = (*n - rows.len()).min(p.len());
                rows.extend_from_slice(&p[..take]);
                if rows.len() == *n {
                    break;
                }
            }
            Ok(gather_to_first_home(child.schema().clone(), rows, &child))
        }

        Plan::Fused {
            input,
            stages,
            schema,
        } => {
            let child = execute(input, ctx)?;
            let mapped = map_partitions(&child, ctx, |rows, pctx| run_fused(rows, stages, pctx))?;
            Ok(replace_schema(mapped, schema.clone()))
        }
    }
}

/// Wrap gathered (single-partition) result rows, homing the output at
/// the first input partition's node. Gather-style operators (`Sort`,
/// `Aggregate`, `Limit`) collapse to one partition; defaulting its home
/// to node-0 would silently degrade downstream locality-aware placement,
/// so the gather is instead attributed to the node that holds the first
/// input partition (where a real engine's gather coordinator would run).
fn gather_to_first_home(
    schema: sqlml_common::Schema,
    rows: Vec<Row>,
    child: &PartitionedTable,
) -> PartitionedTable {
    let out = PartitionedTable::single(schema, rows);
    match child.homes().first() {
        Some(h) => out.with_homes(vec![h.clone()]),
        None => out,
    }
}

/// Execute a fused stage chain over one partition. Consecutive scalar
/// stages (`Filter`/`Project`) run row-at-a-time — a rejected row exits
/// the whole run with no output written, and a projected row feeds the
/// next stage without touching a partition-sized buffer. UDF stages are
/// batch boundaries: they consume the current buffer and produce the
/// next.
fn run_fused(rows: &[Row], stages: &[FusedStage], pctx: &PartitionCtx) -> Result<Vec<Row>> {
    // `buf` is None while the input partition can still be borrowed.
    let mut buf: Option<Vec<Row>> = None;
    let mut i = 0;
    while i < stages.len() {
        if let FusedStage::Udf {
            udf,
            args,
            input_schema,
        } = &stages[i]
        {
            let input_rows: &[Row] = buf.as_deref().unwrap_or(rows);
            buf = Some(udf.execute(input_rows, input_schema, args, pctx)?);
            i += 1;
            continue;
        }
        // Scalar run: [i, j) holds only Filter/Project stages.
        let mut j = i;
        while j < stages.len() && !matches!(stages[j], FusedStage::Udf { .. }) {
            j += 1;
        }
        let run = &stages[i..j];
        let input_rows: &[Row] = buf.as_deref().unwrap_or(rows);
        let has_filter = run.iter().any(|s| matches!(s, FusedStage::Filter(_)));
        let mut out = Vec::with_capacity(if has_filter {
            input_rows.len() / 4 + 1
        } else {
            input_rows.len()
        });
        'row: for r in input_rows {
            let mut owned: Option<Row> = None;
            for stage in run {
                let cur = owned.as_ref().unwrap_or(r);
                match stage {
                    FusedStage::Filter(pred) => {
                        if !pred.eval_predicate(cur)? {
                            continue 'row;
                        }
                    }
                    FusedStage::Project { exprs } => {
                        let mut values = Vec::with_capacity(exprs.len());
                        for e in exprs {
                            values.push(e.eval(cur)?);
                        }
                        owned = Some(Row::new(values));
                    }
                    FusedStage::Udf { .. } => unreachable!("scalar run contains no UDF stages"),
                }
            }
            out.push(owned.unwrap_or_else(|| r.clone()));
        }
        buf = Some(out);
        i = j;
    }
    Ok(buf.unwrap_or_else(|| rows.to_vec()))
}

// ---------------------------------------------------------------------------
// Sort (parallel per-partition sort + k-way merge)
// ---------------------------------------------------------------------------

/// Row sort key captured for the merge heap: per key column, the value
/// plus its descending flag.
struct SortKey(Vec<(Value, bool)>);

impl SortKey {
    fn of(row: &Row, keys: &[(usize, bool)]) -> SortKey {
        SortKey(
            keys.iter()
                .map(|(idx, desc)| (row.get(*idx).clone(), *desc))
                .collect(),
        )
    }
}

impl PartialEq for SortKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for SortKey {}
impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for ((a, desc), (b, _)) in self.0.iter().zip(other.0.iter()) {
            let ord = a.cmp(b);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }
}

fn sort_cmp(a: &Row, b: &Row, keys: &[(usize, bool)]) -> std::cmp::Ordering {
    for (idx, desc) in keys {
        let ord = a.get(*idx).cmp(b.get(*idx));
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Sort every partition in parallel on the worker pool, then k-way merge
/// the sorted runs on the driver — the O(N log N) comparison work runs
/// on all workers instead of one thread.
fn parallel_sort(
    input: &PartitionedTable,
    keys: &[(usize, bool)],
    ctx: &ExecContext,
) -> Result<Vec<Row>> {
    let n = input.num_partitions();
    let sorted: Vec<Vec<Row>> = run_on_workers(n, ctx, |p| {
        let mut rows: Vec<Row> = input.partition(p).to_vec();
        rows.sort_by(|a, b| sort_cmp(a, b, keys));
        Ok(rows)
    })?;

    if sorted.len() == 1 {
        return sorted
            .into_iter()
            .next()
            .ok_or_else(|| SqlmlError::Execution("sorted partition vanished".into()));
    }

    // Merge: min-heap of (key, partition index) — the partition index
    // tie-break reproduces the stable gather order of a global sort.
    let total: usize = sorted.iter().map(|v| v.len()).sum();
    let mut iters: Vec<std::vec::IntoIter<Row>> =
        sorted.into_iter().map(|v| v.into_iter()).collect();
    let mut heap: BinaryHeap<std::cmp::Reverse<(SortKey, usize, Row)>> = BinaryHeap::new();
    for (p, it) in iters.iter_mut().enumerate() {
        if let Some(r) = it.next() {
            heap.push(std::cmp::Reverse((SortKey::of(&r, keys), p, r)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(std::cmp::Reverse((_, p, row))) = heap.pop() {
        out.push(row);
        if let Some(r) = iters[p].next() {
            heap.push(std::cmp::Reverse((SortKey::of(&r, keys), p, r)));
        }
    }
    Ok(out)
}

fn replace_schema(t: PartitionedTable, schema: sqlml_common::Schema) -> PartitionedTable {
    PartitionedTable::from_shared(schema, t.partitions().to_vec(), t.homes().to_vec())
}

/// Apply `f` to every partition in parallel across the worker pool,
/// preserving partition order and homes.
pub fn map_partitions<F>(
    input: &PartitionedTable,
    ctx: &ExecContext,
    f: F,
) -> Result<PartitionedTable>
where
    F: Fn(&[Row], &PartitionCtx) -> Result<Vec<Row>> + Sync,
{
    let n = input.num_partitions();
    let results = run_on_workers(n, ctx, |p| {
        let pctx = PartitionCtx {
            partition: p,
            num_partitions: n,
            worker: p % ctx.num_workers,
            num_workers: ctx.num_workers,
            node: input.home(p).to_string(),
        };
        f(input.partition(p), &pctx)
    })?;
    Ok(PartitionedTable::from_shared(
        input.schema().clone(),
        results.into_iter().map(Arc::new).collect(),
        input.homes().to_vec(),
    ))
}

/// Run a per-partition closure on the worker pool; returns outputs in
/// partition order. The whole call fails if any partition fails.
pub fn run_on_workers<T, F>(num_partitions: usize, ctx: &ExecContext, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    if num_partitions == 0 {
        return Ok(Vec::new());
    }
    let workers = ctx.num_workers.min(num_partitions);
    if workers == 1 {
        return (0..num_partitions).map(&f).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || -> Result<Vec<(usize, T)>> {
                    let mut out = Vec::new();
                    let mut p = w;
                    while p < num_partitions {
                        out.push((p, f(p)?));
                        p += workers;
                    }
                    Ok(out)
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..num_partitions).map(|_| None).collect();
        for h in handles {
            let chunk = h
                .join()
                .map_err(|_| SqlmlError::Execution("worker thread panicked".into()))??;
            for (p, v) in chunk {
                slots[p] = Some(v);
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(p, s)| {
                s.ok_or_else(|| SqlmlError::Execution(format!("partition {p} produced no result")))
            })
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn execute_join(
    left: &Plan,
    right: &Plan,
    left_keys: &[Expr],
    right_keys: &[Expr],
    kind: JoinKind,
    build: BuildSide,
    schema: &sqlml_common::Schema,
    ctx: &ExecContext,
) -> Result<PartitionedTable> {
    let left_data = execute(left, ctx)?;
    let right_data = execute(right, ctx)?;

    let (build_data, probe_data, build_keys, probe_keys) = match build {
        BuildSide::Right => (&right_data, &left_data, right_keys, left_keys),
        BuildSide::Left => (&left_data, &right_data, left_keys, right_keys),
    };
    debug_assert!(
        kind == JoinKind::Inner || build == BuildSide::Right,
        "left-outer joins must build from the right side"
    );

    // Build phase: index the (gathered/broadcast) build side. Instead of
    // cloning build rows into the hash table, the index maps each
    // pre-hashed key to a bucket of (partition, row) ids — the build-side
    // partitions themselves stay the only copy of the rows.
    let mut index: HashMap<Prehashed, u32> = HashMap::new();
    let mut buckets: Vec<Vec<(u32, u32)>> = Vec::new();
    let is_cross = build_keys.is_empty();
    for (pi, part) in build_data.partitions().iter().enumerate() {
        if is_cross {
            continue;
        }
        for (ri, r) in part.iter().enumerate() {
            // NULL keys never match, so they are simply not added.
            if let Some(k) = eval_keys(build_keys, r)? {
                let bucket = match index.entry(Prehashed::new(k)) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let b = sqlml_common::counter_u32(buckets.len(), "join bucket count")?;
                        buckets.push(Vec::new());
                        e.insert(b);
                        b
                    }
                };
                buckets[bucket as usize].push((
                    sqlml_common::counter_u32(pi, "build partition index")?,
                    sqlml_common::counter_u32(ri, "build row index")?,
                ));
            }
        }
    }

    let right_width = right_data.schema().len();
    let null_tail = Row::new(vec![Value::Null; right_width]);
    let build_parts = build_data.partitions();
    let cross_ids: Vec<(u32, u32)> = if is_cross {
        let mut ids = Vec::new();
        for (pi, part) in build_parts.iter().enumerate() {
            let pi = sqlml_common::counter_u32(pi, "build partition index")?;
            for ri in 0..part.len() {
                ids.push((pi, sqlml_common::counter_u32(ri, "build row index")?));
            }
        }
        ids
    } else {
        Vec::new()
    };

    let result = map_partitions(probe_data, ctx, |rows, _| {
        let mut out = Vec::new();
        for probe_row in rows {
            // Each probe key is evaluated and hashed exactly once.
            let matches: Option<&[(u32, u32)]> = if is_cross {
                if cross_ids.is_empty() {
                    None
                } else {
                    Some(&cross_ids)
                }
            } else {
                match eval_keys(probe_keys, probe_row)? {
                    Some(k) => index
                        .get(&Prehashed::new(k))
                        .map(|b| buckets[*b as usize].as_slice()),
                    None => None,
                }
            };
            match matches {
                Some(ids) => {
                    for &(pi, ri) in ids {
                        let m = &build_parts[pi as usize][ri as usize];
                        // Output layout is always (left ++ right).
                        let joined = match build {
                            BuildSide::Right => probe_row.concat(m),
                            BuildSide::Left => m.concat(probe_row),
                        };
                        out.push(joined);
                    }
                }
                None => {
                    if kind == JoinKind::LeftOuter {
                        out.push(probe_row.concat(&null_tail));
                    }
                }
            }
        }
        Ok(out)
    })?;
    Ok(replace_schema(result, schema.clone()))
}

/// A join key whose hash is computed exactly once, at construction. The
/// `Hash` impl just replays the stored 64-bit hash, so hash-map probes
/// never re-walk (or re-hash) the key values; equality still compares
/// the values to handle collisions.
struct Prehashed {
    hash: u64,
    key: Vec<Value>,
}

impl Prehashed {
    fn new(key: Vec<Value>) -> Prehashed {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        Prehashed {
            hash: h.finish(),
            key,
        }
    }
}

impl PartialEq for Prehashed {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.key == other.key
    }
}
impl Eq for Prehashed {}
impl std::hash::Hash for Prehashed {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Evaluate join keys; `None` when any key is NULL (no match in SQL).
fn eval_keys(keys: &[Expr], row: &Row) -> Result<Option<Vec<Value>>> {
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let v = k.eval(row)?;
        if v.is_null() {
            return Ok(None);
        }
        out.push(v);
    }
    Ok(Some(out))
}

// ---------------------------------------------------------------------------
// Distinct (two-phase, mirroring §2.1's distributed distinct)
// ---------------------------------------------------------------------------

fn execute_distinct(input: &PartitionedTable, ctx: &ExecContext) -> Result<PartitionedTable> {
    let n = input.num_partitions().max(1);

    // Phase 1: local distinct per partition, already bucketed by target
    // partition (hash of the whole row) for the exchange.
    let buckets: Vec<Vec<Vec<Row>>> = run_on_workers(input.num_partitions(), ctx, |p| {
        let mut seen: HashSet<&Row> = HashSet::new();
        let mut out: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
        for r in input.partition(p).iter() {
            if seen.insert(r) {
                // Bucket index is reduced mod n, which fits in usize.
                #[allow(clippy::cast_possible_truncation)]
                let bucket = row_hash(r) as usize % n;
                out[bucket].push(r.clone());
            }
        }
        Ok(out)
    })?;

    // Phase 2: merge each target bucket and dedupe globally.
    let parts = run_on_workers(n, ctx, |t| {
        let mut seen: HashSet<Row> = HashSet::new();
        let mut out = Vec::new();
        for b in &buckets {
            for r in &b[t] {
                if seen.insert(r.clone()) {
                    out.push(r.clone());
                }
            }
        }
        Ok(out)
    })?;

    let homes: Vec<String> = (0..n).map(|i| ctx.worker_node(i).to_string()).collect();
    Ok(PartitionedTable::from_shared(
        input.schema().clone(),
        parts.into_iter().map(Arc::new).collect(),
        homes,
    ))
}

fn row_hash(r: &Row) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    r.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Aggregation (parallel partials, sequential merge)
// ---------------------------------------------------------------------------

/// Accumulator state for one aggregate within one group.
#[derive(Debug, Clone)]
enum Accum {
    CountAll(i64),
    Count(i64),
    SumDouble(Option<f64>),
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    Distinct(HashSet<Value>),
}

impl Accum {
    fn update(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            Accum::CountAll(c) => *c += 1,
            Accum::Count(c) => {
                if matches!(&v, Some(x) if !x.is_null()) {
                    *c += 1;
                }
            }
            Accum::SumDouble(s) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        *s = Some(s.unwrap_or(0.0) + x.as_f64()?);
                    }
                }
            }
            Accum::Avg { sum, count } => {
                if let Some(x) = v {
                    if !x.is_null() {
                        *sum += x.as_f64()?;
                        *count += 1;
                    }
                }
            }
            Accum::Min(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|cur| x < *cur) {
                        *m = Some(x);
                    }
                }
            }
            Accum::Max(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|cur| x > *cur) {
                        *m = Some(x);
                    }
                }
            }
            Accum::Distinct(set) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        set.insert(x);
                    }
                }
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: Accum) -> Result<()> {
        match (self, other) {
            (Accum::CountAll(a), Accum::CountAll(b)) => *a += b,
            (Accum::Count(a), Accum::Count(b)) => *a += b,
            (Accum::SumDouble(a), Accum::SumDouble(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.unwrap_or(0.0) + bv);
                }
            }
            (Accum::Avg { sum, count }, Accum::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (Accum::Min(a), Accum::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|cur| bv < *cur) {
                        *a = Some(bv);
                    }
                }
            }
            (Accum::Max(a), Accum::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|cur| bv > *cur) {
                        *a = Some(bv);
                    }
                }
            }
            (Accum::Distinct(a), Accum::Distinct(b)) => a.extend(b),
            _ => {
                return Err(SqlmlError::Execution(
                    "mismatched accumulators in aggregate merge".into(),
                ))
            }
        }
        Ok(())
    }

    fn finalize(self, func: AggFunc) -> Value {
        match self {
            Accum::CountAll(c) | Accum::Count(c) => Value::Int(c),
            Accum::SumDouble(s) => s.map(Value::Double).unwrap_or(Value::Null),
            Accum::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / count as f64)
                }
            }
            Accum::Min(m) | Accum::Max(m) => m.unwrap_or(Value::Null),
            Accum::Distinct(set) => match func {
                AggFunc::Count => Value::Int(set.len() as i64),
                AggFunc::Sum => {
                    if set.is_empty() {
                        Value::Null
                    } else {
                        Value::Double(set.iter().filter_map(|v| v.as_f64().ok()).sum())
                    }
                }
                AggFunc::Avg => {
                    if set.is_empty() {
                        Value::Null
                    } else {
                        let s: f64 = set.iter().filter_map(|v| v.as_f64().ok()).sum();
                        Value::Double(s / set.len() as f64)
                    }
                }
                AggFunc::Min => set.into_iter().min().unwrap_or(Value::Null),
                AggFunc::Max => set.into_iter().max().unwrap_or(Value::Null),
            },
        }
    }
}

fn execute_aggregate(
    input: &PartitionedTable,
    group_exprs: &[Expr],
    aggs: &[AggExpr],
    ctx: &ExecContext,
) -> Result<Vec<Row>> {
    // Partial aggregation per partition, in parallel.
    type Groups = HashMap<Vec<Value>, Vec<Accum>>;
    let partials: Vec<Groups> = run_on_workers(input.num_partitions(), ctx, |p| {
        let mut groups: Groups = HashMap::new();
        for r in input.partition(p).iter() {
            let mut key = Vec::with_capacity(group_exprs.len());
            for g in group_exprs {
                key.push(g.eval(r)?);
            }
            let accums = groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(new_accum).collect());
            for (a, acc) in aggs.iter().zip(accums.iter_mut()) {
                let v = match &a.arg {
                    Some(e) => Some(e.eval(r)?),
                    None => None,
                };
                acc.update(v)?;
            }
        }
        Ok(groups)
    })?;

    // Merge partials.
    let mut merged: Groups = HashMap::new();
    for part in partials {
        for (k, accs) in part {
            match merged.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(accs) {
                        a.merge(b)?;
                    }
                }
            }
        }
    }

    // A global aggregate (no GROUP BY) over zero rows still yields a row.
    if merged.is_empty() && group_exprs.is_empty() {
        merged.insert(Vec::new(), aggs.iter().map(new_accum).collect());
    }

    let mut rows: Vec<Row> = merged
        .into_iter()
        .map(|(key, accs)| {
            let mut values = key;
            for (a, acc) in aggs.iter().zip(accs) {
                values.push(acc.finalize(a.func));
            }
            Row::new(values)
        })
        .collect();
    // Deterministic output order (grouped results are small).
    rows.sort();
    Ok(rows)
}

fn new_accum(a: &AggExpr) -> Accum {
    if a.distinct {
        return Accum::Distinct(HashSet::new());
    }
    match a.func {
        AggFunc::Count if a.arg.is_none() => Accum::CountAll(0),
        AggFunc::Count => Accum::Count(0),
        // SUM always accumulates (and reports) DOUBLE; see planner's
        // `agg_output_type`.
        AggFunc::Sum => Accum::SumDouble(None),
        AggFunc::Avg => Accum::Avg { sum: 0.0, count: 0 },
        AggFunc::Min => Accum::Min(None),
        AggFunc::Max => Accum::Max(None),
    }
}
