//! Parallel plan execution.
//!
//! Plans execute partition-at-a-time across a pool of worker threads: the
//! engine's "SQL workers". Worker `w` processes partitions `w, w+W, …` of
//! every operator, so a table UDF invoked over an `n`-partition table runs
//! `n` parallel instances spread over `W` workers — exactly the execution
//! model the paper's In-SQL transformations and streaming-transfer UDF
//! rely on.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use sqlml_common::{Result, Row, SqlmlError, Value};

use crate::ast::{AggFunc, JoinKind};
use crate::expr::Expr;
use crate::plan::{AggExpr, BuildSide, Plan};
use crate::table::PartitionedTable;
use crate::udf::PartitionCtx;

/// Execution environment: worker pool size and the cluster node names the
/// workers live on (worker `w` is on `nodes[w % nodes.len()]`).
#[derive(Debug, Clone)]
pub struct ExecContext {
    pub num_workers: usize,
    pub nodes: Vec<String>,
}

impl ExecContext {
    pub fn new(num_workers: usize, nodes: Vec<String>) -> Self {
        assert!(num_workers > 0);
        let nodes = if nodes.is_empty() {
            (0..num_workers).map(sqlml_dfs::node_name).collect()
        } else {
            nodes
        };
        ExecContext { num_workers, nodes }
    }

    pub fn worker_node(&self, worker: usize) -> &str {
        &self.nodes[worker % self.nodes.len()]
    }
}

/// Execute a plan, producing a partitioned result.
pub fn execute(plan: &Plan, ctx: &ExecContext) -> Result<PartitionedTable> {
    match plan {
        Plan::Scan { table, .. } => Ok(PartitionedTable::from_shared(
            table.schema().clone(),
            table.partitions().to_vec(),
            table.homes().to_vec(),
        )),

        Plan::Filter { input, predicate } => {
            let child = execute(input, ctx)?;
            map_partitions(&child, ctx, |rows, _| {
                let mut out = Vec::new();
                for r in rows {
                    if predicate.eval_predicate(r)? {
                        out.push(r.clone());
                    }
                }
                Ok(out)
            })
        }

        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            let child = execute(input, ctx)?;
            let mapped = map_partitions(&child, ctx, |rows, _| {
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    let mut values = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        values.push(e.eval(r)?);
                    }
                    out.push(Row::new(values));
                }
                Ok(out)
            })?;
            Ok(replace_schema(mapped, schema.clone()))
        }

        Plan::TableUdfScan {
            udf,
            input,
            args,
            schema,
        } => {
            let child = execute(input, ctx)?;
            let input_schema = child.schema().clone();
            let mapped = map_partitions(&child, ctx, |rows, pctx| {
                udf.execute(rows, &input_schema, args, pctx)
            })?;
            Ok(replace_schema(mapped, schema.clone()))
        }

        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            build,
            schema,
        } => execute_join(
            left, right, left_keys, right_keys, *kind, *build, schema, ctx,
        ),

        Plan::Distinct { input } => {
            let child = execute(input, ctx)?;
            execute_distinct(&child, ctx)
        }

        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => {
            let child = execute(input, ctx)?;
            execute_aggregate(&child, group_exprs, aggs, ctx)
                .map(|rows| PartitionedTable::single(schema.clone(), rows))
        }

        Plan::Sort { input, keys } => {
            let child = execute(input, ctx)?;
            let mut rows = child.collect_rows();
            rows.sort_by(|a, b| {
                for (idx, desc) in keys {
                    let ord = a.get(*idx).cmp(b.get(*idx));
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(PartitionedTable::single(child.schema().clone(), rows))
        }

        Plan::Limit { input, n } => {
            let child = execute(input, ctx)?;
            let mut rows = Vec::with_capacity((*n).min(child.num_rows()));
            'outer: for p in child.partitions() {
                for r in p.iter() {
                    if rows.len() >= *n {
                        break 'outer;
                    }
                    rows.push(r.clone());
                }
            }
            Ok(PartitionedTable::single(child.schema().clone(), rows))
        }
    }
}

fn replace_schema(t: PartitionedTable, schema: sqlml_common::Schema) -> PartitionedTable {
    PartitionedTable::from_shared(schema, t.partitions().to_vec(), t.homes().to_vec())
}

/// Apply `f` to every partition in parallel across the worker pool,
/// preserving partition order and homes.
pub fn map_partitions<F>(
    input: &PartitionedTable,
    ctx: &ExecContext,
    f: F,
) -> Result<PartitionedTable>
where
    F: Fn(&[Row], &PartitionCtx) -> Result<Vec<Row>> + Sync,
{
    let n = input.num_partitions();
    let results = run_on_workers(n, ctx, |p| {
        let pctx = PartitionCtx {
            partition: p,
            num_partitions: n,
            worker: p % ctx.num_workers,
            num_workers: ctx.num_workers,
            node: input.home(p).to_string(),
        };
        f(input.partition(p), &pctx)
    })?;
    Ok(PartitionedTable::from_shared(
        input.schema().clone(),
        results.into_iter().map(Arc::new).collect(),
        input.homes().to_vec(),
    ))
}

/// Run a per-partition closure on the worker pool; returns outputs in
/// partition order. The whole call fails if any partition fails.
pub fn run_on_workers<T, F>(num_partitions: usize, ctx: &ExecContext, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    if num_partitions == 0 {
        return Ok(Vec::new());
    }
    let workers = ctx.num_workers.min(num_partitions);
    if workers == 1 {
        return (0..num_partitions).map(&f).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || -> Result<Vec<(usize, T)>> {
                    let mut out = Vec::new();
                    let mut p = w;
                    while p < num_partitions {
                        out.push((p, f(p)?));
                        p += workers;
                    }
                    Ok(out)
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..num_partitions).map(|_| None).collect();
        for h in handles {
            let chunk = h
                .join()
                .map_err(|_| SqlmlError::Execution("worker thread panicked".into()))??;
            for (p, v) in chunk {
                slots[p] = Some(v);
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all partitions produced"))
            .collect())
    })
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn execute_join(
    left: &Plan,
    right: &Plan,
    left_keys: &[Expr],
    right_keys: &[Expr],
    kind: JoinKind,
    build: BuildSide,
    schema: &sqlml_common::Schema,
    ctx: &ExecContext,
) -> Result<PartitionedTable> {
    let left_data = execute(left, ctx)?;
    let right_data = execute(right, ctx)?;

    let (build_data, probe_data, build_keys, probe_keys) = match build {
        BuildSide::Right => (&right_data, &left_data, right_keys, left_keys),
        BuildSide::Left => (&left_data, &right_data, left_keys, right_keys),
    };
    debug_assert!(
        kind == JoinKind::Inner || build == BuildSide::Right,
        "left-outer joins must build from the right side"
    );

    // Build phase: hash the (gathered/broadcast) build side.
    let mut table: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
    let mut cross_rows: Vec<Row> = Vec::new();
    let is_cross = build_keys.is_empty();
    for part in build_data.partitions() {
        for r in part.iter() {
            if is_cross {
                cross_rows.push(r.clone());
                continue;
            }
            // NULL keys never match, so they are simply not added.
            if let Some(k) = eval_keys(build_keys, r)? {
                table.entry(k).or_default().push(r.clone());
            }
        }
    }

    let right_width = right_data.schema().len();
    let null_tail = Row::new(vec![Value::Null; right_width]);

    let result = map_partitions(probe_data, ctx, |rows, _| {
        let mut out = Vec::new();
        for probe_row in rows {
            let matches: Option<&Vec<Row>> = if is_cross {
                if cross_rows.is_empty() {
                    None
                } else {
                    Some(&cross_rows)
                }
            } else {
                match eval_keys(probe_keys, probe_row)? {
                    Some(k) => table.get(&k),
                    None => None,
                }
            };
            match matches {
                Some(ms) => {
                    for m in ms {
                        // Output layout is always (left ++ right).
                        let joined = match build {
                            BuildSide::Right => probe_row.concat(m),
                            BuildSide::Left => m.concat(probe_row),
                        };
                        out.push(joined);
                    }
                }
                None => {
                    if kind == JoinKind::LeftOuter {
                        out.push(probe_row.concat(&null_tail));
                    }
                }
            }
        }
        Ok(out)
    })?;
    Ok(replace_schema(result, schema.clone()))
}

/// Evaluate join keys; `None` when any key is NULL (no match in SQL).
fn eval_keys(keys: &[Expr], row: &Row) -> Result<Option<Vec<Value>>> {
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let v = k.eval(row)?;
        if v.is_null() {
            return Ok(None);
        }
        out.push(v);
    }
    Ok(Some(out))
}

// ---------------------------------------------------------------------------
// Distinct (two-phase, mirroring §2.1's distributed distinct)
// ---------------------------------------------------------------------------

fn execute_distinct(input: &PartitionedTable, ctx: &ExecContext) -> Result<PartitionedTable> {
    let n = input.num_partitions().max(1);

    // Phase 1: local distinct per partition, already bucketed by target
    // partition (hash of the whole row) for the exchange.
    let buckets: Vec<Vec<Vec<Row>>> = run_on_workers(input.num_partitions(), ctx, |p| {
        let mut seen: HashSet<&Row> = HashSet::new();
        let mut out: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
        for r in input.partition(p).iter() {
            if seen.insert(r) {
                out[row_hash(r) as usize % n].push(r.clone());
            }
        }
        Ok(out)
    })?;

    // Phase 2: merge each target bucket and dedupe globally.
    let parts = run_on_workers(n, ctx, |t| {
        let mut seen: HashSet<Row> = HashSet::new();
        let mut out = Vec::new();
        for b in &buckets {
            for r in &b[t] {
                if seen.insert(r.clone()) {
                    out.push(r.clone());
                }
            }
        }
        Ok(out)
    })?;

    let homes: Vec<String> = (0..n).map(|i| ctx.worker_node(i).to_string()).collect();
    Ok(PartitionedTable::from_shared(
        input.schema().clone(),
        parts.into_iter().map(Arc::new).collect(),
        homes,
    ))
}

fn row_hash(r: &Row) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    r.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Aggregation (parallel partials, sequential merge)
// ---------------------------------------------------------------------------

/// Accumulator state for one aggregate within one group.
#[derive(Debug, Clone)]
enum Accum {
    CountAll(i64),
    Count(i64),
    SumDouble(Option<f64>),
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    Distinct(HashSet<Value>),
}

impl Accum {
    fn update(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            Accum::CountAll(c) => *c += 1,
            Accum::Count(c) => {
                if matches!(&v, Some(x) if !x.is_null()) {
                    *c += 1;
                }
            }
            Accum::SumDouble(s) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        *s = Some(s.unwrap_or(0.0) + x.as_f64()?);
                    }
                }
            }
            Accum::Avg { sum, count } => {
                if let Some(x) = v {
                    if !x.is_null() {
                        *sum += x.as_f64()?;
                        *count += 1;
                    }
                }
            }
            Accum::Min(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|cur| x < *cur) {
                        *m = Some(x);
                    }
                }
            }
            Accum::Max(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|cur| x > *cur) {
                        *m = Some(x);
                    }
                }
            }
            Accum::Distinct(set) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        set.insert(x);
                    }
                }
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: Accum) -> Result<()> {
        match (self, other) {
            (Accum::CountAll(a), Accum::CountAll(b)) => *a += b,
            (Accum::Count(a), Accum::Count(b)) => *a += b,
            (Accum::SumDouble(a), Accum::SumDouble(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.unwrap_or(0.0) + bv);
                }
            }
            (Accum::Avg { sum, count }, Accum::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (Accum::Min(a), Accum::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|cur| bv < *cur) {
                        *a = Some(bv);
                    }
                }
            }
            (Accum::Max(a), Accum::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|cur| bv > *cur) {
                        *a = Some(bv);
                    }
                }
            }
            (Accum::Distinct(a), Accum::Distinct(b)) => a.extend(b),
            _ => {
                return Err(SqlmlError::Execution(
                    "mismatched accumulators in aggregate merge".into(),
                ))
            }
        }
        Ok(())
    }

    fn finalize(self, func: AggFunc) -> Value {
        match self {
            Accum::CountAll(c) | Accum::Count(c) => Value::Int(c),
            Accum::SumDouble(s) => s.map(Value::Double).unwrap_or(Value::Null),
            Accum::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / count as f64)
                }
            }
            Accum::Min(m) | Accum::Max(m) => m.unwrap_or(Value::Null),
            Accum::Distinct(set) => match func {
                AggFunc::Count => Value::Int(set.len() as i64),
                AggFunc::Sum => {
                    if set.is_empty() {
                        Value::Null
                    } else {
                        Value::Double(set.iter().filter_map(|v| v.as_f64().ok()).sum())
                    }
                }
                AggFunc::Avg => {
                    if set.is_empty() {
                        Value::Null
                    } else {
                        let s: f64 = set.iter().filter_map(|v| v.as_f64().ok()).sum();
                        Value::Double(s / set.len() as f64)
                    }
                }
                AggFunc::Min => set.into_iter().min().unwrap_or(Value::Null),
                AggFunc::Max => set.into_iter().max().unwrap_or(Value::Null),
            },
        }
    }
}

fn execute_aggregate(
    input: &PartitionedTable,
    group_exprs: &[Expr],
    aggs: &[AggExpr],
    ctx: &ExecContext,
) -> Result<Vec<Row>> {
    // Partial aggregation per partition, in parallel.
    type Groups = HashMap<Vec<Value>, Vec<Accum>>;
    let partials: Vec<Groups> = run_on_workers(input.num_partitions(), ctx, |p| {
        let mut groups: Groups = HashMap::new();
        for r in input.partition(p).iter() {
            let mut key = Vec::with_capacity(group_exprs.len());
            for g in group_exprs {
                key.push(g.eval(r)?);
            }
            let accums = groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(new_accum).collect());
            for (a, acc) in aggs.iter().zip(accums.iter_mut()) {
                let v = match &a.arg {
                    Some(e) => Some(e.eval(r)?),
                    None => None,
                };
                acc.update(v)?;
            }
        }
        Ok(groups)
    })?;

    // Merge partials.
    let mut merged: Groups = HashMap::new();
    for part in partials {
        for (k, accs) in part {
            match merged.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(accs) {
                        a.merge(b)?;
                    }
                }
            }
        }
    }

    // A global aggregate (no GROUP BY) over zero rows still yields a row.
    if merged.is_empty() && group_exprs.is_empty() {
        merged.insert(Vec::new(), aggs.iter().map(new_accum).collect());
    }

    let mut rows: Vec<Row> = merged
        .into_iter()
        .map(|(key, accs)| {
            let mut values = key;
            for (a, acc) in aggs.iter().zip(accs) {
                values.push(acc.finalize(a.func));
            }
            Row::new(values)
        })
        .collect();
    // Deterministic output order (grouped results are small).
    rows.sort();
    Ok(rows)
}

fn new_accum(a: &AggExpr) -> Accum {
    if a.distinct {
        return Accum::Distinct(HashSet::new());
    }
    match a.func {
        AggFunc::Count if a.arg.is_none() => Accum::CountAll(0),
        AggFunc::Count => Accum::Count(0),
        // SUM always accumulates (and reports) DOUBLE; see planner's
        // `agg_output_type`.
        AggFunc::Sum => Accum::SumDouble(None),
        AggFunc::Avg => Accum::Avg { sum: 0.0, count: 0 },
        AggFunc::Min => Accum::Min(None),
        AggFunc::Max => Accum::Max(None),
    }
}
