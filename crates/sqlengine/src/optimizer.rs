//! Plan optimization.
//!
//! Predicate pushdown happens at plan time (the planner pushes
//! single-relation conjuncts below joins); this pass handles what needs
//! whole-plan statistics:
//!
//! * **broadcast-side selection** — each hash join builds its table from
//!   the estimated-smaller input (the paper's prep query joins a billion-
//!   row fact table with a much smaller dimension table; broadcasting the
//!   small side is what an MPP engine does);
//! * removal of literal-`TRUE` filters and zero-limit shortcuts;
//! * **operator fusion** — chains of `Filter`/`Project`/`TableUdfScan`
//!   collapse into one [`Plan::Fused`] node that the executor runs as a
//!   single `map_partitions` pass, so the intermediate per-partition
//!   `Vec<Row>`s between those operators never materialize.

use sqlml_common::Value;

use crate::ast::JoinKind;
use crate::expr::Expr;
use crate::plan::{BuildSide, FusedStage, Plan};

/// Optimize a plan tree (consuming it): rule-based rewrites, then fusion.
pub fn optimize(plan: Plan) -> Plan {
    fuse(optimize_unfused(plan))
}

/// The rule-based rewrites without the fusion pass. Retained as a public
/// entry point so differential tests can run the row-at-a-time reference
/// executor against the fused one.
pub fn optimize_unfused(plan: Plan) -> Plan {
    match plan {
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            schema,
            ..
        } => {
            let left = Box::new(optimize_unfused(*left));
            let right = Box::new(optimize_unfused(*right));
            // A left-outer probe must stream the left side so unmatched
            // left rows can be emitted; only inner joins may flip.
            let build = if kind == JoinKind::Inner && left.estimated_rows() < right.estimated_rows()
            {
                BuildSide::Left
            } else {
                BuildSide::Right
            };
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                build,
                schema,
            }
        }
        Plan::Filter { input, predicate } => {
            let input = Box::new(optimize_unfused(*input));
            if matches!(predicate, Expr::Lit(Value::Bool(true))) {
                *input
            } else {
                Plan::Filter { input, predicate }
            }
        }
        Plan::TableUdfScan {
            udf,
            input,
            args,
            schema,
        } => Plan::TableUdfScan {
            udf,
            input: Box::new(optimize_unfused(*input)),
            args,
            schema,
        },
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(optimize_unfused(*input)),
            exprs,
            schema,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(optimize_unfused(*input)),
        },
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => Plan::Aggregate {
            input: Box::new(optimize_unfused(*input)),
            group_exprs,
            aggs,
            schema,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(optimize_unfused(*input)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(optimize_unfused(*input)),
            n,
        },
        leaf @ Plan::Scan { .. } => leaf,
        // Fusion only ever runs after this pass, so Fused nodes cannot
        // appear here; recurse defensively anyway.
        Plan::Fused {
            input,
            stages,
            schema,
        } => Plan::Fused {
            input: Box::new(optimize_unfused(*input)),
            stages,
            schema,
        },
    }
}

/// Fusion pass: collapse maximal `Filter`/`Project`/`TableUdfScan`
/// chains into [`Plan::Fused`] nodes. Single-operator "chains" are left
/// as plain nodes — fusing them buys nothing and keeps EXPLAIN output
/// familiar.
fn fuse(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { .. } | Plan::Project { .. } | Plan::TableUdfScan { .. } => {
            let schema = plan.schema();
            // Walk down the fusible spine collecting stages
            // top-down (reverse execution order).
            let mut rev_stages: Vec<FusedStage> = Vec::new();
            let mut cur = plan;
            let tail = loop {
                match cur {
                    Plan::Filter { input, predicate } => {
                        rev_stages.push(FusedStage::Filter(predicate));
                        cur = *input;
                    }
                    Plan::Project { input, exprs, .. } => {
                        rev_stages.push(FusedStage::Project { exprs });
                        cur = *input;
                    }
                    Plan::TableUdfScan {
                        udf, input, args, ..
                    } => {
                        rev_stages.push(FusedStage::Udf {
                            udf,
                            args,
                            input_schema: input.schema(),
                        });
                        cur = *input;
                    }
                    other => break other,
                }
            };
            let input = Box::new(fuse(tail));
            if rev_stages.len() == 1 {
                // Rebuild the plain single-operator node.
                if let Some(stage) = rev_stages.pop() {
                    return match stage {
                        FusedStage::Filter(predicate) => Plan::Filter { input, predicate },
                        FusedStage::Project { exprs } => Plan::Project {
                            input,
                            exprs,
                            schema,
                        },
                        FusedStage::Udf { udf, args, .. } => Plan::TableUdfScan {
                            udf,
                            input,
                            args,
                            schema,
                        },
                    };
                }
            }
            rev_stages.reverse();
            Plan::Fused {
                input,
                stages: rev_stages,
                schema,
            }
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            build,
            schema,
        } => Plan::HashJoin {
            left: Box::new(fuse(*left)),
            right: Box::new(fuse(*right)),
            left_keys,
            right_keys,
            kind,
            build,
            schema,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(fuse(*input)),
        },
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => Plan::Aggregate {
            input: Box::new(fuse(*input)),
            group_exprs,
            aggs,
            schema,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(fuse(*input)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(fuse(*input)),
            n,
        },
        leaf @ Plan::Scan { .. } => leaf,
        already @ Plan::Fused { .. } => already,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};
    use sqlml_common::Schema;

    use crate::table::PartitionedTable;

    fn scan(rows: usize) -> Plan {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let data: Vec<_> = (0..rows).map(|i| row![i as i64]).collect();
        Plan::Scan {
            name: format!("t{rows}"),
            table: Arc::new(PartitionedTable::single(schema, data)),
        }
    }

    fn join(kind: JoinKind, left: Plan, right: Plan) -> Plan {
        let schema = left.schema().join(&right.schema());
        Plan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_keys: vec![Expr::Col(0)],
            right_keys: vec![Expr::Col(0)],
            kind,
            build: BuildSide::Right,
            schema,
        }
    }

    #[test]
    fn inner_join_builds_from_smaller_side() {
        let p = optimize(join(JoinKind::Inner, scan(10), scan(1000)));
        match p {
            Plan::HashJoin { build, .. } => assert_eq!(build, BuildSide::Left),
            other => panic!("{other:?}"),
        }
        let p = optimize(join(JoinKind::Inner, scan(1000), scan(10)));
        match p {
            Plan::HashJoin { build, .. } => assert_eq!(build, BuildSide::Right),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn left_outer_never_builds_from_left() {
        let p = optimize(join(JoinKind::LeftOuter, scan(10), scan(1000)));
        match p {
            Plan::HashJoin { build, .. } => assert_eq!(build, BuildSide::Right),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn true_filter_is_removed() {
        let p = optimize(Plan::Filter {
            input: Box::new(scan(5)),
            predicate: Expr::Lit(Value::Bool(true)),
        });
        assert!(matches!(p, Plan::Scan { .. }));
    }

    #[test]
    fn real_filter_is_kept() {
        let p = optimize(Plan::Filter {
            input: Box::new(scan(5)),
            predicate: Expr::Lit(Value::Bool(false)),
        });
        assert!(matches!(p, Plan::Filter { .. }));
    }

    #[test]
    fn filter_project_chain_fuses_in_execution_order() {
        let inner = Plan::Filter {
            input: Box::new(scan(100)),
            predicate: Expr::Lit(Value::Bool(false)),
        };
        let project = Plan::Project {
            schema: inner.schema(),
            input: Box::new(inner),
            exprs: vec![Expr::Col(0)],
        };
        let outer = Plan::Filter {
            input: Box::new(project),
            predicate: Expr::Lit(Value::Bool(false)),
        };
        let p = optimize(outer);
        match p {
            Plan::Fused { stages, input, .. } => {
                assert_eq!(stages.len(), 3);
                assert!(matches!(stages[0], FusedStage::Filter(_)));
                assert!(matches!(stages[1], FusedStage::Project { .. }));
                assert!(matches!(stages[2], FusedStage::Filter(_)));
                assert!(matches!(*input, Plan::Scan { .. }));
            }
            other => panic!("expected Fused, got {other:?}"),
        }
    }

    #[test]
    fn single_operator_is_not_wrapped_in_fused() {
        let p = optimize(Plan::Project {
            schema: scan(5).schema(),
            input: Box::new(scan(5)),
            exprs: vec![Expr::Col(0)],
        });
        assert!(matches!(p, Plan::Project { .. }));
    }

    #[test]
    fn fusion_stops_at_pipeline_breakers() {
        // Filter over Distinct over Filter: only chains on either side of
        // the Distinct may fuse; with one operator each, none do.
        let p = optimize(Plan::Filter {
            input: Box::new(Plan::Distinct {
                input: Box::new(Plan::Filter {
                    input: Box::new(scan(50)),
                    predicate: Expr::Lit(Value::Bool(false)),
                }),
            }),
            predicate: Expr::Lit(Value::Bool(false)),
        });
        match p {
            Plan::Filter { input, .. } => assert!(matches!(*input, Plan::Distinct { .. })),
            other => panic!("expected Filter over Distinct, got {other:?}"),
        }
    }

    #[test]
    fn fused_estimate_shrinks_per_filter_stage() {
        let inner = Plan::Filter {
            input: Box::new(scan(160)),
            predicate: Expr::Lit(Value::Bool(false)),
        };
        let outer = Plan::Filter {
            input: Box::new(inner),
            predicate: Expr::Lit(Value::Bool(false)),
        };
        let p = optimize(outer);
        assert_eq!(p.estimated_rows(), 10); // 160 / 4 / 4
    }
}
