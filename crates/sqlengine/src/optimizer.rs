//! Plan optimization.
//!
//! Predicate pushdown happens at plan time (the planner pushes
//! single-relation conjuncts below joins); this pass handles what needs
//! whole-plan statistics:
//!
//! * **broadcast-side selection** — each hash join builds its table from
//!   the estimated-smaller input (the paper's prep query joins a billion-
//!   row fact table with a much smaller dimension table; broadcasting the
//!   small side is what an MPP engine does);
//! * removal of literal-`TRUE` filters and zero-limit shortcuts.

use sqlml_common::Value;

use crate::ast::JoinKind;
use crate::expr::Expr;
use crate::plan::{BuildSide, Plan};

/// Optimize a plan tree (consuming it).
pub fn optimize(plan: Plan) -> Plan {
    match plan {
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            schema,
            ..
        } => {
            let left = Box::new(optimize(*left));
            let right = Box::new(optimize(*right));
            // A left-outer probe must stream the left side so unmatched
            // left rows can be emitted; only inner joins may flip.
            let build = if kind == JoinKind::Inner && left.estimated_rows() < right.estimated_rows()
            {
                BuildSide::Left
            } else {
                BuildSide::Right
            };
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                build,
                schema,
            }
        }
        Plan::Filter { input, predicate } => {
            let input = Box::new(optimize(*input));
            if matches!(predicate, Expr::Lit(Value::Bool(true))) {
                *input
            } else {
                Plan::Filter { input, predicate }
            }
        }
        Plan::TableUdfScan {
            udf,
            input,
            args,
            schema,
        } => Plan::TableUdfScan {
            udf,
            input: Box::new(optimize(*input)),
            args,
            schema,
        },
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(optimize(*input)),
            exprs,
            schema,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(optimize(*input)),
        },
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => Plan::Aggregate {
            input: Box::new(optimize(*input)),
            group_exprs,
            aggs,
            schema,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(optimize(*input)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(optimize(*input)),
            n,
        },
        leaf @ Plan::Scan { .. } => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};
    use sqlml_common::Schema;

    use crate::table::PartitionedTable;

    fn scan(rows: usize) -> Plan {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let data: Vec<_> = (0..rows).map(|i| row![i as i64]).collect();
        Plan::Scan {
            name: format!("t{rows}"),
            table: Arc::new(PartitionedTable::single(schema, data)),
        }
    }

    fn join(kind: JoinKind, left: Plan, right: Plan) -> Plan {
        let schema = left.schema().join(&right.schema());
        Plan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_keys: vec![Expr::Col(0)],
            right_keys: vec![Expr::Col(0)],
            kind,
            build: BuildSide::Right,
            schema,
        }
    }

    #[test]
    fn inner_join_builds_from_smaller_side() {
        let p = optimize(join(JoinKind::Inner, scan(10), scan(1000)));
        match p {
            Plan::HashJoin { build, .. } => assert_eq!(build, BuildSide::Left),
            other => panic!("{other:?}"),
        }
        let p = optimize(join(JoinKind::Inner, scan(1000), scan(10)));
        match p {
            Plan::HashJoin { build, .. } => assert_eq!(build, BuildSide::Right),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn left_outer_never_builds_from_left() {
        let p = optimize(join(JoinKind::LeftOuter, scan(10), scan(1000)));
        match p {
            Plan::HashJoin { build, .. } => assert_eq!(build, BuildSide::Right),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn true_filter_is_removed() {
        let p = optimize(Plan::Filter {
            input: Box::new(scan(5)),
            predicate: Expr::Lit(Value::Bool(true)),
        });
        assert!(matches!(p, Plan::Scan { .. }));
    }

    #[test]
    fn real_filter_is_kept() {
        let p = optimize(Plan::Filter {
            input: Box::new(scan(5)),
            predicate: Expr::Lit(Value::Bool(false)),
        });
        assert!(matches!(p, Plan::Filter { .. }));
    }
}
