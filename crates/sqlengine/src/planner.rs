//! The planner: name resolution and logical-plan construction.
//!
//! Responsibilities:
//!
//! * bind FROM items (tables and `TABLE(udf(...))` invocations) against
//!   the catalog;
//! * extract equi-join conditions from the WHERE clause (comma joins, the
//!   style the paper's example queries use) and from explicit `JOIN ... ON`
//!   clauses, building a left-deep join tree;
//! * push single-relation predicates below the joins they don't involve;
//! * plan GROUP BY / aggregates / HAVING, DISTINCT, ORDER BY and LIMIT;
//! * infer output schemas, propagating the `categorical` flag so the
//!   In-SQL transformation layer knows which result columns to recode.

use std::collections::HashSet;
use std::sync::Arc;

use sqlml_common::schema::{DataType, Field};
use sqlml_common::{Result, Schema, SqlmlError};

use crate::ast::*;
use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::plan::{AggExpr, BuildSide, Plan};
use crate::table::PartitionedTable;

/// One relation bound in the query scope.
struct ScopeItem {
    binding: String,
    schema: Schema,
}

/// The flat scope of a FROM clause: relations in join order; a column's
/// flat index is its relation offset plus its position.
struct Scope {
    items: Vec<ScopeItem>,
}

impl Scope {
    fn offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.items.len());
        let mut acc = 0;
        for it in &self.items {
            out.push(acc);
            acc += it.schema.len();
        }
        out
    }

    /// Resolve `[qualifier.]name` to (relation index, flat column index,
    /// field).
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, usize, Field)> {
        let offsets = self.offsets();
        let mut found: Option<(usize, usize, Field)> = None;
        for (ri, it) in self.items.iter().enumerate() {
            if let Some(q) = qualifier {
                if !it.binding.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Ok(ci) = it.schema.index_of(name) {
                let hit = (ri, offsets[ri] + ci, it.schema.field(ci).clone());
                if found.is_some() {
                    return Err(SqlmlError::Plan(format!(
                        "ambiguous column {name:?}; qualify it with a table alias"
                    )));
                }
                found = Some(hit);
                // With a qualifier the binding is unique; stop early.
                if qualifier.is_some() {
                    break;
                }
            } else if qualifier.is_some_and(|q| it.binding.eq_ignore_ascii_case(q)) {
                return Err(SqlmlError::Plan(format!(
                    "relation {qualifier:?} has no column {name:?}"
                )));
            }
        }
        found.ok_or_else(|| {
            let q = qualifier.map(|q| format!("{q}.")).unwrap_or_default();
            SqlmlError::Plan(format!("unknown column {q}{name}"))
        })
    }

    /// The set of relation indices an expression references.
    fn relations_of(&self, e: &AstExpr) -> Result<HashSet<usize>> {
        let mut rels = HashSet::new();
        for (q, n) in e.column_refs() {
            rels.insert(self.resolve(q, n)?.0);
        }
        Ok(rels)
    }
}

/// Plan a SELECT statement against a catalog.
pub fn plan_select(stmt: &SelectStmt, catalog: &Catalog) -> Result<Plan> {
    Planner { catalog }.plan(stmt)
}

struct Planner<'a> {
    catalog: &'a Catalog,
}

/// A WHERE/ON conjunct waiting to be applied to the join tree.
struct PendingPredicate {
    expr: AstExpr,
    rels: HashSet<usize>,
}

impl<'a> Planner<'a> {
    fn plan(&self, stmt: &SelectStmt) -> Result<Plan> {
        // ---- 1. Bind FROM items --------------------------------------
        let mut rel_plans: Vec<Plan> = Vec::new();
        let mut scope = Scope { items: Vec::new() };
        let bind = |scope: &mut Scope, t: &TableRef| -> Result<Plan> {
            let plan = self.plan_table_ref(t)?;
            let binding = t
                .binding()
                .ok_or_else(|| SqlmlError::Plan("table function in FROM requires an alias".into()))?
                .to_string();
            if scope
                .items
                .iter()
                .any(|it| it.binding.eq_ignore_ascii_case(&binding))
            {
                return Err(SqlmlError::Plan(format!(
                    "duplicate table binding {binding:?}"
                )));
            }
            scope.items.push(ScopeItem {
                binding,
                schema: plan.schema(),
            });
            Ok(plan)
        };
        for t in &stmt.from {
            let p = bind(&mut scope, t)?;
            rel_plans.push(p);
        }
        let num_from = rel_plans.len();
        for j in &stmt.joins {
            let p = bind(&mut scope, &j.table)?;
            rel_plans.push(p);
        }

        // ---- 2. Classify WHERE conjuncts ------------------------------
        let mut pending: Vec<PendingPredicate> = Vec::new();
        if let Some(sel) = &stmt.selection {
            if sel.has_aggregate() {
                return Err(SqlmlError::Plan(
                    "aggregates are not allowed in WHERE".into(),
                ));
            }
            for c in sel.conjuncts() {
                let rels = scope.relations_of(c)?;
                pending.push(PendingPredicate {
                    expr: c.clone(),
                    rels,
                });
            }
        }

        // Single-relation predicates are pushed onto their relation's
        // base plan before any join.
        for p in std::mem::take(&mut pending) {
            if p.rels.len() <= 1 {
                let ri = p.rels.iter().next().copied().unwrap_or(0);
                let local_scope = Scope {
                    items: vec![ScopeItem {
                        binding: scope.items[ri].binding.clone(),
                        schema: scope.items[ri].schema.clone(),
                    }],
                };
                let predicate = resolve_expr(&p.expr, &local_scope, self.catalog)?;
                let input = std::mem::replace(
                    &mut rel_plans[ri],
                    Plan::Limit {
                        input: Box::new(Plan::Scan {
                            name: String::new(),
                            table: Arc::new(PartitionedTable::single(Schema::empty(), vec![])),
                        }),
                        n: 0,
                    },
                );
                rel_plans[ri] = Plan::Filter {
                    input: Box::new(input),
                    predicate,
                };
            } else {
                pending.push(p);
            }
        }

        // ---- 3. Build the join tree (left-deep, FROM order) -----------
        let mut rel_iter = rel_plans.into_iter();
        let mut tree = rel_iter.next().ok_or_else(|| {
            SqlmlError::Plan("FROM clause must reference at least one table".into())
        })?;
        let mut joined: HashSet<usize> = HashSet::from([0]);

        for (k, next_plan) in rel_iter.enumerate() {
            let k = k + 1; // relation index
            let explicit = if k >= num_from {
                Some(&stmt.joins[k - num_from])
            } else {
                None
            };

            // Gather candidate equi-join conjuncts for this step.
            let mut on_conjuncts: Vec<PendingPredicate> = Vec::new();
            if let Some(j) = explicit {
                for c in j.on.conjuncts() {
                    let rels = scope.relations_of(c)?;
                    on_conjuncts.push(PendingPredicate {
                        expr: c.clone(),
                        rels,
                    });
                }
            }
            // WHERE conjuncts that connect the joined set to relation k.
            let mut rest = Vec::new();
            for p in pending {
                if p.rels.contains(&k) && p.rels.iter().all(|r| *r == k || joined.contains(r)) {
                    on_conjuncts.push(p);
                } else {
                    rest.push(p);
                }
            }
            pending = rest;

            let kind = explicit.map(|j| j.kind).unwrap_or(JoinKind::Inner);
            let (keys, residual) = self.split_equi_keys(on_conjuncts, &scope, &joined, k)?;
            if kind == JoinKind::LeftOuter && !residual.is_empty() {
                return Err(SqlmlError::Plan(
                    "LEFT JOIN supports only equality conditions in ON".into(),
                ));
            }

            let left_schema = tree.schema();
            let right_schema = next_plan.schema();
            let schema = left_schema.join(&right_schema);
            let (left_keys, right_keys) = keys.into_iter().unzip();
            tree = Plan::HashJoin {
                left: Box::new(tree),
                right: Box::new(next_plan),
                left_keys,
                right_keys,
                kind,
                build: BuildSide::Right,
                schema,
            };
            joined.insert(k);

            // Residual multi-relation predicates now resolvable: filter.
            if !residual.is_empty() {
                let joined_scope = self.sub_scope(&scope, &joined);
                let pred = AstExpr::conjoin(residual.into_iter().map(|p| p.expr).collect())
                    .ok_or_else(|| {
                        SqlmlError::Plan("residual join predicate list was empty".into())
                    })?;
                let predicate = resolve_expr(&pred, &joined_scope, self.catalog)?;
                tree = Plan::Filter {
                    input: Box::new(tree),
                    predicate,
                };
            }
        }

        if let Some(p) = pending.into_iter().next() {
            return Err(SqlmlError::Plan(format!(
                "predicate references unjoined relations: {:?}",
                p.expr
            )));
        }

        // ---- 4. Projection / aggregation ------------------------------
        let items = expand_projection(&stmt.projection, &scope)?;
        let needs_agg = !stmt.group_by.is_empty()
            || items.iter().any(|(e, _)| e.has_aggregate())
            || stmt.having.as_ref().is_some_and(|h| h.has_aggregate());

        let mut plan = if needs_agg {
            self.plan_aggregate(tree, &scope, &items, stmt)?
        } else {
            if stmt.having.is_some() {
                return Err(SqlmlError::Plan(
                    "HAVING requires GROUP BY or aggregates".into(),
                ));
            }
            let mut exprs = Vec::with_capacity(items.len());
            let mut fields = Vec::with_capacity(items.len());
            for (ast, name) in &items {
                let e = resolve_expr(ast, &scope, self.catalog)?;
                let mut field = infer_field(ast, &scope, self.catalog)?;
                field.name = name.clone();
                exprs.push(e);
                fields.push(field);
            }
            Plan::Project {
                input: Box::new(tree),
                exprs,
                schema: Schema::new(fields),
            }
        };

        // ---- 5. DISTINCT / ORDER BY / LIMIT ---------------------------
        if stmt.distinct {
            plan = Plan::Distinct {
                input: Box::new(plan),
            };
        }
        if !stmt.order_by.is_empty() {
            let out_schema = plan.schema();
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for item in &stmt.order_by {
                let idx = match &item.expr {
                    AstExpr::Column {
                        qualifier: None,
                        name,
                    } => out_schema.index_of(name)?,
                    other => {
                        return Err(SqlmlError::Plan(format!(
                            "ORDER BY must name an output column, got {other:?}"
                        )))
                    }
                };
                keys.push((idx, item.desc));
            }
            plan = Plan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        if let Some(n) = stmt.limit {
            plan = Plan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    fn plan_table_ref(&self, t: &TableRef) -> Result<Plan> {
        match t {
            TableRef::Named { name, .. } => Ok(Plan::Scan {
                name: name.clone(),
                table: self.catalog.table(name)?,
            }),
            TableRef::TableFunction { udf, args, .. } => {
                let udf = self.catalog.table_udf(udf)?;
                let mut input: Option<Plan> = None;
                let mut literals = Vec::new();
                for a in args {
                    match a {
                        TableFuncArg::Table(tname) => {
                            if input.is_some() {
                                return Err(SqlmlError::Plan(format!(
                                    "table UDF {} takes at most one table argument",
                                    udf.name()
                                )));
                            }
                            input = Some(Plan::Scan {
                                name: tname.clone(),
                                table: self.catalog.table(tname)?,
                            });
                        }
                        TableFuncArg::Literal(v) => literals.push(v.clone()),
                    }
                }
                let input = input.unwrap_or_else(|| Plan::Scan {
                    name: "<empty>".into(),
                    table: Arc::new(PartitionedTable::single(Schema::empty(), vec![])),
                });
                let schema = udf.output_schema(&input.schema(), &literals)?;
                Ok(Plan::TableUdfScan {
                    udf,
                    input: Box::new(input),
                    args: literals,
                    schema,
                })
            }
        }
    }

    /// Extract `col = col` conjuncts connecting the joined set with the new
    /// relation; everything else is residual.
    #[allow(clippy::type_complexity)]
    fn split_equi_keys(
        &self,
        conjuncts: Vec<PendingPredicate>,
        scope: &Scope,
        joined: &HashSet<usize>,
        new_rel: usize,
    ) -> Result<(Vec<(Expr, Expr)>, Vec<PendingPredicate>)> {
        let offsets = scope.offsets();
        let left_scope_len: usize = joined.iter().map(|r| scope.items[*r].schema.len()).sum();
        // Flat index within the *tree so far* for a column of relation r:
        // relations are joined in index order, so the offset is the sum of
        // schema lengths of lower-indexed joined relations.
        let tree_offset = |r: usize| -> usize {
            scope
                .items
                .iter()
                .enumerate()
                .take(r)
                .filter(|(i, _)| joined.contains(i))
                .map(|(_, it)| it.schema.len())
                .sum()
        };
        let _ = offsets;
        let mut keys = Vec::new();
        let mut residual = Vec::new();
        for p in conjuncts {
            let equi = match &p.expr {
                AstExpr::Cmp {
                    op: CmpOp::Eq,
                    left,
                    right,
                } => match (left.as_ref(), right.as_ref()) {
                    (
                        AstExpr::Column {
                            qualifier: ql,
                            name: nl,
                        },
                        AstExpr::Column {
                            qualifier: qr,
                            name: nr,
                        },
                    ) => {
                        let (rl, _, fl) = scope.resolve(ql.as_deref(), nl)?;
                        let (rr, _, fr) = scope.resolve(qr.as_deref(), nr)?;
                        let li = scope.items[rl].schema.index_of(nl)?;
                        let ri = scope.items[rr].schema.index_of(nr)?;
                        let _ = (fl, fr);
                        if joined.contains(&rl) && rr == new_rel {
                            Some((tree_offset(rl) + li, ri))
                        } else if joined.contains(&rr) && rl == new_rel {
                            Some((tree_offset(rr) + ri, li))
                        } else {
                            None
                        }
                    }
                    _ => None,
                },
                _ => None,
            };
            match equi {
                Some((l, r)) => {
                    debug_assert!(l < left_scope_len);
                    keys.push((Expr::Col(l), Expr::Col(r)));
                }
                None => residual.push(p),
            }
        }
        Ok((keys, residual))
    }

    /// Scope restricted to the joined relations, preserving index order —
    /// matches the layout of the current join tree.
    fn sub_scope(&self, scope: &Scope, joined: &HashSet<usize>) -> Scope {
        Scope {
            items: scope
                .items
                .iter()
                .enumerate()
                .filter(|(i, _)| joined.contains(i))
                .map(|(_, it)| ScopeItem {
                    binding: it.binding.clone(),
                    schema: it.schema.clone(),
                })
                .collect(),
        }
    }

    /// Plan GROUP BY + aggregates + HAVING + final projection.
    fn plan_aggregate(
        &self,
        input: Plan,
        scope: &Scope,
        items: &[(AstExpr, String)],
        stmt: &SelectStmt,
    ) -> Result<Plan> {
        // Resolve group expressions against the join output.
        let mut group_exprs = Vec::new();
        let mut group_fields = Vec::new();
        for g in &stmt.group_by {
            group_exprs.push(resolve_expr(g, scope, self.catalog)?);
            group_fields.push(infer_field(g, scope, self.catalog)?);
        }

        // Collect aggregate calls (deduplicated by shape).
        let mut agg_calls: Vec<AstExpr> = Vec::new();
        let mut collect = |e: &AstExpr| collect_aggs(e, &mut agg_calls);
        for (e, _) in items {
            collect(e);
        }
        if let Some(h) = &stmt.having {
            collect_aggs(h, &mut agg_calls);
        }

        let mut aggs = Vec::new();
        let mut agg_fields = Vec::new();
        for (i, call) in agg_calls.iter().enumerate() {
            let AstExpr::Agg {
                func,
                arg,
                distinct,
            } = call
            else {
                unreachable!("collect_aggs only returns Agg nodes")
            };
            let resolved_arg = match arg {
                Some(a) => Some(resolve_expr(a, scope, self.catalog)?),
                None => None,
            };
            let ty = agg_output_type(*func, arg.as_deref(), scope, self.catalog)?;
            aggs.push(AggExpr {
                func: *func,
                arg: resolved_arg,
                distinct: *distinct,
            });
            agg_fields.push(Field::new(format!("__agg{i}"), ty));
        }

        let mut agg_schema_fields = group_fields.clone();
        agg_schema_fields.extend(agg_fields);
        let agg_out_schema = Schema::new(agg_schema_fields);
        let mut plan = Plan::Aggregate {
            input: Box::new(input),
            group_exprs,
            aggs,
            schema: agg_out_schema.clone(),
        };

        // Rewriter for post-aggregate expressions: aggregate calls become
        // columns; group expressions become columns; anything else must be
        // composed of those.
        let rewrite = |e: &AstExpr| -> Result<Expr> {
            rewrite_post_agg(e, &stmt.group_by, &agg_calls, self.catalog)
        };

        if let Some(h) = &stmt.having {
            let predicate = rewrite(h)?;
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for (ast, name) in items {
            exprs.push(rewrite(ast)?);
            let mut field = match position_of(ast, &stmt.group_by) {
                Some(gi) => agg_out_schema.field(gi).clone(),
                None => match position_of(ast, &agg_calls) {
                    Some(ai) => agg_out_schema.field(stmt.group_by.len() + ai).clone(),
                    None => infer_field(ast, scope, self.catalog)?,
                },
            };
            field.name = name.clone();
            fields.push(field);
        }
        Ok(Plan::Project {
            input: Box::new(plan),
            exprs,
            schema: Schema::new(fields),
        })
    }
}

/// Expand wildcards into (expression, output name) pairs.
fn expand_projection(items: &[SelectItem], scope: &Scope) -> Result<Vec<(AstExpr, String)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for it in &scope.items {
                    for f in it.schema.fields() {
                        out.push((AstExpr::qcol(&it.binding, &f.name), f.name.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let it = scope
                    .items
                    .iter()
                    .find(|it| it.binding.eq_ignore_ascii_case(q))
                    .ok_or_else(|| SqlmlError::Plan(format!("unknown relation {q:?}")))?;
                for f in it.schema.fields() {
                    out.push((AstExpr::qcol(&it.binding, &f.name), f.name.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias
                    .clone()
                    .unwrap_or_else(|| default_name(expr, out.len()));
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

fn default_name(e: &AstExpr, idx: usize) -> String {
    match e {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::Agg { func, .. } => format!("{func:?}").to_lowercase(),
        _ => format!("col{idx}"),
    }
}

/// Collect aggregate calls, deduplicating structurally-equal ones.
fn collect_aggs(e: &AstExpr, out: &mut Vec<AstExpr>) {
    match e {
        AstExpr::Agg { .. } => {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        AstExpr::Column { .. } | AstExpr::Literal(_) => {}
        AstExpr::Cmp { left, right, .. } | AstExpr::Arith { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        AstExpr::And(l, r) | AstExpr::Or(l, r) => {
            collect_aggs(l, out);
            collect_aggs(r, out);
        }
        AstExpr::Not(x) | AstExpr::Neg(x) => collect_aggs(x, out),
        AstExpr::IsNull { expr, .. } => collect_aggs(expr, out),
        AstExpr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for i in list {
                collect_aggs(i, out);
            }
        }
        AstExpr::Between { expr, lo, hi } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        AstExpr::Like { expr, pattern, .. } => {
            collect_aggs(expr, out);
            collect_aggs(pattern, out);
        }
        AstExpr::Cast { expr, .. } => collect_aggs(expr, out),
        AstExpr::FuncCall { args, .. } => {
            for a in args {
                collect_aggs(a, out);
            }
        }
    }
}

fn position_of(e: &AstExpr, list: &[AstExpr]) -> Option<usize> {
    list.iter().position(|x| x == e)
}

/// Rewrite a post-aggregation expression over the aggregate output layout
/// `[group0.. groupN, agg0.. aggM]`.
fn rewrite_post_agg(
    e: &AstExpr,
    group_by: &[AstExpr],
    agg_calls: &[AstExpr],
    catalog: &Catalog,
) -> Result<Expr> {
    if let Some(gi) = position_of(e, group_by) {
        return Ok(Expr::Col(gi));
    }
    if let Some(ai) = position_of(e, agg_calls) {
        return Ok(Expr::Col(group_by.len() + ai));
    }
    let recur = |x: &AstExpr| rewrite_post_agg(x, group_by, agg_calls, catalog);
    match e {
        AstExpr::Literal(v) => Ok(Expr::Lit(v.clone())),
        AstExpr::Column { qualifier, name } => {
            // An unqualified output column might match a group expression
            // written with a qualifier (`GROUP BY t.g`, `SELECT g`).
            for (gi, g) in group_by.iter().enumerate() {
                if let AstExpr::Column { name: gn, .. } = g {
                    if gn.eq_ignore_ascii_case(name)
                        && (qualifier.is_none()
                            || matches!(g, AstExpr::Column { qualifier: Some(gq), .. }
                                if qualifier
                                    .as_ref()
                                    .is_some_and(|q| gq.eq_ignore_ascii_case(q))))
                    {
                        return Ok(Expr::Col(gi));
                    }
                }
            }
            Err(SqlmlError::Plan(format!(
                "column {name:?} must appear in GROUP BY or inside an aggregate"
            )))
        }
        AstExpr::Cmp { op, left, right } => Ok(Expr::Cmp {
            op: *op,
            left: Box::new(recur(left)?),
            right: Box::new(recur(right)?),
        }),
        AstExpr::Arith { op, left, right } => Ok(Expr::Arith {
            op: *op,
            left: Box::new(recur(left)?),
            right: Box::new(recur(right)?),
        }),
        AstExpr::And(l, r) => Ok(Expr::And(Box::new(recur(l)?), Box::new(recur(r)?))),
        AstExpr::Or(l, r) => Ok(Expr::Or(Box::new(recur(l)?), Box::new(recur(r)?))),
        AstExpr::Not(x) => Ok(Expr::Not(Box::new(recur(x)?))),
        AstExpr::Neg(x) => Ok(Expr::Neg(Box::new(recur(x)?))),
        AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(recur(expr)?),
            negated: *negated,
        }),
        AstExpr::InList {
            expr,
            list,
            negated,
        } => Ok(Expr::InList {
            expr: Box::new(recur(expr)?),
            list: list.iter().map(&recur).collect::<Result<_>>()?,
            negated: *negated,
        }),
        AstExpr::Between { expr, lo, hi } => Ok(Expr::Between {
            expr: Box::new(recur(expr)?),
            lo: Box::new(recur(lo)?),
            hi: Box::new(recur(hi)?),
        }),
        AstExpr::Like {
            expr,
            pattern,
            negated,
        } => Ok(Expr::Like {
            expr: Box::new(recur(expr)?),
            pattern: Box::new(recur(pattern)?),
            negated: *negated,
        }),
        AstExpr::Cast { expr, to } => Ok(Expr::Cast {
            expr: Box::new(recur(expr)?),
            to: *to,
        }),
        AstExpr::FuncCall { name, args } => Ok(Expr::Scalar {
            udf: catalog.scalar_udf(name)?,
            args: args.iter().map(&recur).collect::<Result<_>>()?,
        }),
        AstExpr::Agg { .. } => unreachable!("handled by position_of above"),
    }
}

/// Resolve a syntactic expression against a scope.
fn resolve_expr(e: &AstExpr, scope: &Scope, catalog: &Catalog) -> Result<Expr> {
    let recur = |x: &AstExpr| resolve_expr(x, scope, catalog);
    match e {
        AstExpr::Column { qualifier, name } => {
            let (_, flat, _) = scope.resolve(qualifier.as_deref(), name)?;
            Ok(Expr::Col(flat))
        }
        AstExpr::Literal(v) => Ok(Expr::Lit(v.clone())),
        AstExpr::Cmp { op, left, right } => Ok(Expr::Cmp {
            op: *op,
            left: Box::new(recur(left)?),
            right: Box::new(recur(right)?),
        }),
        AstExpr::Arith { op, left, right } => Ok(Expr::Arith {
            op: *op,
            left: Box::new(recur(left)?),
            right: Box::new(recur(right)?),
        }),
        AstExpr::And(l, r) => Ok(Expr::And(Box::new(recur(l)?), Box::new(recur(r)?))),
        AstExpr::Or(l, r) => Ok(Expr::Or(Box::new(recur(l)?), Box::new(recur(r)?))),
        AstExpr::Not(x) => Ok(Expr::Not(Box::new(recur(x)?))),
        AstExpr::Neg(x) => Ok(Expr::Neg(Box::new(recur(x)?))),
        AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(recur(expr)?),
            negated: *negated,
        }),
        AstExpr::InList {
            expr,
            list,
            negated,
        } => Ok(Expr::InList {
            expr: Box::new(recur(expr)?),
            list: list.iter().map(&recur).collect::<Result<_>>()?,
            negated: *negated,
        }),
        AstExpr::Between { expr, lo, hi } => Ok(Expr::Between {
            expr: Box::new(recur(expr)?),
            lo: Box::new(recur(lo)?),
            hi: Box::new(recur(hi)?),
        }),
        AstExpr::Like {
            expr,
            pattern,
            negated,
        } => Ok(Expr::Like {
            expr: Box::new(recur(expr)?),
            pattern: Box::new(recur(pattern)?),
            negated: *negated,
        }),
        AstExpr::Cast { expr, to } => Ok(Expr::Cast {
            expr: Box::new(recur(expr)?),
            to: *to,
        }),
        AstExpr::FuncCall { name, args } => Ok(Expr::Scalar {
            udf: catalog.scalar_udf(name)?,
            args: args.iter().map(&recur).collect::<Result<_>>()?,
        }),
        AstExpr::Agg { .. } => Err(SqlmlError::Plan(
            "aggregate used outside of an aggregation context".into(),
        )),
    }
}

/// Infer the output field (type + categorical flag) of an expression.
fn infer_field(e: &AstExpr, scope: &Scope, catalog: &Catalog) -> Result<Field> {
    match e {
        AstExpr::Column { qualifier, name } => {
            let (_, _, field) = scope.resolve(qualifier.as_deref(), name)?;
            Ok(field)
        }
        AstExpr::Literal(v) => Ok(Field::new("lit", v.data_type().unwrap_or(DataType::Str))),
        AstExpr::Cmp { .. }
        | AstExpr::And(..)
        | AstExpr::Or(..)
        | AstExpr::Not(_)
        | AstExpr::IsNull { .. }
        | AstExpr::InList { .. }
        | AstExpr::Like { .. }
        | AstExpr::Between { .. } => Ok(Field::new("cond", DataType::Bool)),
        AstExpr::Cast { to, .. } => Ok(Field::new("cast", *to)),
        AstExpr::Arith { op, left, right } => {
            let l = infer_field(left, scope, catalog)?.data_type;
            let r = infer_field(right, scope, catalog)?.data_type;
            let ty = if l == DataType::Int && r == DataType::Int && *op != ArithOp::Div {
                DataType::Int
            } else {
                DataType::Double
            };
            Ok(Field::new("expr", ty))
        }
        AstExpr::Neg(x) => infer_field(x, scope, catalog),
        AstExpr::Agg { func, arg, .. } => Ok(Field::new(
            "agg",
            agg_output_type(*func, arg.as_deref(), scope, catalog)?,
        )),
        AstExpr::FuncCall { name, args } => {
            let udf = catalog.scalar_udf(name)?;
            let mut tys = Vec::with_capacity(args.len());
            for a in args {
                tys.push(infer_field(a, scope, catalog)?.data_type);
            }
            Ok(Field::new("fn", udf.return_type(&tys)))
        }
    }
}

fn agg_output_type(
    func: AggFunc,
    arg: Option<&AstExpr>,
    scope: &Scope,
    catalog: &Catalog,
) -> Result<DataType> {
    Ok(match func {
        AggFunc::Count => DataType::Int,
        // SUM and AVG report DOUBLE regardless of input type (the
        // executor accumulates in f64; ML consumers want doubles anyway).
        AggFunc::Avg | AggFunc::Sum => DataType::Double,
        AggFunc::Min | AggFunc::Max => match arg {
            Some(a) => infer_field(a, scope, catalog)?.data_type,
            None => DataType::Int,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use sqlml_common::row;

    fn test_catalog() -> Catalog {
        let c = Catalog::new();
        let carts = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("amount", DataType::Double),
            Field::categorical("abandoned"),
            Field::new("year", DataType::Int),
        ]);
        let users = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::categorical("country"),
        ]);
        c.register_table(
            "carts",
            PartitionedTable::partition_rows(
                carts,
                (0..40)
                    .map(|i| {
                        row![
                            i as i64 % 10,
                            i as f64,
                            if i % 2 == 0 { "Yes" } else { "No" },
                            2014i64
                        ]
                    })
                    .collect(),
                4,
                &[],
            ),
        );
        c.register_table(
            "users",
            PartitionedTable::single(
                users,
                (0..10)
                    .map(|i| {
                        row![
                            i as i64,
                            20i64 + i as i64,
                            if i % 2 == 0 { "F" } else { "M" },
                            "USA"
                        ]
                    })
                    .collect(),
            ),
        );
        c
    }

    fn plan(sql: &str) -> Result<Plan> {
        let stmt = parse_select(sql).unwrap();
        plan_select(&stmt, &test_catalog())
    }

    #[test]
    fn paper_query_plans_with_join_and_pushed_filter() {
        let p = plan(
            "SELECT U.age, U.gender, C.amount, C.abandoned \
             FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA'",
        )
        .unwrap();
        let text = p.explain();
        assert!(text.contains("HashJoin"), "{text}");
        // country filter must sit below the join (pushed to users scan).
        let join_line = text.lines().position(|l| l.contains("HashJoin")).unwrap();
        let filter_line = text.lines().position(|l| l.contains("Filter")).unwrap();
        assert!(
            filter_line > join_line,
            "filter should be under join: {text}"
        );
        assert_eq!(
            p.schema().names(),
            vec!["age", "gender", "amount", "abandoned"]
        );
        // Categorical flags survive projection.
        assert!(p.schema().field(1).categorical);
        assert!(!p.schema().field(0).categorical);
    }

    #[test]
    fn ambiguous_column_is_rejected() {
        let err =
            plan("SELECT userid FROM carts, users WHERE carts.userid = users.userid").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn unknown_column_is_rejected() {
        assert!(plan("SELECT nope FROM carts").is_err());
        assert!(plan("SELECT users.nope FROM users").is_err());
    }

    #[test]
    fn duplicate_binding_is_rejected() {
        assert!(plan("SELECT 1 FROM carts c, users c").is_err());
    }

    #[test]
    fn aggregate_plan_shapes() {
        let p = plan(
            "SELECT gender, COUNT(*) AS n, AVG(age) FROM users \
             GROUP BY gender HAVING COUNT(*) > 1",
        )
        .unwrap();
        let text = p.explain();
        assert!(text.contains("Aggregate"), "{text}");
        assert!(text.contains("Filter"), "{text}");
        assert_eq!(p.schema().names(), vec!["gender", "n", "avg"]);
        assert_eq!(p.schema().field(1).data_type, DataType::Int);
        assert_eq!(p.schema().field(2).data_type, DataType::Double);
    }

    #[test]
    fn non_grouped_column_rejected() {
        let err = plan("SELECT age, COUNT(*) FROM users GROUP BY gender").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn order_by_alias_resolves() {
        let p = plan("SELECT age AS a FROM users ORDER BY a DESC LIMIT 3").unwrap();
        let text = p.explain();
        assert!(text.contains("Sort"));
        assert!(text.contains("Limit 3"));
    }

    #[test]
    fn three_way_self_join_like_recode_query() {
        // Shape of the paper's §2.1 recode join: T joined twice with M.
        let c = test_catalog();
        let m = Schema::new(vec![
            Field::categorical("colname"),
            Field::categorical("colval"),
            Field::new("recodeval", DataType::Int),
        ]);
        c.register_table("m", PartitionedTable::single(m, vec![]));
        let stmt = parse_select(
            "SELECT U.age, Mg.recodeVal AS gender \
             FROM users U, m AS Mg, m AS Ma \
             WHERE Mg.colName='gender' AND U.gender=Mg.colVal \
               AND Ma.colName='country' AND U.country=Ma.colVal",
        )
        .unwrap();
        let p = plan_select(&stmt, &c).unwrap();
        let text = p.explain();
        assert_eq!(text.matches("HashJoin").count(), 2, "{text}");
        assert_eq!(p.schema().names(), vec!["age", "gender"]);
    }

    #[test]
    fn explicit_left_join_plans() {
        let p = plan("SELECT u.age FROM users u LEFT JOIN carts c ON u.userid = c.userid").unwrap();
        assert!(p.explain().contains("LeftOuter"));
    }

    #[test]
    fn cross_join_without_condition_is_allowed() {
        let p = plan("SELECT u.age FROM users u, carts c").unwrap();
        assert!(p.explain().contains("HashJoin"));
    }

    #[test]
    fn wildcard_expansion_covers_all_relations() {
        let p = plan("SELECT * FROM carts c, users u WHERE c.userid = u.userid").unwrap();
        assert_eq!(p.schema().len(), 8);
        let p = plan("SELECT u.* FROM carts c, users u WHERE c.userid = u.userid").unwrap();
        assert_eq!(
            p.schema().names(),
            vec!["userid", "age", "gender", "country"]
        );
    }

    #[test]
    fn where_aggregate_is_rejected() {
        assert!(plan("SELECT 1 FROM users WHERE COUNT(*) > 1").is_err());
    }
}
