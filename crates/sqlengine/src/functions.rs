//! Built-in scalar functions, registered on every engine.
//!
//! These share the UDF machinery (they *are* scalar UDFs), which keeps
//! the expression evaluator free of special cases and demonstrates that
//! the extension surface the paper relies on is the engine's native
//! function mechanism.

use std::sync::Arc;

use sqlml_common::schema::DataType;
use sqlml_common::{Result, SqlmlError, Value};

use crate::catalog::Catalog;
use crate::udf::ScalarUdf;

/// Register the standard function library into a catalog.
pub fn register_builtins(catalog: &Catalog) {
    for f in builtins() {
        catalog.register_scalar_udf(f);
    }
}

fn builtins() -> Vec<Arc<dyn ScalarUdf>> {
    vec![
        Arc::new(Abs),
        Arc::new(Round),
        Arc::new(Floor),
        Arc::new(Ceil),
        Arc::new(Sqrt),
        Arc::new(Ln),
        Arc::new(Exp),
        Arc::new(Power),
        Arc::new(Upper),
        Arc::new(Lower),
        Arc::new(Length),
        Arc::new(Trim),
        Arc::new(Substr),
        Arc::new(Concat),
        Arc::new(Coalesce),
        Arc::new(Least),
        Arc::new(Greatest),
    ]
}

fn arity(name: &str, args: &[Value], n: usize) -> Result<()> {
    if args.len() != n {
        return Err(SqlmlError::Type(format!(
            "{name} takes {n} argument(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

/// NULL in → NULL out, for the strict numeric functions.
macro_rules! null_prop {
    ($args:expr) => {
        if $args.iter().any(|v| v.is_null()) {
            return Ok(Value::Null);
        }
    };
}

struct Abs;
impl ScalarUdf for Abs {
    fn name(&self) -> &str {
        "abs"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("abs", args, 1)?;
        null_prop!(args);
        Ok(match &args[0] {
            Value::Int(i) => Value::Int(i.wrapping_abs()),
            other => Value::Double(other.as_f64()?.abs()),
        })
    }
    fn return_type(&self, arg_types: &[DataType]) -> DataType {
        arg_types.first().copied().unwrap_or(DataType::Double)
    }
}

struct Round;
impl ScalarUdf for Round {
    fn name(&self) -> &str {
        "round"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        // round(x) or round(x, digits)
        if args.is_empty() || args.len() > 2 {
            return Err(SqlmlError::Type("round takes 1 or 2 arguments".into()));
        }
        null_prop!(args);
        let x = args[0].as_f64()?;
        let digits = if args.len() == 2 {
            args[1].as_i64()?
        } else {
            0
        };
        let digits = i32::try_from(digits)
            .map_err(|_| SqlmlError::Type(format!("round digits {digits} out of range")))?;
        let scale = 10f64.powi(digits);
        Ok(Value::Double((x * scale).round() / scale))
    }
}

struct Floor;
impl ScalarUdf for Floor {
    fn name(&self) -> &str {
        "floor"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("floor", args, 1)?;
        null_prop!(args);
        // Float-to-int `as` saturates at the i64 bounds, which is the
        // desired behavior for out-of-range doubles.
        #[allow(clippy::cast_possible_truncation)]
        let i = args[0].as_f64()?.floor() as i64;
        Ok(Value::Int(i))
    }
    fn return_type(&self, _: &[DataType]) -> DataType {
        DataType::Int
    }
}

struct Ceil;
impl ScalarUdf for Ceil {
    fn name(&self) -> &str {
        "ceil"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("ceil", args, 1)?;
        null_prop!(args);
        // Float-to-int `as` saturates at the i64 bounds, which is the
        // desired behavior for out-of-range doubles.
        #[allow(clippy::cast_possible_truncation)]
        let i = args[0].as_f64()?.ceil() as i64;
        Ok(Value::Int(i))
    }
    fn return_type(&self, _: &[DataType]) -> DataType {
        DataType::Int
    }
}

struct Sqrt;
impl ScalarUdf for Sqrt {
    fn name(&self) -> &str {
        "sqrt"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("sqrt", args, 1)?;
        null_prop!(args);
        let x = args[0].as_f64()?;
        if x < 0.0 {
            return Err(SqlmlError::Execution(format!("sqrt of negative {x}")));
        }
        Ok(Value::Double(x.sqrt()))
    }
}

struct Ln;
impl ScalarUdf for Ln {
    fn name(&self) -> &str {
        "ln"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("ln", args, 1)?;
        null_prop!(args);
        let x = args[0].as_f64()?;
        if x <= 0.0 {
            return Err(SqlmlError::Execution(format!("ln of non-positive {x}")));
        }
        Ok(Value::Double(x.ln()))
    }
}

struct Exp;
impl ScalarUdf for Exp {
    fn name(&self) -> &str {
        "exp"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("exp", args, 1)?;
        null_prop!(args);
        Ok(Value::Double(args[0].as_f64()?.exp()))
    }
}

struct Power;
impl ScalarUdf for Power {
    fn name(&self) -> &str {
        "power"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("power", args, 2)?;
        null_prop!(args);
        Ok(Value::Double(args[0].as_f64()?.powf(args[1].as_f64()?)))
    }
}

struct Upper;
impl ScalarUdf for Upper {
    fn name(&self) -> &str {
        "upper"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("upper", args, 1)?;
        null_prop!(args);
        Ok(Value::Str(args[0].as_str()?.to_uppercase().into()))
    }
    fn return_type(&self, _: &[DataType]) -> DataType {
        DataType::Str
    }
}

struct Lower;
impl ScalarUdf for Lower {
    fn name(&self) -> &str {
        "lower"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("lower", args, 1)?;
        null_prop!(args);
        Ok(Value::Str(args[0].as_str()?.to_lowercase().into()))
    }
    fn return_type(&self, _: &[DataType]) -> DataType {
        DataType::Str
    }
}

struct Length;
impl ScalarUdf for Length {
    fn name(&self) -> &str {
        "length"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("length", args, 1)?;
        null_prop!(args);
        Ok(Value::Int(args[0].as_str()?.chars().count() as i64))
    }
    fn return_type(&self, _: &[DataType]) -> DataType {
        DataType::Int
    }
}

struct Trim;
impl ScalarUdf for Trim {
    fn name(&self) -> &str {
        "trim"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("trim", args, 1)?;
        null_prop!(args);
        Ok(Value::Str(args[0].as_str()?.trim().into()))
    }
    fn return_type(&self, _: &[DataType]) -> DataType {
        DataType::Str
    }
}

/// `substr(s, start, len)` — 1-based start, SQL style.
struct Substr;
impl ScalarUdf for Substr {
    fn name(&self) -> &str {
        "substr"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        arity("substr", args, 3)?;
        null_prop!(args);
        let s = args[0].as_str()?;
        // Clamped non-negative before the cast; char offsets into a
        // string always fit in usize.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let start = args[1].as_i64()?.max(1) as usize - 1;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let len = args[2].as_i64()?.max(0) as usize;
        Ok(Value::Str(
            s.chars().skip(start).take(len).collect::<String>().into(),
        ))
    }
    fn return_type(&self, _: &[DataType]) -> DataType {
        DataType::Str
    }
}

struct Concat;
impl ScalarUdf for Concat {
    fn name(&self) -> &str {
        "concat"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        // Variadic; NULLs render as empty, matching common SQL CONCAT.
        let mut out = String::new();
        for a in args {
            match a {
                Value::Null => {}
                Value::Str(s) => out.push_str(s),
                other => out.push_str(&other.render()),
            }
        }
        Ok(Value::Str(out.into()))
    }
    fn return_type(&self, _: &[DataType]) -> DataType {
        DataType::Str
    }
}

struct Coalesce;
impl ScalarUdf for Coalesce {
    fn name(&self) -> &str {
        "coalesce"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null))
    }
    fn return_type(&self, arg_types: &[DataType]) -> DataType {
        arg_types.first().copied().unwrap_or(DataType::Double)
    }
}

struct Least;
impl ScalarUdf for Least {
    fn name(&self) -> &str {
        "least"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        null_prop!(args);
        args.iter()
            .min()
            .cloned()
            .ok_or_else(|| SqlmlError::Type("least needs at least one argument".into()))
    }
    fn return_type(&self, arg_types: &[DataType]) -> DataType {
        arg_types.first().copied().unwrap_or(DataType::Double)
    }
}

struct Greatest;
impl ScalarUdf for Greatest {
    fn name(&self) -> &str {
        "greatest"
    }
    fn eval(&self, args: &[Value]) -> Result<Value> {
        null_prop!(args);
        args.iter()
            .max()
            .cloned()
            .ok_or_else(|| SqlmlError::Type("greatest needs at least one argument".into()))
    }
    fn return_type(&self, arg_types: &[DataType]) -> DataType {
        arg_types.first().copied().unwrap_or(DataType::Double)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use sqlml_common::row;
    use sqlml_common::schema::{Field, Schema};

    fn engine() -> Engine {
        let e = Engine::new(EngineConfig::with_workers(2));
        e.register_rows(
            "t",
            Schema::new(vec![
                Field::new("x", DataType::Double),
                Field::new("n", DataType::Int),
                Field::categorical("s"),
            ]),
            vec![row![-2.5, 7i64, "  Hello World  "]],
        );
        e
    }

    fn eval1(sql: &str) -> Value {
        engine().query(sql).unwrap().collect_rows()[0]
            .get(0)
            .clone()
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(eval1("SELECT abs(x) FROM t"), Value::Double(2.5));
        assert_eq!(eval1("SELECT abs(n - 10) FROM t"), Value::Int(3));
        assert_eq!(eval1("SELECT round(x) FROM t"), Value::Double(-3.0));
        assert_eq!(
            eval1("SELECT round(2.71828, 2) FROM t"),
            Value::Double(2.72)
        );
        assert_eq!(eval1("SELECT floor(x) FROM t"), Value::Int(-3));
        assert_eq!(eval1("SELECT ceil(x) FROM t"), Value::Int(-2));
        assert_eq!(eval1("SELECT sqrt(n + 2) FROM t"), Value::Double(3.0));
        assert_eq!(eval1("SELECT power(n, 2) FROM t"), Value::Double(49.0));
        let e = eval1("SELECT exp(0) FROM t");
        assert_eq!(e, Value::Double(1.0));
        assert_eq!(eval1("SELECT ln(1) FROM t"), Value::Double(0.0));
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            eval1("SELECT upper(s) FROM t"),
            Value::Str("  HELLO WORLD  ".into())
        );
        assert_eq!(
            eval1("SELECT trim(s) FROM t"),
            Value::Str("Hello World".into())
        );
        assert_eq!(eval1("SELECT length(trim(s)) FROM t"), Value::Int(11));
        assert_eq!(
            eval1("SELECT substr(trim(s), 7, 5) FROM t"),
            Value::Str("World".into())
        );
        assert_eq!(
            eval1("SELECT concat(lower(trim(s)), '!', n) FROM t"),
            Value::Str("hello world!7".into())
        );
    }

    #[test]
    fn null_handling() {
        assert_eq!(
            eval1("SELECT coalesce(NULL, NULL, n) FROM t"),
            Value::Int(7)
        );
        assert_eq!(eval1("SELECT abs(NULL + 1) FROM t"), Value::Null);
        assert_eq!(
            eval1("SELECT concat('a', NULL, 'b') FROM t"),
            Value::Str("ab".into())
        );
    }

    #[test]
    fn least_greatest() {
        assert_eq!(eval1("SELECT least(3, 1, 2) FROM t"), Value::Int(1));
        assert_eq!(eval1("SELECT greatest(3, 1, 2) FROM t"), Value::Int(3));
        assert_eq!(eval1("SELECT greatest(n, 2.5) FROM t"), Value::Int(7));
    }

    #[test]
    fn domain_errors_surface() {
        let e = engine();
        assert!(e.query("SELECT sqrt(0 - 4) FROM t").is_err());
        assert!(e.query("SELECT ln(0) FROM t").is_err());
        assert!(e.query("SELECT abs(1, 2) FROM t").is_err());
    }

    #[test]
    fn functions_compose_in_predicates() {
        let e = engine();
        let rows = e
            .query("SELECT n FROM t WHERE abs(x) > 2.0 AND length(trim(s)) = 11")
            .unwrap()
            .num_rows();
        assert_eq!(rows, 1);
    }
}
