//! The catalog: named tables plus UDF registries. Thread-safe and shared
//! across all workers of one engine.

use std::collections::HashMap;
use std::sync::Arc;

use sqlml_common::lockorder::TrackedRwLock;
use sqlml_common::{Result, SqlmlError};

use crate::table::PartitionedTable;
use crate::udf::{ScalarUdf, TableUdf};

/// Case-insensitive name key.
fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

/// Tables and functions known to an [`crate::engine::Engine`].
pub struct Catalog {
    tables: TrackedRwLock<HashMap<String, Arc<PartitionedTable>>>,
    scalar_udfs: TrackedRwLock<HashMap<String, Arc<dyn ScalarUdf>>>,
    table_udfs: TrackedRwLock<HashMap<String, Arc<dyn TableUdf>>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            tables: TrackedRwLock::new("sqlengine.catalog.tables", HashMap::new()),
            scalar_udfs: TrackedRwLock::new("sqlengine.catalog.scalar_udfs", HashMap::new()),
            table_udfs: TrackedRwLock::new("sqlengine.catalog.table_udfs", HashMap::new()),
        }
    }
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a table.
    pub fn register_table(&self, name: &str, table: PartitionedTable) {
        self.tables.write().insert(key(name), Arc::new(table));
    }

    pub fn register_table_arc(&self, name: &str, table: Arc<PartitionedTable>) {
        self.tables.write().insert(key(name), table);
    }

    pub fn table(&self, name: &str) -> Result<Arc<PartitionedTable>> {
        self.tables
            .read()
            .get(&key(name))
            .cloned()
            .ok_or_else(|| SqlmlError::Plan(format!("unknown table {name:?}")))
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(&key(name))
            .map(|_| ())
            .ok_or_else(|| SqlmlError::Plan(format!("unknown table {name:?}")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&key(name))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn register_scalar_udf(&self, udf: Arc<dyn ScalarUdf>) {
        self.scalar_udfs.write().insert(key(udf.name()), udf);
    }

    pub fn scalar_udf(&self, name: &str) -> Result<Arc<dyn ScalarUdf>> {
        self.scalar_udfs
            .read()
            .get(&key(name))
            .cloned()
            .ok_or_else(|| SqlmlError::Plan(format!("unknown scalar UDF {name:?}")))
    }

    pub fn register_table_udf(&self, udf: Arc<dyn TableUdf>) {
        self.table_udfs.write().insert(key(udf.name()), udf);
    }

    pub fn table_udf(&self, name: &str) -> Result<Arc<dyn TableUdf>> {
        self.table_udfs
            .read()
            .get(&key(name))
            .cloned()
            .ok_or_else(|| SqlmlError::Plan(format!("unknown table UDF {name:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::ScalarFn;
    use sqlml_common::schema::{DataType, Field};
    use sqlml_common::{Schema, Value};

    fn tiny_table() -> PartitionedTable {
        PartitionedTable::single(Schema::new(vec![Field::new("x", DataType::Int)]), vec![])
    }

    #[test]
    fn table_registration_is_case_insensitive() {
        let c = Catalog::new();
        c.register_table("Carts", tiny_table());
        assert!(c.table("carts").is_ok());
        assert!(c.table("CARTS").is_ok());
        assert!(c.has_table("cArTs"));
        assert!(c.table("users").is_err());
    }

    #[test]
    fn drop_table_removes() {
        let c = Catalog::new();
        c.register_table("t", tiny_table());
        c.drop_table("T").unwrap();
        assert!(!c.has_table("t"));
        assert!(c.drop_table("t").is_err());
    }

    #[test]
    fn scalar_udf_lookup() {
        let c = Catalog::new();
        c.register_scalar_udf(Arc::new(ScalarFn::new("inc", |a: &[Value]| {
            Ok(Value::Int(a[0].as_i64()? + 1))
        })));
        let f = c.scalar_udf("INC").unwrap();
        assert_eq!(f.eval(&[Value::Int(1)]).unwrap(), Value::Int(2));
        assert!(c.scalar_udf("dec").is_err());
    }

    #[test]
    fn table_names_sorted() {
        let c = Catalog::new();
        c.register_table("zeta", tiny_table());
        c.register_table("alpha", tiny_table());
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }
}
