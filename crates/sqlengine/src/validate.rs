//! Plan semantic analyzer (level 1 of the workspace static-analysis
//! suite).
//!
//! [`validate`] walks a [`Plan`] tree bottom-up and re-derives what each
//! node's output must look like, checking it against what the node
//! *claims* (its embedded schema). The planner and optimizer are supposed
//! to uphold these invariants by construction; this pass catches the day
//! they silently stop doing so — after a new rewrite rule, a UDF change,
//! or a hand-built plan. It runs after planning and after every optimizer
//! rewrite when debug assertions are on (so under `cargo test` it is a
//! hard error, while release binaries pay nothing), and the `planlint`
//! binary runs it over the whole workload corpus explicitly.
//!
//! Invariants checked, per node:
//!
//! * **Scan** — the table is registered in the catalog under the same
//!   name with an identical schema, and it has at least one partition
//!   (partition-homing: every downstream `map_partitions` stage and
//!   gathered operator homes on partition 0, which must exist).
//! * **Column references** — every `Expr::Col(i)` is in range for the
//!   schema of the node it evaluates against.
//! * **Expression types** — operands are type-compatible (comparisons on
//!   comparable types, arithmetic/negation on numerics, AND/OR/NOT on
//!   booleans, LIKE on strings), mirroring the executor's runtime rules.
//! * **Filter** predicates (plain or fused) evaluate to `BOOLEAN`.
//! * **Project / Aggregate / HashJoin / TableUdfScan** — the declared
//!   output schema agrees column-by-column with the types derived from
//!   the inputs (for joins: left ⧺ right; for aggregates: group columns
//!   then aggregate results; for UDFs: whatever `output_schema` reports,
//!   which also re-checks the UDF's literal-argument signature/arity).
//! * **Sort** keys index into the input schema.
//! * **Fused** — the stage chain type-checks stage by stage, each
//!   `FusedStage::Udf`'s captured `input_schema` matches the running
//!   schema at that point, and the chain's final schema matches the
//!   node's declared schema.
//!
//! Every diagnostic is a [`SqlmlError::PlanValidation`] naming the node
//! and the mismatch, so tests can assert on the failure class.

use sqlml_common::schema::DataType;
use sqlml_common::{Result, Schema, SqlmlError};

use crate::ast::{AggFunc, ArithOp};
use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::plan::{AggExpr, FusedStage, Plan};

fn fail(node: &str, msg: impl AsRef<str>) -> SqlmlError {
    SqlmlError::PlanValidation(format!("{node}: {}", msg.as_ref()))
}

/// Derive the static type of `e` evaluated against `input`, failing on
/// out-of-range column references or operand type mismatches. Mirrors the
/// planner's `infer_field` rules exactly — if the two ever disagree the
/// schema-agreement checks in [`validate`] will trip. A literal NULL is
/// untyped and satisfies any operand check; where a concrete type is
/// needed (UDF signatures, declared schemas) it lands as VARCHAR, the
/// planner's convention.
pub fn expr_type(e: &Expr, input: &Schema, node: &str) -> Result<DataType> {
    Ok(ty(e, input, node)?.unwrap_or(DataType::Str))
}

/// `None` = a literal NULL with no intrinsic type (compatible with any
/// operand position, like in the executor's three-valued logic).
fn ty(e: &Expr, input: &Schema, node: &str) -> Result<Option<DataType>> {
    let compatible = |a: Option<DataType>, b: Option<DataType>| match (a, b) {
        (Some(x), Some(y)) => x == y || (x.is_numeric() && y.is_numeric()),
        _ => true,
    };
    match e {
        Expr::Col(i) => {
            if *i >= input.len() {
                return Err(fail(
                    node,
                    format!(
                        "column reference #{i} out of range for {}-column input [{}]",
                        input.len(),
                        input.names().join(", ")
                    ),
                ));
            }
            Ok(Some(input.field(*i).data_type))
        }
        Expr::Lit(v) => Ok(v.data_type()),
        Expr::Cmp { left, right, .. } => {
            let l = ty(left, input, node)?;
            let r = ty(right, input, node)?;
            if !compatible(l, r) {
                let (l, r) = (l.unwrap_or(DataType::Str), r.unwrap_or(DataType::Str));
                return Err(fail(
                    node,
                    format!("type mismatch: cannot compare {l} with {r}"),
                ));
            }
            Ok(Some(DataType::Bool))
        }
        Expr::And(l, r) | Expr::Or(l, r) => {
            for (side, x) in [("left", l), ("right", r)] {
                if let Some(t) = ty(x, input, node)? {
                    if t != DataType::Bool {
                        return Err(fail(
                            node,
                            format!("type mismatch: {side} operand of AND/OR is {t}, not BOOLEAN"),
                        ));
                    }
                }
            }
            Ok(Some(DataType::Bool))
        }
        Expr::Not(x) => {
            if let Some(t) = ty(x, input, node)? {
                if t != DataType::Bool {
                    return Err(fail(
                        node,
                        format!("type mismatch: NOT applied to {t}, not BOOLEAN"),
                    ));
                }
            }
            Ok(Some(DataType::Bool))
        }
        Expr::IsNull { expr, .. } => {
            ty(expr, input, node)?;
            Ok(Some(DataType::Bool))
        }
        Expr::InList { expr, list, .. } => {
            let t = ty(expr, input, node)?;
            for item in list {
                let it = ty(item, input, node)?;
                if !compatible(t, it) {
                    let (t, it) = (t.unwrap_or(DataType::Str), it.unwrap_or(DataType::Str));
                    return Err(fail(
                        node,
                        format!("type mismatch: IN list item is {it}, subject is {t}"),
                    ));
                }
            }
            Ok(Some(DataType::Bool))
        }
        Expr::Between { expr, lo, hi } => {
            let t = ty(expr, input, node)?;
            for bound in [lo, hi] {
                let bt = ty(bound, input, node)?;
                if !compatible(t, bt) {
                    let (t, bt) = (t.unwrap_or(DataType::Str), bt.unwrap_or(DataType::Str));
                    return Err(fail(
                        node,
                        format!("type mismatch: BETWEEN bound is {bt}, subject is {t}"),
                    ));
                }
            }
            Ok(Some(DataType::Bool))
        }
        Expr::Like { expr, pattern, .. } => {
            for (what, x) in [("subject", expr), ("pattern", pattern)] {
                if let Some(t) = ty(x, input, node)? {
                    if t != DataType::Str {
                        return Err(fail(
                            node,
                            format!("type mismatch: LIKE {what} is {t}, not VARCHAR"),
                        ));
                    }
                }
            }
            Ok(Some(DataType::Bool))
        }
        Expr::Cast { expr, to } => {
            ty(expr, input, node)?;
            Ok(Some(*to))
        }
        Expr::Arith { op, left, right } => {
            let l = ty(left, input, node)?;
            let r = ty(right, input, node)?;
            for t in [l, r].into_iter().flatten() {
                if !t.is_numeric() {
                    let (l, r) = (l.unwrap_or(DataType::Str), r.unwrap_or(DataType::Str));
                    return Err(fail(
                        node,
                        format!("type mismatch: arithmetic on {l} and {r}"),
                    ));
                }
            }
            // The planner types a NULL operand as VARCHAR, which lands in
            // its `else` branch — so a NULL operand derives DOUBLE here
            // too, keeping the two inferences aligned.
            if l == Some(DataType::Int) && r == Some(DataType::Int) && *op != ArithOp::Div {
                Ok(Some(DataType::Int))
            } else {
                Ok(Some(DataType::Double))
            }
        }
        Expr::Neg(x) => {
            let t = ty(x, input, node)?;
            if let Some(t) = t {
                if !t.is_numeric() {
                    return Err(fail(node, format!("type mismatch: negation of {t}")));
                }
            }
            Ok(t)
        }
        Expr::Scalar { udf, args } => {
            let mut tys = Vec::with_capacity(args.len());
            for a in args {
                // NULL argument -> VARCHAR, the planner's convention, so
                // `return_type` sees identical inputs in both passes.
                tys.push(ty(a, input, node)?.unwrap_or(DataType::Str));
            }
            Ok(Some(udf.return_type(&tys)))
        }
    }
}

fn agg_type(agg: &AggExpr, input: &Schema, node: &str) -> Result<DataType> {
    Ok(match agg.func {
        AggFunc::Count => DataType::Int,
        AggFunc::Avg | AggFunc::Sum => {
            if let Some(arg) = &agg.arg {
                let t = expr_type(arg, input, node)?;
                if !t.is_numeric() {
                    return Err(fail(
                        node,
                        format!("type mismatch: {:?} over non-numeric {t}", agg.func),
                    ));
                }
            }
            DataType::Double
        }
        AggFunc::Min | AggFunc::Max => match &agg.arg {
            Some(arg) => expr_type(arg, input, node)?,
            None => DataType::Int,
        },
    })
}

fn check_types_match(derived: &[DataType], declared: &Schema, node: &str) -> Result<()> {
    if derived.len() != declared.len() {
        return Err(fail(
            node,
            format!(
                "schema mismatch: node declares {} columns [{}] but derives {}",
                declared.len(),
                declared.names().join(", "),
                derived.len()
            ),
        ));
    }
    for (i, (d, f)) in derived.iter().zip(declared.fields()).enumerate() {
        if *d != f.data_type {
            return Err(fail(
                node,
                format!(
                    "schema mismatch: column {i} ({:?}) declared {} but derives {d}",
                    f.name, f.data_type
                ),
            ));
        }
    }
    Ok(())
}

fn schemas_equal(a: &Schema, b: &Schema) -> bool {
    a.len() == b.len()
        && a.fields()
            .iter()
            .zip(b.fields())
            .all(|(x, y)| x.name == y.name && x.data_type == y.data_type)
}

/// Validate one plan tree against the catalog. Returns the plan's
/// (verified) output schema; callers usually only care about `Ok`/`Err`.
pub fn validate(plan: &Plan, catalog: &Catalog) -> Result<Schema> {
    match plan {
        Plan::Scan { name, table } => {
            let registered = catalog
                .table(name)
                .map_err(|_| fail("Scan", format!("table {name:?} is not in the catalog")))?;
            if !schemas_equal(registered.schema(), table.schema()) {
                return Err(fail(
                    "Scan",
                    format!(
                        "schema mismatch: plan scans {name:?} as [{}] but the catalog has [{}]",
                        table.schema().names().join(", "),
                        registered.schema().names().join(", ")
                    ),
                ));
            }
            if table.num_partitions() == 0 {
                return Err(fail(
                    "Scan",
                    format!("table {name:?} has no partitions to home operators on"),
                ));
            }
            Ok(table.schema().clone())
        }
        Plan::TableUdfScan {
            udf,
            input,
            args,
            schema,
        } => {
            let in_schema = validate(input, catalog)?;
            // Re-deriving the output schema re-runs the UDF's own
            // argument validation — arity and literal types included.
            let derived = udf.output_schema(&in_schema, args).map_err(|e| {
                fail(
                    "TableUdfScan",
                    format!("udf {:?} rejected its signature: {e}", udf.name()),
                )
            })?;
            if !schemas_equal(&derived, schema) {
                return Err(fail(
                    "TableUdfScan",
                    format!(
                        "schema mismatch: udf {:?} derives [{}] but node declares [{}]",
                        udf.name(),
                        derived.names().join(", "),
                        schema.names().join(", ")
                    ),
                ));
            }
            Ok(schema.clone())
        }
        Plan::Filter { input, predicate } => {
            let in_schema = validate(input, catalog)?;
            let t = expr_type(predicate, &in_schema, "Filter")?;
            if t != DataType::Bool {
                return Err(fail(
                    "Filter",
                    format!("type mismatch: predicate evaluates to {t}, not BOOLEAN"),
                ));
            }
            Ok(in_schema)
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            let in_schema = validate(input, catalog)?;
            let derived: Vec<DataType> = exprs
                .iter()
                .map(|e| expr_type(e, &in_schema, "Project"))
                .collect::<Result<_>>()?;
            check_types_match(&derived, schema, "Project")?;
            Ok(schema.clone())
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            schema,
            ..
        } => {
            let ls = validate(left, catalog)?;
            let rs = validate(right, catalog)?;
            if left_keys.len() != right_keys.len() {
                return Err(fail(
                    "HashJoin",
                    format!(
                        "{} left keys but {} right keys",
                        left_keys.len(),
                        right_keys.len()
                    ),
                ));
            }
            for (lk, rk) in left_keys.iter().zip(right_keys) {
                let lt = expr_type(lk, &ls, "HashJoin")?;
                let rt = expr_type(rk, &rs, "HashJoin")?;
                if lt != rt && !(lt.is_numeric() && rt.is_numeric()) {
                    return Err(fail(
                        "HashJoin",
                        format!("type mismatch: join key pairs {lt} with {rt}"),
                    ));
                }
            }
            let derived = ls.join(&rs);
            if !schemas_equal(&derived, schema) {
                return Err(fail(
                    "HashJoin",
                    format!(
                        "schema mismatch: sides join to [{}] but node declares [{}]",
                        derived.names().join(", "),
                        schema.names().join(", ")
                    ),
                ));
            }
            Ok(schema.clone())
        }
        Plan::Distinct { input } => validate(input, catalog),
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => {
            let in_schema = validate(input, catalog)?;
            let mut derived = Vec::with_capacity(group_exprs.len() + aggs.len());
            for g in group_exprs {
                derived.push(expr_type(g, &in_schema, "Aggregate")?);
            }
            for a in aggs {
                derived.push(agg_type(a, &in_schema, "Aggregate")?);
            }
            check_types_match(&derived, schema, "Aggregate")?;
            Ok(schema.clone())
        }
        Plan::Sort { input, keys } => {
            let in_schema = validate(input, catalog)?;
            for (i, _) in keys {
                if *i >= in_schema.len() {
                    return Err(fail(
                        "Sort",
                        format!(
                            "column reference #{i} out of range for {}-column input",
                            in_schema.len()
                        ),
                    ));
                }
            }
            Ok(in_schema)
        }
        Plan::Limit { input, .. } => validate(input, catalog),
        Plan::Fused {
            input,
            stages,
            schema,
        } => {
            let mut running = validate(input, catalog)?;
            for (si, stage) in stages.iter().enumerate() {
                let node = format!("Fused[{si}]");
                match stage {
                    FusedStage::Filter(pred) => {
                        let t = expr_type(pred, &running, &node)?;
                        if t != DataType::Bool {
                            return Err(fail(
                                &node,
                                format!("type mismatch: predicate evaluates to {t}, not BOOLEAN"),
                            ));
                        }
                    }
                    FusedStage::Project { exprs } => {
                        let derived: Vec<DataType> = exprs
                            .iter()
                            .map(|e| expr_type(e, &running, &node))
                            .collect::<Result<_>>()?;
                        // Intermediate stages carry no declared schema;
                        // downstream stages only see positions and types.
                        running = Schema::new(
                            derived
                                .iter()
                                .enumerate()
                                .map(|(i, t)| {
                                    sqlml_common::schema::Field::new(format!("__c{i}"), *t)
                                })
                                .collect(),
                        );
                    }
                    FusedStage::Udf {
                        udf,
                        args,
                        input_schema,
                    } => {
                        let same_types = input_schema.len() == running.len()
                            && input_schema
                                .fields()
                                .iter()
                                .zip(running.fields())
                                .all(|(a, b)| a.data_type == b.data_type);
                        if !same_types {
                            return Err(fail(
                                &node,
                                format!(
                                    "schema mismatch: udf {:?} captured input [{}] but the \
                                     running stage schema is [{}]",
                                    udf.name(),
                                    input_schema.names().join(", "),
                                    running.names().join(", ")
                                ),
                            ));
                        }
                        running = udf.output_schema(input_schema, args).map_err(|e| {
                            fail(
                                &node,
                                format!("udf {:?} rejected its signature: {e}", udf.name()),
                            )
                        })?;
                    }
                }
            }
            let derived: Vec<DataType> = running.fields().iter().map(|f| f.data_type).collect();
            check_types_match(&derived, schema, "Fused")?;
            Ok(schema.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::PartitionedTable;
    use sqlml_common::schema::Field;
    use sqlml_common::{row, Value};
    use std::sync::Arc;

    fn catalog_with_t() -> (Catalog, Arc<PartitionedTable>) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("s", DataType::Str),
        ]);
        let rows = vec![row![1i64, "x"], row![2i64, "y"]];
        let table = Arc::new(PartitionedTable::partition_rows(schema, rows, 2, &[]));
        let cat = Catalog::new();
        cat.register_table_arc("t", Arc::clone(&table));
        (cat, table)
    }

    fn scan(table: &Arc<PartitionedTable>) -> Plan {
        Plan::Scan {
            name: "t".into(),
            table: Arc::clone(table),
        }
    }

    #[test]
    fn valid_filter_project_passes() {
        let (cat, t) = catalog_with_t();
        let plan = Plan::Project {
            input: Box::new(Plan::Filter {
                input: Box::new(scan(&t)),
                predicate: Expr::Cmp {
                    op: crate::ast::CmpOp::Gt,
                    left: Box::new(Expr::Col(0)),
                    right: Box::new(Expr::Lit(Value::Int(1))),
                },
            }),
            exprs: vec![Expr::Col(1)],
            schema: Schema::new(vec![Field::new("s", DataType::Str)]),
        };
        assert!(validate(&plan, &cat).is_ok());
    }

    #[test]
    fn out_of_range_column_is_rejected() {
        let (cat, t) = catalog_with_t();
        let plan = Plan::Project {
            input: Box::new(scan(&t)),
            exprs: vec![Expr::Col(7)],
            schema: Schema::new(vec![Field::new("x", DataType::Int)]),
        };
        let err = validate(&plan, &cat).unwrap_err().to_string();
        assert!(err.contains("column reference #7 out of range"), "{err}");
    }

    #[test]
    fn declared_type_lie_is_rejected() {
        let (cat, t) = catalog_with_t();
        let plan = Plan::Project {
            input: Box::new(scan(&t)),
            exprs: vec![Expr::Col(0)],
            schema: Schema::new(vec![Field::new("a", DataType::Str)]), // lies: col 0 is Int
        };
        let err = validate(&plan, &cat).unwrap_err().to_string();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn unregistered_scan_is_rejected() {
        let (_, t) = catalog_with_t();
        let empty = Catalog::new();
        let err = validate(&scan(&t), &empty).unwrap_err().to_string();
        assert!(err.contains("not in the catalog"), "{err}");
    }

    #[test]
    fn non_boolean_filter_is_rejected() {
        let (cat, t) = catalog_with_t();
        let plan = Plan::Filter {
            input: Box::new(scan(&t)),
            predicate: Expr::Col(0), // Int, not Bool
        };
        let err = validate(&plan, &cat).unwrap_err().to_string();
        assert!(err.contains("not BOOLEAN"), "{err}");
    }

    #[test]
    fn arithmetic_on_strings_is_rejected() {
        let (cat, t) = catalog_with_t();
        let plan = Plan::Filter {
            input: Box::new(scan(&t)),
            predicate: Expr::Cmp {
                op: crate::ast::CmpOp::Eq,
                left: Box::new(Expr::Arith {
                    op: ArithOp::Add,
                    left: Box::new(Expr::Col(1)), // Str
                    right: Box::new(Expr::Lit(Value::Int(1))),
                }),
                right: Box::new(Expr::Lit(Value::Int(2))),
            },
        };
        let err = validate(&plan, &cat).unwrap_err().to_string();
        assert!(err.contains("arithmetic"), "{err}");
    }
}
