//! An MPP "big SQL" engine with UDF extensibility.
//!
//! This crate stands in for the paper's IBM Big SQL / Hive / Impala layer:
//! a SQL system that stores tables partitioned across a cluster, executes
//! queries with intra-query parallelism, and — critically for the paper's
//! techniques — can be extended with **scalar UDFs** (usable in any
//! expression) and **parallel table UDFs** (operators that run once per
//! partition, used to implement the In-SQL transformations of §2 and the
//! streaming-transfer source of §3).
//!
//! Components:
//!
//! * [`lexer`], [`ast`], [`parser`] — SQL front end (SELECT/PROJECT/JOIN/
//!   DISTINCT/GROUP BY/ORDER BY/LIMIT, `CREATE TABLE`, `CREATE TABLE AS`,
//!   table-UDF invocation via `TABLE(udf(...))` in FROM).
//! * [`catalog`] — tables plus scalar/table UDF registries.
//! * [`table`] — partitioned row storage with per-partition home nodes
//!   (locality) and DFS text import/export.
//! * [`expr`] — compiled expressions with SQL three-valued logic.
//! * [`plan`], [`planner`], [`optimizer`] — logical plans, name
//!   resolution, join extraction from WHERE, predicate pushdown and
//!   broadcast-side selection.
//! * [`executor`] — parallel partition-at-a-time execution across worker
//!   threads.
//! * [`udf`] — the UDF traits.
//! * [`engine`] — the public facade.

pub mod ast;
pub mod catalog;
pub mod dictionary;
pub mod engine;
pub mod executor;
pub mod expr;
pub mod functions;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod table;
pub mod udf;
pub mod validate;

pub use catalog::Catalog;
pub use engine::{Engine, EngineConfig};
pub use table::PartitionedTable;
pub use udf::{PartitionCtx, ScalarUdf, TableUdf};
