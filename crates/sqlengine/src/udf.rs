//! User-defined function traits — the extensibility hooks the paper's
//! whole approach rests on ("our techniques apply to any big SQL system
//! that supports UDFs").

use sqlml_common::{Result, Row, Schema, Value};

/// Context handed to each per-partition invocation of a table UDF.
///
/// Mirrors what a Big SQL / Hive UDF learns from its runtime: which
/// logical worker it runs on, how many peers exist, and where (which node)
/// the partition lives — enough for the streaming-transfer UDF of §3 to
/// register itself with the coordinator.
#[derive(Debug, Clone)]
pub struct PartitionCtx {
    /// Index of the partition being processed.
    pub partition: usize,
    /// Total number of partitions in the input table.
    pub num_partitions: usize,
    /// SQL worker executing this partition.
    pub worker: usize,
    /// Total number of SQL workers.
    pub num_workers: usize,
    /// Node name hosting this worker (locality identity).
    pub node: String,
}

/// A scalar UDF: a pure function of row values, usable anywhere an
/// expression is.
pub trait ScalarUdf: Send + Sync {
    /// Name used to invoke the function in SQL (case-insensitive).
    fn name(&self) -> &str;

    /// Evaluate on one set of argument values.
    fn eval(&self, args: &[Value]) -> Result<Value>;

    /// Static return type given argument types, used for output-schema
    /// inference. Defaults to DOUBLE (the common case for ML feature
    /// functions); override for string- or integer-valued UDFs.
    fn return_type(
        &self,
        _arg_types: &[sqlml_common::schema::DataType],
    ) -> sqlml_common::schema::DataType {
        sqlml_common::schema::DataType::Double
    }
}

/// A parallel table UDF: invoked as `TABLE(name(args...))` in a FROM
/// clause. The engine calls [`TableUdf::execute`] once per partition of
/// the input table, **in parallel across SQL workers** — this is the
/// mechanism behind the In-SQL transformations (§2) and the streaming
/// transfer source (§3).
pub trait TableUdf: Send + Sync {
    /// Name used to invoke the function in SQL (case-insensitive).
    fn name(&self) -> &str;

    /// Output schema, given the input table's schema and the literal
    /// arguments.
    fn output_schema(&self, input: &Schema, args: &[Value]) -> Result<Schema>;

    /// Process one partition. Implementations must be deterministic given
    /// `(rows, args, ctx)` so that restarted partitions (fault tolerance,
    /// §6) reproduce identical output.
    fn execute(
        &self,
        rows: &[Row],
        input_schema: &Schema,
        args: &[Value],
        ctx: &PartitionCtx,
    ) -> Result<Vec<Row>>;
}

/// Adapter: build a scalar UDF from a closure.
pub struct ScalarFn<F> {
    name: String,
    f: F,
}

impl<F> ScalarFn<F>
where
    F: Fn(&[Value]) -> Result<Value> + Send + Sync,
{
    pub fn new(name: impl Into<String>, f: F) -> Self {
        ScalarFn {
            name: name.into(),
            f,
        }
    }
}

impl<F> ScalarUdf for ScalarFn<F>
where
    F: Fn(&[Value]) -> Result<Value> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&self, args: &[Value]) -> Result<Value> {
        (self.f)(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::SqlmlError;

    #[test]
    fn scalar_fn_adapter_evaluates() {
        let double = ScalarFn::new("double_it", |args: &[Value]| {
            Ok(Value::Double(args[0].as_f64()? * 2.0))
        });
        assert_eq!(double.name(), "double_it");
        assert_eq!(double.eval(&[Value::Int(21)]).unwrap(), Value::Double(42.0));
    }

    #[test]
    fn scalar_fn_propagates_errors() {
        let strict = ScalarFn::new("strict", |_: &[Value]| {
            Err(SqlmlError::Execution("nope".into()))
        });
        assert!(strict.eval(&[]).is_err());
    }
}
