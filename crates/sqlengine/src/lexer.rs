//! SQL tokenizer.

use sqlml_common::{Result, SqlmlError};

/// A lexed token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier, stored upper-cased for keywords; `Ident`
    /// preserves the original case (lookups are case-insensitive anyway).
    Ident(String),
    /// A reserved word (SELECT, FROM, ...), upper-cased.
    Keyword(String),
    IntLit(i64),
    DoubleLit(f64),
    StrLit(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    Eof,
}

/// Reserved words. Anything else alphanumeric is an identifier.
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "AS",
    "DISTINCT",
    "GROUP",
    "BY",
    "ORDER",
    "LIMIT",
    "ASC",
    "DESC",
    "JOIN",
    "INNER",
    "LEFT",
    "OUTER",
    "ON",
    "CREATE",
    "TABLE",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "HAVING",
    "IN",
    "BETWEEN",
    "CATEGORICAL",
    "DROP",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "LIKE",
    "CAST",
    "EXPLAIN",
];

/// Lex a SQL string into tokens (ending with [`TokenKind::Eof`]).
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    pos: i,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    pos: i,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    pos: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    pos: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    pos: i,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    pos: i,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    pos: i,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    pos: i,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    kind: TokenKind::Semicolon,
                    pos: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    pos: i,
                });
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token {
                        kind: TokenKind::NotEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(err(input, i, "expected `!=`"));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token {
                        kind: TokenKind::LtEq,
                        pos: i,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token {
                        kind: TokenKind::NotEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token {
                        kind: TokenKind::GtEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '\'' => {
                // String literal; `''` escapes a quote, SQL style.
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err(input, start, "unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Multi-byte UTF-8 safe: operate on char boundaries.
                        let ch_str = &input[i..];
                        // `i` sits on a char boundary inside the input,
                        // so the remainder is non-empty here; an empty
                        // tail just ends the literal scan.
                        let Some(ch) = ch_str.chars().next() else {
                            break;
                        };
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push(Token {
                    kind: TokenKind::StrLit(s),
                    pos: start,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_double = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_double = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_double = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_double {
                    TokenKind::DoubleLit(
                        text.parse::<f64>()
                            .map_err(|e| err(input, start, &format!("bad number: {e}")))?,
                    )
                } else {
                    TokenKind::IntLit(
                        text.parse::<i64>()
                            .map_err(|e| err(input, start, &format!("bad number: {e}")))?,
                    )
                };
                out.push(Token { kind, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_string())
                };
                out.push(Token { kind, pos: start });
            }
            other => {
                return Err(err(input, i, &format!("unexpected character {other:?}")));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: input.len(),
    });
    Ok(out)
}

fn err(input: &str, pos: usize, msg: &str) -> SqlmlError {
    let preview: String = input[pos..].chars().take(20).collect();
    SqlmlError::Parse(format!("{msg} at byte {pos} (near {preview:?})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_example_query() {
        let sql = "SELECT U.age, U.gender, C.amount, C.abandoned \
                   FROM carts C, users U \
                   WHERE C.userid=U.userid AND U.country='USA'";
        let ks = kinds(sql);
        assert_eq!(ks[0], TokenKind::Keyword("SELECT".into()));
        assert!(ks.contains(&TokenKind::StrLit("USA".into())));
        assert!(ks.contains(&TokenKind::Keyword("WHERE".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers_int_vs_double() {
        assert_eq!(
            kinds("42 3.5 1e3 2.5e-2"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::DoubleLit(3.5),
                TokenKind::DoubleLit(1000.0),
                TokenKind::DoubleLit(0.025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != <> < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::StrLit("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- the projection\n 1"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::IntLit(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive_identifiers_preserved() {
        let ks = kinds("select MyTable");
        assert_eq!(ks[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Ident("MyTable".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("SELECT 'oops").is_err());
    }

    #[test]
    fn bare_bang_is_an_error() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn unicode_in_string_literals() {
        assert_eq!(
            kinds("'héllo wörld'"),
            vec![TokenKind::StrLit("héllo wörld".into()), TokenKind::Eof]
        );
    }
}
