//! Per-partition dictionary encoding for string columns — and why it is
//! *not* a recode map.
//!
//! §2.1 of the paper discusses an "interesting direction": modern column
//! stores already dictionary-compress string columns to integers, so why
//! not hand those integers to the ML system directly? It then lists
//! three blockers, all reproduced by this module and exercised by
//! `ablation_dictionary` and the tests below:
//!
//! 1. dictionary encoding "is applied only for a local partition of
//!    data" (Parquet/ORC style) — the same value gets *different codes
//!    in different partitions*;
//! 2. some systems "require the recoded categorical values to be
//!    consecutive integers starting from 1"; dictionary codes are
//!    0-based and ordered by first appearance, not by value;
//! 3. "the recoding needs to be done on filtered data" — a base-table
//!    dictionary over-counts the distinct values that survive the
//!    preparation query's predicates.
//!
//! The encoding itself is still genuinely useful as *compression*, which
//! is what the module provides to the engine: a compact representation
//! with exact size accounting.

use std::collections::HashMap;
use std::sync::Arc;

use sqlml_common::{Result, Row, SqlmlError, Value};

/// A dictionary-encoded string column for one partition: codes are
/// assigned in order of first appearance, 0-based (the Parquet/ORC
/// convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictionaryColumn {
    /// Code → value. Codes index this vector.
    dict: Vec<String>,
    /// One code per row; NULLs are represented as `u32::MAX`.
    codes: Vec<u32>,
}

const NULL_CODE: u32 = u32::MAX;

impl DictionaryColumn {
    /// Encode the string column at `col` of one partition.
    pub fn encode_partition(rows: &[Row], col: usize) -> Result<DictionaryColumn> {
        let mut dict: Vec<String> = Vec::new();
        let mut index: HashMap<Arc<str>, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(rows.len());
        for r in rows {
            match r.get(col) {
                Value::Null => codes.push(NULL_CODE),
                Value::Str(s) => {
                    let code = match index.get(&**s) {
                        Some(c) => *c,
                        None => {
                            let c =
                                sqlml_common::counter_u32(dict.len(), "dictionary cardinality")?;
                            if c == NULL_CODE {
                                return Err(SqlmlError::Execution("dictionary overflow".into()));
                            }
                            index.insert(s.clone(), c);
                            dict.push(s.to_string());
                            c
                        }
                    };
                    codes.push(code);
                }
                other => {
                    return Err(SqlmlError::Type(format!(
                        "dictionary encoding expects strings, found {other}"
                    )))
                }
            }
        }
        Ok(DictionaryColumn { dict, codes })
    }

    pub fn len(&self) -> usize {
        self.codes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Distinct non-null values in this partition.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// The local integer code of row `i` (`None` for NULL).
    pub fn code(&self, i: usize) -> Option<u32> {
        match self.codes[i] {
            NULL_CODE => None,
            c => Some(c),
        }
    }

    /// Decode row `i` back to its string.
    pub fn value(&self, i: usize) -> Option<&str> {
        match self.codes[i] {
            NULL_CODE => None,
            c => Some(&self.dict[c as usize]),
        }
    }

    /// The local code of a value, if present in this partition.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.dict
            .iter()
            .position(|v| v == value)
            .and_then(|i| u32::try_from(i).ok())
    }

    /// Dictionary entries in code order.
    pub fn entries(&self) -> &[String] {
        &self.dict
    }

    /// Bytes used by this encoding (dictionary payload + 4 bytes/code).
    pub fn compressed_bytes(&self) -> usize {
        self.dict.iter().map(|s| s.len() + 4).sum::<usize>() + self.codes.len() * 4
    }

    /// Bytes the raw string column would use (payload + length prefix).
    pub fn raw_bytes(&self) -> usize {
        self.codes
            .iter()
            .map(|c| match *c {
                NULL_CODE => 4,
                c => self.dict[c as usize].len() + 4,
            })
            .sum()
    }
}

/// Encode one string column across all partitions independently — the
/// Parquet/ORC situation the paper describes. Returns one local
/// dictionary per partition.
pub fn encode_column_per_partition(
    partitions: &[std::sync::Arc<Vec<Row>>],
    col: usize,
) -> Result<Vec<DictionaryColumn>> {
    partitions
        .iter()
        .map(|p| DictionaryColumn::encode_partition(p, col))
        .collect()
}

/// §2.1's objection 1, as a predicate: do any two partitions assign
/// different codes to the same value (or the same code to different
/// values)?
pub fn local_codes_conflict(dicts: &[DictionaryColumn]) -> bool {
    let mut global: HashMap<&str, usize> = HashMap::new();
    for d in dicts {
        for (code, value) in d.entries().iter().enumerate() {
            match global.get(value.as_str()) {
                Some(existing) if *existing != code => return true,
                Some(_) => {}
                None => {
                    global.insert(value, code);
                }
            }
        }
    }
    // Same code, different values across partitions?
    let mut by_code: HashMap<usize, &str> = HashMap::new();
    for d in dicts {
        for (code, value) in d.entries().iter().enumerate() {
            match by_code.get(&code) {
                Some(existing) if *existing != value.as_str() => return true,
                Some(_) => {}
                None => {
                    by_code.insert(code, value);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use std::sync::Arc;

    #[test]
    fn encode_decode_round_trip() {
        let rows = vec![row!["b"], row!["a"], row!["b"], row!["c"], row!["a"]];
        let d = DictionaryColumn::encode_partition(&rows, 0).unwrap();
        assert_eq!(d.len(), 5);
        assert_eq!(d.cardinality(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(d.value(i).unwrap(), r.get(0).as_str().unwrap());
        }
        // First-seen order, 0-based — NOT the sorted 1-based recode order.
        assert_eq!(d.entries(), &["b", "a", "c"]);
        assert_eq!(d.code_of("b"), Some(0));
        assert_eq!(d.code_of("missing"), None);
    }

    #[test]
    fn nulls_are_representable() {
        let rows = vec![row!["x"], Row::new(vec![Value::Null]), row!["x"]];
        let d = DictionaryColumn::encode_partition(&rows, 0).unwrap();
        assert_eq!(d.code(0), Some(0));
        assert_eq!(d.code(1), None);
        assert_eq!(d.value(1), None);
        assert_eq!(d.cardinality(), 1);
    }

    #[test]
    fn compression_wins_on_repetitive_columns() {
        let rows: Vec<Row> = (0..1000)
            .map(|i| {
                row![if i % 2 == 0 {
                    "female_customer"
                } else {
                    "male_customer"
                }]
            })
            .collect();
        let d = DictionaryColumn::encode_partition(&rows, 0).unwrap();
        assert!(
            d.compressed_bytes() * 3 < d.raw_bytes(),
            "compressed {} vs raw {}",
            d.compressed_bytes(),
            d.raw_bytes()
        );
    }

    #[test]
    fn objection_1_local_dictionaries_disagree() {
        // Partition 0 sees M first; partition 1 sees F first: the same
        // value gets different codes.
        let parts = vec![
            Arc::new(vec![row!["M"], row!["F"]]),
            Arc::new(vec![row!["F"], row!["M"]]),
        ];
        let dicts = encode_column_per_partition(&parts, 0).unwrap();
        assert_eq!(dicts[0].code_of("M"), Some(0));
        assert_eq!(dicts[1].code_of("M"), Some(1));
        assert!(local_codes_conflict(&dicts));
        // Identical arrival order → no conflict (the lucky case).
        let parts = vec![
            Arc::new(vec![row!["F"], row!["M"]]),
            Arc::new(vec![row!["F"], row!["M"]]),
        ];
        assert!(!local_codes_conflict(
            &encode_column_per_partition(&parts, 0).unwrap()
        ));
    }

    #[test]
    fn objection_2_codes_are_not_consecutive_from_one() {
        let rows = vec![row!["zeta"], row!["alpha"]];
        let d = DictionaryColumn::encode_partition(&rows, 0).unwrap();
        // Dictionary: zeta=0, alpha=1. The SystemML-style requirement is
        // alpha=1, zeta=2 (sorted, 1-based).
        assert_eq!(d.code_of("zeta"), Some(0));
        assert_eq!(d.code_of("alpha"), Some(1));
        let recode = sqlml_transform_recode_reference(&["zeta", "alpha"]);
        assert_eq!(
            recode,
            vec![("alpha".to_string(), 1), ("zeta".to_string(), 2)]
        );
    }

    /// Tiny local reference for what recoding produces (avoids a cyclic
    /// dev-dependency on sqlml-transform).
    fn sqlml_transform_recode_reference(values: &[&str]) -> Vec<(String, i64)> {
        let mut vs: Vec<String> = values.iter().map(|s| s.to_string()).collect();
        vs.sort();
        vs.dedup();
        vs.into_iter()
            .enumerate()
            .map(|(i, v)| (v, i as i64 + 1))
            .collect()
    }

    #[test]
    fn non_string_column_is_rejected() {
        let rows = vec![row![1i64]];
        assert!(DictionaryColumn::encode_partition(&rows, 0).is_err());
    }
}
