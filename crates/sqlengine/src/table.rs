//! Partitioned table storage.
//!
//! A [`PartitionedTable`] is the engine's unit of data: a schema plus a
//! set of horizontal partitions, each with a *home node* recording where
//! in the simulated cluster the partition lives. Query results are
//! themselves partitioned tables, so UDFs, the transfer layer, and the
//! cache all operate on the same representation.

use std::sync::Arc;

use sqlml_common::codec;
use sqlml_common::{Result, Row, Schema, SqlmlError, Value};
use sqlml_dfs::Dfs;

/// A horizontally partitioned table. Partitions are immutable and shared
/// (`Arc`), so projecting/caching/transferring never copies row data
/// needlessly.
#[derive(Debug, Clone)]
pub struct PartitionedTable {
    schema: Schema,
    partitions: Vec<Arc<Vec<Row>>>,
    /// Home node name per partition (same length as `partitions`).
    homes: Vec<String>,
}

impl PartitionedTable {
    /// Build from pre-formed partitions. `homes` defaults to
    /// `node-{i mod n}` when not supplied via [`Self::with_homes`].
    pub fn new(schema: Schema, partitions: Vec<Vec<Row>>) -> Self {
        let homes = (0..partitions.len()).map(sqlml_dfs::node_name).collect();
        PartitionedTable {
            schema,
            partitions: partitions.into_iter().map(Arc::new).collect(),
            homes,
        }
    }

    /// Build from shared partitions (no copy).
    pub fn from_shared(schema: Schema, partitions: Vec<Arc<Vec<Row>>>, homes: Vec<String>) -> Self {
        assert_eq!(partitions.len(), homes.len());
        PartitionedTable {
            schema,
            partitions,
            homes,
        }
    }

    /// Override the home nodes (placement) of the partitions.
    pub fn with_homes(mut self, homes: Vec<String>) -> Self {
        assert_eq!(homes.len(), self.partitions.len());
        self.homes = homes;
        self
    }

    /// Round-robin partition `rows` into `num_partitions` partitions with
    /// home nodes cycling over `nodes`.
    pub fn partition_rows(
        schema: Schema,
        rows: Vec<Row>,
        num_partitions: usize,
        nodes: &[String],
    ) -> Self {
        assert!(num_partitions > 0);
        let mut parts: Vec<Vec<Row>> = (0..num_partitions)
            .map(|i| Vec::with_capacity(rows.len() / num_partitions + (i == 0) as usize))
            .collect();
        for (i, row) in rows.into_iter().enumerate() {
            parts[i % num_partitions].push(row);
        }
        let homes = (0..num_partitions)
            .map(|i| {
                if nodes.is_empty() {
                    sqlml_dfs::node_name(i)
                } else {
                    nodes[i % nodes.len()].clone()
                }
            })
            .collect();
        PartitionedTable {
            schema,
            partitions: parts.into_iter().map(Arc::new).collect(),
            homes,
        }
    }

    /// A single-partition table (useful for small dimension data).
    pub fn single(schema: Schema, rows: Vec<Row>) -> Self {
        PartitionedTable::new(schema, vec![rows])
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn partition(&self, i: usize) -> &Arc<Vec<Row>> {
        &self.partitions[i]
    }

    pub fn partitions(&self) -> &[Arc<Vec<Row>>] {
        &self.partitions
    }

    pub fn home(&self, i: usize) -> &str {
        &self.homes[i]
    }

    pub fn homes(&self) -> &[String] {
        &self.homes
    }

    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Total payload size in bytes under the text encoding — the engine's
    /// coarse cost statistic for join-side and transfer planning.
    pub fn approx_bytes(&self) -> u64 {
        self.partitions
            .iter()
            .flat_map(|p| p.iter())
            .map(|r| {
                r.values()
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => s.len() as u64 + 1,
                        _ => 8,
                    })
                    .sum::<u64>()
            })
            .sum()
    }

    /// Gather all rows into one vector (partition order, then row order).
    pub fn collect_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.num_rows());
        for p in &self.partitions {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Gather and sort — stable comparison output for tests.
    pub fn collect_sorted(&self) -> Vec<Row> {
        let mut rows = self.collect_rows();
        rows.sort();
        rows
    }

    /// Write the table to the DFS as one text file per partition under
    /// `dir` (`dir/part-00000`, ...), mirroring Hadoop job output layout.
    /// Partitions are written **in parallel** — each SQL worker writes
    /// its own partition, as an MPP engine's export does. Returns total
    /// bytes written.
    pub fn save_text(&self, dfs: &Dfs, dir: &str) -> Result<u64> {
        let totals = std::thread::scope(|scope| -> Result<Vec<u64>> {
            let handles: Vec<_> = self
                .partitions
                .iter()
                .enumerate()
                .map(|(i, part)| {
                    scope.spawn(move || -> Result<u64> {
                        let text = codec::encode_text_batch(part);
                        dfs.write_string(&format!("{dir}/part-{i:05}"), &text)?;
                        Ok(text.len() as u64)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| SqlmlError::Execution("save_text worker panicked".into()))?
                })
                .collect()
        })?;
        Ok(totals.iter().sum())
    }

    /// Load a table previously written by [`Self::save_text`] (or any
    /// directory of text part-files) with one partition per part-file.
    pub fn load_text(dfs: &Dfs, dir: &str, schema: Schema) -> Result<Self> {
        let prefix = format!("{dir}/");
        let files = dfs.list(&prefix);
        if files.is_empty() {
            return Err(SqlmlError::Dfs(format!("no part files under {dir}")));
        }
        let mut partitions = Vec::with_capacity(files.len());
        let mut homes = Vec::with_capacity(files.len());
        for f in files {
            let text = dfs.read_string(&f.path)?;
            partitions.push(Arc::new(codec::decode_text_batch(&text, &schema)?));
            // Home = node holding the file's first block replica.
            let home = dfs
                .block_locations(&f.path)?
                .first()
                .and_then(|b| b.nodes.first().copied())
                .map(sqlml_dfs::node_name)
                .unwrap_or_else(|| sqlml_dfs::node_name(0));
            homes.push(home);
        }
        Ok(PartitionedTable {
            schema,
            partitions,
            homes,
        })
    }

    /// Re-partition into `n` partitions (round-robin), e.g. to match the
    /// engine's worker count after loading a file with a different layout.
    pub fn repartition(&self, n: usize, nodes: &[String]) -> Self {
        PartitionedTable::partition_rows(self.schema.clone(), self.collect_rows(), n, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};
    use sqlml_dfs::DfsConfig;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::categorical("tag"),
        ])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| row![i as i64, if i % 2 == 0 { "even" } else { "odd" }])
            .collect()
    }

    #[test]
    fn round_robin_partitioning_balances() {
        let t = PartitionedTable::partition_rows(schema(), rows(10), 4, &[]);
        assert_eq!(t.num_partitions(), 4);
        assert_eq!(t.num_rows(), 10);
        let sizes: Vec<usize> = t.partitions().iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn homes_cycle_over_nodes() {
        let nodes = vec!["node-0".to_string(), "node-1".to_string()];
        let t = PartitionedTable::partition_rows(schema(), rows(4), 3, &nodes);
        assert_eq!(t.homes(), &["node-0", "node-1", "node-0"]);
    }

    #[test]
    fn collect_sorted_is_partition_order_independent() {
        let a = PartitionedTable::partition_rows(schema(), rows(9), 2, &[]);
        let b = PartitionedTable::partition_rows(schema(), rows(9), 5, &[]);
        assert_eq!(a.collect_sorted(), b.collect_sorted());
    }

    #[test]
    fn dfs_save_load_round_trip() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        let t = PartitionedTable::partition_rows(schema(), rows(23), 3, &[]);
        let bytes = t.save_text(&dfs, "/tables/t").unwrap();
        assert!(bytes > 0);
        let back = PartitionedTable::load_text(&dfs, "/tables/t", schema()).unwrap();
        assert_eq!(back.num_partitions(), 3);
        assert_eq!(back.collect_sorted(), t.collect_sorted());
    }

    #[test]
    fn load_missing_dir_errors() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        assert!(PartitionedTable::load_text(&dfs, "/nope", schema()).is_err());
    }

    #[test]
    fn repartition_preserves_rows() {
        let t = PartitionedTable::partition_rows(schema(), rows(17), 2, &[]);
        let r = t.repartition(5, &[]);
        assert_eq!(r.num_partitions(), 5);
        assert_eq!(r.collect_sorted(), t.collect_sorted());
    }

    #[test]
    fn approx_bytes_scales_with_rows() {
        let small = PartitionedTable::single(schema(), rows(10));
        let large = PartitionedTable::single(schema(), rows(100));
        assert!(large.approx_bytes() > small.approx_bytes() * 5);
    }
}
