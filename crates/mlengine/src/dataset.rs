//! In-memory partitioned datasets — the engine's RDD analogue.

use std::sync::Arc;

use sqlml_common::{Result, Row, SqlmlError};

/// One training example: numeric features plus a numeric label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPoint {
    pub label: f64,
    pub features: Vec<f64>,
}

impl LabeledPoint {
    pub fn new(label: f64, features: Vec<f64>) -> Self {
        LabeledPoint { label, features }
    }

    /// Interpret a row as a labeled point: `label_col` is the label, all
    /// other columns are features in order. Fails on non-numeric values —
    /// which is precisely why the paper recodes categorical variables
    /// before the hand-off.
    pub fn from_row(row: &Row, label_col: usize) -> Result<LabeledPoint> {
        if label_col >= row.len() {
            return Err(SqlmlError::Ml(format!(
                "label column {label_col} out of range for {}-column row",
                row.len()
            )));
        }
        let all = row.to_f64_vec()?;
        let label = all[label_col];
        let features = all
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != label_col)
            .map(|(_, v)| *v)
            .collect();
        Ok(LabeledPoint { label, features })
    }
}

/// A dataset partitioned across ML workers. Immutable and cheaply
/// clonable, like a cached RDD.
#[derive(Debug, Clone)]
pub struct Dataset {
    partitions: Vec<Arc<Vec<LabeledPoint>>>,
    dim: usize,
}

impl Dataset {
    /// Build from per-worker partitions, verifying dimensional
    /// consistency.
    pub fn new(partitions: Vec<Vec<LabeledPoint>>) -> Result<Self> {
        let dim = partitions
            .iter()
            .flat_map(|p| p.iter())
            .map(|p| p.features.len())
            .next()
            .unwrap_or(0);
        for p in partitions.iter().flat_map(|p| p.iter()) {
            if p.features.len() != dim {
                return Err(SqlmlError::Ml(format!(
                    "inconsistent feature dimension: {} vs {}",
                    p.features.len(),
                    dim
                )));
            }
        }
        Ok(Dataset {
            partitions: partitions.into_iter().map(Arc::new).collect(),
            dim,
        })
    }

    /// Build from partitioned rows with the given label column.
    pub fn from_rows(partitions: &[Vec<Row>], label_col: usize) -> Result<Self> {
        let mut out = Vec::with_capacity(partitions.len());
        for part in partitions {
            let mut points = Vec::with_capacity(part.len());
            for r in part {
                points.push(LabeledPoint::from_row(r, label_col)?);
            }
            out.push(points);
        }
        Dataset::new(out)
    }

    /// Single-partition dataset (tests and small data).
    pub fn from_points(points: Vec<LabeledPoint>) -> Result<Self> {
        Dataset::new(vec![points])
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn partition(&self, i: usize) -> &[LabeledPoint] {
        &self.partitions[i]
    }

    pub fn num_points(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Feature dimension (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Iterate over all points (partition order).
    pub fn iter(&self) -> impl Iterator<Item = &LabeledPoint> {
        self.partitions.iter().flat_map(|p| p.iter())
    }

    /// The distinct labels, sorted.
    pub fn labels(&self) -> Vec<f64> {
        let mut ls: Vec<f64> = Vec::new();
        for p in self.iter() {
            if !ls.contains(&p.label) {
                ls.push(p.label);
            }
        }
        ls.sort_by(f64::total_cmp);
        ls
    }

    /// Deterministic train/test split: every `k`-th point (by global
    /// index) goes to the test set, preserving partitioning for train.
    pub fn split_every_kth(&self, k: usize) -> (Dataset, Dataset) {
        assert!(k >= 2, "k must be at least 2");
        let mut train: Vec<Vec<LabeledPoint>> = Vec::new();
        let mut test = Vec::new();
        let mut idx = 0usize;
        for part in &self.partitions {
            let mut tr = Vec::new();
            for p in part.iter() {
                if idx.is_multiple_of(k) {
                    test.push(p.clone());
                } else {
                    tr.push(p.clone());
                }
                idx += 1;
            }
            train.push(tr);
        }
        (
            // lint:allow(panic) a split preserves the source dims
            Dataset::new(train).expect("dims preserved"),
            // lint:allow(panic) a split preserves the source dims
            Dataset::from_points(test).expect("dims preserved"),
        )
    }

    /// Per-feature (mean, stddev) — used for feature scaling.
    pub fn feature_stats(&self) -> Vec<(f64, f64)> {
        let n = self.num_points().max(1) as f64;
        let mut mean = vec![0.0; self.dim];
        for p in self.iter() {
            for (m, x) in mean.iter_mut().zip(&p.features) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; self.dim];
        for p in self.iter() {
            for ((v, m), x) in var.iter_mut().zip(&mean).zip(&p.features) {
                let d = x - m;
                *v += d * d;
            }
        }
        mean.into_iter()
            .zip(var)
            .map(|(m, v)| (m, (v / n).sqrt()))
            .collect()
    }
}

/// Per-feature standardization (zero mean, unit variance), as Spark
/// MLlib's linear trainers apply internally before SGD. Constant features
/// keep scale 1 so they pass through unchanged.
#[derive(Debug, Clone)]
pub struct Standardizer {
    pub mean: Vec<f64>,
    pub std: Vec<f64>,
}

impl Standardizer {
    pub fn fit(data: &Dataset) -> Standardizer {
        let stats = data.feature_stats();
        Standardizer {
            mean: stats.iter().map(|(m, _)| *m).collect(),
            std: stats
                .iter()
                .map(|(_, s)| if *s > 0.0 { *s } else { 1.0 })
                .collect(),
        }
    }

    /// Standardize every feature vector (labels untouched).
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let parts: Vec<Vec<LabeledPoint>> = (0..data.num_partitions())
            .map(|p| {
                data.partition(p)
                    .iter()
                    .map(|pt| {
                        let features = pt
                            .features
                            .iter()
                            .zip(self.mean.iter().zip(&self.std))
                            .map(|(x, (m, s))| (x - m) / s)
                            .collect();
                        LabeledPoint::new(pt.label, features)
                    })
                    .collect()
            })
            .collect();
        // lint:allow(panic) standardization preserves the source dims
        Dataset::new(parts).expect("dimensions preserved")
    }

    /// Map a linear model trained in standardized space back to raw
    /// feature space: `w_i = w'_i / s_i`, `b = b' − Σ w'_i·m_i/s_i`.
    pub fn unscale_linear(&self, weights: &[f64], intercept: f64) -> (Vec<f64>, f64) {
        let w: Vec<f64> = weights
            .iter()
            .zip(&self.std)
            .map(|(wi, s)| wi / s)
            .collect();
        let shift: f64 = weights
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(wi, (m, s))| wi * m / s)
            .sum();
        (w, intercept - shift)
    }
}

/// Run `f` over every partition in parallel (one thread per partition, as
/// each partition belongs to one ML worker) and collect the results in
/// partition order. The backbone of the distributed gradient/statistics
/// computations in the algorithm modules.
pub fn par_partitions<R, F>(d: &Dataset, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &[LabeledPoint]) -> R + Sync,
{
    let n = d.num_partitions();
    if n <= 1 {
        return (0..n).map(|i| f(i, d.partition(i))).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| scope.spawn(move || f(i, d.partition(i))))
            .collect();
        handles
            .into_iter()
            // lint:allow(panic) re-raise a worker panic on the caller
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;

    #[test]
    fn from_row_extracts_label_and_features() {
        let r = row![30i64, 1i64, 55.5, 2i64];
        let p = LabeledPoint::from_row(&r, 3).unwrap();
        assert_eq!(p.label, 2.0);
        assert_eq!(p.features, vec![30.0, 1.0, 55.5]);
        // Label in the middle works too.
        let p = LabeledPoint::from_row(&r, 1).unwrap();
        assert_eq!(p.label, 1.0);
        assert_eq!(p.features, vec![30.0, 55.5, 2.0]);
    }

    #[test]
    fn from_row_rejects_strings() {
        let r = row![30i64, "F", 1i64];
        assert!(LabeledPoint::from_row(&r, 2).is_err());
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let bad = Dataset::new(vec![vec![
            LabeledPoint::new(1.0, vec![1.0, 2.0]),
            LabeledPoint::new(0.0, vec![1.0]),
        ]]);
        assert!(bad.is_err());
    }

    #[test]
    fn labels_and_counts() {
        let d = Dataset::new(vec![
            vec![
                LabeledPoint::new(1.0, vec![0.0]),
                LabeledPoint::new(0.0, vec![1.0]),
            ],
            vec![LabeledPoint::new(1.0, vec![2.0])],
        ])
        .unwrap();
        assert_eq!(d.num_points(), 3);
        assert_eq!(d.num_partitions(), 2);
        assert_eq!(d.dim(), 1);
        assert_eq!(d.labels(), vec![0.0, 1.0]);
    }

    #[test]
    fn split_every_kth_partitions_points() {
        let points: Vec<LabeledPoint> = (0..10)
            .map(|i| LabeledPoint::new(i as f64, vec![i as f64]))
            .collect();
        let d = Dataset::new(vec![points[..5].to_vec(), points[5..].to_vec()]).unwrap();
        let (train, test) = d.split_every_kth(5);
        assert_eq!(test.num_points(), 2);
        assert_eq!(train.num_points(), 8);
        assert_eq!(train.num_partitions(), 2);
    }

    #[test]
    fn par_partitions_preserves_order() {
        let d = Dataset::new(vec![
            vec![LabeledPoint::new(0.0, vec![1.0])],
            vec![
                LabeledPoint::new(0.0, vec![2.0]),
                LabeledPoint::new(0.0, vec![3.0]),
            ],
            vec![],
        ])
        .unwrap();
        let sums = par_partitions(&d, |i, part| {
            (i, part.iter().map(|p| p.features[0]).sum::<f64>())
        });
        assert_eq!(sums, vec![(0, 1.0), (1, 5.0), (2, 0.0)]);
    }

    #[test]
    fn feature_stats_mean_and_std() {
        let d = Dataset::from_points(vec![
            LabeledPoint::new(0.0, vec![1.0, 10.0]),
            LabeledPoint::new(0.0, vec![3.0, 10.0]),
        ])
        .unwrap();
        let stats = d.feature_stats();
        assert_eq!(stats[0].0, 2.0);
        assert!((stats[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(stats[1], (10.0, 0.0));
    }
}
