//! The job runner: split scheduling, parallel ingestion, and training
//! dispatch.
//!
//! A job is launched with an [`InputFormat`] and a [`TrainingSpec`] (the
//! "command and arguments" the paper's coordinator forwards). The runner
//!
//! 1. asks the format for `m = n·k` splits,
//! 2. assigns splits to the `n` ML workers **preferring colocated
//!    workers** (split locations vs. worker nodes — step 3 of the paper's
//!    Figure 2),
//! 3. has each worker drain its splits through `RecordReader`s in
//!    parallel, building an in-memory partitioned [`Dataset`] (the RDD
//!    analogue), and
//! 4. trains the requested algorithm on the dataset.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlml_common::{Result, Row, SqlmlError};

use crate::dataset::Dataset;
use crate::input::{InputFormat, InputSplit};
use crate::kmeans::{KMeansModel, KMeansTrainer};
use crate::linreg::{LinRegModel, LinRegTrainer};
use crate::logreg::{LogRegModel, LogRegTrainer};
use crate::naive_bayes::{NaiveBayesModel, NaiveBayesTrainer};
use crate::svm::{SvmModel, SvmTrainer};
use crate::tree::{TreeModel, TreeTrainer};

/// ML cluster configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Number of ML workers (the paper ran 6 Spark workers per server).
    pub num_workers: usize,
    /// Node names hosting the workers (worker `i` lives on
    /// `worker_nodes[i % len]`). Empty means synthetic `node-i` names.
    pub worker_nodes: Vec<String>,
    /// The paper's `k`: requested splits `m = n·k`.
    pub splits_per_worker: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            num_workers: 4,
            worker_nodes: Vec::new(),
            splits_per_worker: 1,
        }
    }
}

impl JobConfig {
    pub fn worker_node(&self, worker: usize) -> String {
        if self.worker_nodes.is_empty() {
            sqlml_dfs::node_name(worker)
        } else {
            self.worker_nodes[worker % self.worker_nodes.len()].clone()
        }
    }
}

/// What happened during ingestion — the measurements behind the paper's
/// "input for ml" bars.
#[derive(Debug, Clone)]
pub struct IngestReport {
    pub num_splits: usize,
    /// Splits whose assigned worker's node was in the split's preferred
    /// locations (data-local reads).
    pub local_splits: usize,
    pub rows: usize,
    pub duration: Duration,
}

/// The training command: algorithm + hyper-parameters + label column.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainingSpec {
    SvmSgd {
        label_col: usize,
        iterations: usize,
        step_size: f64,
        reg_param: f64,
        mini_batch_fraction: f64,
    },
    LogReg {
        label_col: usize,
        iterations: usize,
        step_size: f64,
        reg_param: f64,
    },
    LinReg {
        label_col: usize,
        iterations: usize,
        step_size: f64,
    },
    NaiveBayes {
        label_col: usize,
    },
    DecisionTree {
        label_col: usize,
        max_depth: usize,
    },
    KMeans {
        k: usize,
        max_iterations: usize,
    },
}

impl TrainingSpec {
    /// Parse a command string like
    /// `svm label=3 iterations=50 step=1.0 reg=0.01` — the "command and
    /// arguments of the target ML algorithm" that flow through the
    /// coordinator protocol.
    pub fn parse(command: &str) -> Result<TrainingSpec> {
        let mut parts = command.split_whitespace();
        let algo = parts
            .next()
            .ok_or_else(|| SqlmlError::Ml("empty ML command".into()))?;
        let mut kv: HashMap<&str, &str> = HashMap::new();
        for p in parts {
            let (k, v) = p
                .split_once('=')
                .ok_or_else(|| SqlmlError::Ml(format!("bad ML argument {p:?}")))?;
            kv.insert(k, v);
        }
        let get_usize = |k: &str, default: usize| -> Result<usize> {
            kv.get(k)
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| SqlmlError::Ml(format!("bad {k}: {e}")))
                })
                .unwrap_or(Ok(default))
        };
        let get_f64 = |k: &str, default: f64| -> Result<f64> {
            kv.get(k)
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|e| SqlmlError::Ml(format!("bad {k}: {e}")))
                })
                .unwrap_or(Ok(default))
        };
        match algo.to_ascii_lowercase().as_str() {
            "svm" => Ok(TrainingSpec::SvmSgd {
                label_col: get_usize("label", 0)?,
                iterations: get_usize("iterations", 100)?,
                step_size: get_f64("step", 1.0)?,
                reg_param: get_f64("reg", 0.01)?,
                mini_batch_fraction: get_f64("batch", 1.0)?,
            }),
            "logreg" => Ok(TrainingSpec::LogReg {
                label_col: get_usize("label", 0)?,
                iterations: get_usize("iterations", 200)?,
                step_size: get_f64("step", 1.0)?,
                reg_param: get_f64("reg", 0.001)?,
            }),
            "linreg" => Ok(TrainingSpec::LinReg {
                label_col: get_usize("label", 0)?,
                iterations: get_usize("iterations", 300)?,
                step_size: get_f64("step", 0.1)?,
            }),
            "naivebayes" | "nb" => Ok(TrainingSpec::NaiveBayes {
                label_col: get_usize("label", 0)?,
            }),
            "tree" => Ok(TrainingSpec::DecisionTree {
                label_col: get_usize("label", 0)?,
                max_depth: get_usize("depth", 5)?,
            }),
            "kmeans" => Ok(TrainingSpec::KMeans {
                k: get_usize("k", 2)?,
                max_iterations: get_usize("iterations", 50)?,
            }),
            other => Err(SqlmlError::Ml(format!("unknown ML algorithm {other:?}"))),
        }
    }

    /// The label column this spec trains against (k-means is
    /// unsupervised; it uses column 0 as a feature like any other — the
    /// runner treats its `label_col` as "none").
    pub fn label_col(&self) -> Option<usize> {
        match self {
            TrainingSpec::SvmSgd { label_col, .. }
            | TrainingSpec::LogReg { label_col, .. }
            | TrainingSpec::LinReg { label_col, .. }
            | TrainingSpec::NaiveBayes { label_col }
            | TrainingSpec::DecisionTree { label_col, .. } => Some(*label_col),
            TrainingSpec::KMeans { .. } => None,
        }
    }
}

/// A trained model of any supported kind.
#[derive(Debug, Clone)]
pub enum TrainedModel {
    Svm(SvmModel),
    LogReg(LogRegModel),
    LinReg(LinRegModel),
    NaiveBayes(NaiveBayesModel),
    Tree(TreeModel),
    KMeans(KMeansModel),
}

impl TrainedModel {
    /// Predict a label / value / cluster id for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        match self {
            TrainedModel::Svm(m) => m.predict(features),
            TrainedModel::LogReg(m) => m.predict(features),
            TrainedModel::LinReg(m) => m.predict(features),
            TrainedModel::NaiveBayes(m) => m.predict(features),
            TrainedModel::Tree(m) => m.predict(features),
            TrainedModel::KMeans(m) => m.predict(features) as f64,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            TrainedModel::Svm(_) => "svm",
            TrainedModel::LogReg(_) => "logreg",
            TrainedModel::LinReg(_) => "linreg",
            TrainedModel::NaiveBayes(_) => "naivebayes",
            TrainedModel::Tree(_) => "tree",
            TrainedModel::KMeans(_) => "kmeans",
        }
    }
}

/// Outcome of a full job: the model plus stage timings.
#[derive(Debug)]
pub struct JobOutcome {
    pub model: TrainedModel,
    pub ingest: IngestReport,
    pub train_duration: Duration,
}

/// Runs ML jobs against a fixed cluster configuration.
#[derive(Debug, Clone, Default)]
pub struct JobRunner {
    pub config: JobConfig,
}

impl JobRunner {
    pub fn new(config: JobConfig) -> Self {
        JobRunner { config }
    }

    /// Assign splits to workers, preferring locality; returns per-worker
    /// split lists and the number of local assignments.
    fn assign_splits(
        &self,
        splits: Vec<Arc<dyn InputSplit>>,
    ) -> (Vec<Vec<Arc<dyn InputSplit>>>, usize) {
        let n = self.config.num_workers;
        let nodes: Vec<String> = (0..n).map(|w| self.config.worker_node(w)).collect();
        let mut assigned: Vec<Vec<Arc<dyn InputSplit>>> = (0..n).map(|_| Vec::new()).collect();
        let mut local = 0usize;
        for split in splits {
            let locations = split.locations();
            // Least-loaded among colocated workers, else least-loaded.
            let colocated = (0..n)
                .filter(|w| locations.iter().any(|l| *l == nodes[*w]))
                .min_by_key(|w| assigned[*w].len());
            let target = match colocated {
                Some(w) => {
                    local += 1;
                    w
                }
                // lint:allow(panic) n is the worker count, checked > 0 above
                None => (0..n).min_by_key(|w| assigned[*w].len()).expect("n > 0"),
            };
            assigned[target].push(split);
        }
        (assigned, local)
    }

    /// Ingest all rows through the format: one partition per worker.
    pub fn ingest_rows(&self, format: &dyn InputFormat) -> Result<(Vec<Vec<Row>>, IngestReport)> {
        let start = Instant::now();
        let requested = self.config.num_workers * self.config.splits_per_worker.max(1);
        let splits = format.get_splits(requested)?;
        let num_splits = splits.len();
        let (assigned, local_splits) = self.assign_splits(splits);
        let worker_nodes: Vec<String> = (0..self.config.num_workers)
            .map(|w| self.config.worker_node(w))
            .collect();

        // Each worker drains its splits on its own thread, and reads its
        // splits concurrently (one reader task per split, as a real
        // executor runs multiple tasks). Concurrency matters for
        // streaming formats: a sender may wait for *all* its readers to
        // connect before emitting anything, so sequential reads would
        // deadlock the rendezvous.
        let partitions: Vec<Vec<Row>> = std::thread::scope(|scope| -> Result<Vec<Vec<Row>>> {
            let handles: Vec<_> = assigned
                .into_iter()
                .enumerate()
                .map(|(w, splits)| {
                    let node = &worker_nodes[w];
                    scope.spawn(move || -> Result<Vec<Row>> {
                        let chunks: Vec<Vec<Row>> =
                            std::thread::scope(|inner| -> Result<Vec<Vec<Row>>> {
                                let readers: Vec<_> = splits
                                    .iter()
                                    .map(|s| {
                                        inner.spawn(move || -> Result<Vec<Row>> {
                                            let mut rows = Vec::new();
                                            let mut reader =
                                                format.create_reader_at(s.as_ref(), node)?;
                                            // Batched pull: streaming
                                            // readers hand over whole
                                            // decoded frames per call.
                                            while reader.next_batch(&mut rows, usize::MAX)? > 0 {}
                                            Ok(rows)
                                        })
                                    })
                                    .collect();
                                readers
                                    .into_iter()
                                    .map(|h| {
                                        h.join().map_err(|_| {
                                            SqlmlError::Ml("split reader panicked".into())
                                        })?
                                    })
                                    .collect()
                            })?;
                        Ok(chunks.into_iter().flatten().collect())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| SqlmlError::Ml("ML worker thread panicked".into()))?
                })
                .collect()
        })?;

        let rows = partitions.iter().map(|p| p.len()).sum();
        Ok((
            partitions,
            IngestReport {
                num_splits,
                local_splits,
                rows,
                duration: start.elapsed(),
            },
        ))
    }

    /// Ingest into a [`Dataset`] with the given label column (`None`
    /// treats every column as a feature with label 0 — the unsupervised
    /// path).
    pub fn ingest_dataset(
        &self,
        format: &dyn InputFormat,
        label_col: Option<usize>,
    ) -> Result<(Dataset, IngestReport)> {
        let (parts, report) = self.ingest_rows(format)?;
        let dataset = match label_col {
            Some(lc) => Dataset::from_rows(&parts, lc)?,
            None => {
                let mut out = Vec::with_capacity(parts.len());
                for part in &parts {
                    let mut points = Vec::with_capacity(part.len());
                    for r in part {
                        points.push(crate::dataset::LabeledPoint::new(0.0, r.to_f64_vec()?));
                    }
                    out.push(points);
                }
                Dataset::new(out)?
            }
        };
        Ok((dataset, report))
    }

    /// Full job: ingest + train.
    pub fn run(&self, format: &dyn InputFormat, spec: &TrainingSpec) -> Result<JobOutcome> {
        let (dataset, ingest) = self.ingest_dataset(format, spec.label_col())?;
        let start = Instant::now();
        let model = self.train(&dataset, spec)?;
        Ok(JobOutcome {
            model,
            ingest,
            train_duration: start.elapsed(),
        })
    }

    /// Train on an already-ingested dataset.
    ///
    /// For the binary classifiers, label sets of exactly two distinct
    /// values are normalized onto {0, 1} by label order — so data whose
    /// label column was *recoded* (consecutive codes starting at 1, per
    /// §2.1) trains without an extra shift step, just as an MLlib user
    /// would remap a 1/2-coded class column.
    pub fn train(&self, dataset: &Dataset, spec: &TrainingSpec) -> Result<TrainedModel> {
        let dataset = match spec {
            TrainingSpec::SvmSgd { .. } | TrainingSpec::LogReg { .. } => {
                std::borrow::Cow::Owned(binarize_labels(dataset)?)
            }
            _ => std::borrow::Cow::Borrowed(dataset),
        };
        let dataset: &Dataset = &dataset;
        Ok(match spec {
            TrainingSpec::SvmSgd {
                iterations,
                step_size,
                reg_param,
                mini_batch_fraction,
                ..
            } => TrainedModel::Svm(
                SvmTrainer {
                    iterations: *iterations,
                    step_size: *step_size,
                    reg_param: *reg_param,
                    scale_features: true,
                    mini_batch_fraction: *mini_batch_fraction,
                }
                .train(dataset)?,
            ),
            TrainingSpec::LogReg {
                iterations,
                step_size,
                reg_param,
                ..
            } => TrainedModel::LogReg(
                LogRegTrainer {
                    iterations: *iterations,
                    step_size: *step_size,
                    reg_param: *reg_param,
                    scale_features: true,
                }
                .train(dataset)?,
            ),
            TrainingSpec::LinReg {
                iterations,
                step_size,
                ..
            } => TrainedModel::LinReg(
                LinRegTrainer {
                    iterations: *iterations,
                    step_size: *step_size,
                    reg_param: 0.0,
                }
                .train(dataset)?,
            ),
            TrainingSpec::NaiveBayes { .. } => {
                TrainedModel::NaiveBayes(NaiveBayesTrainer.train(dataset)?)
            }
            TrainingSpec::DecisionTree { max_depth, .. } => TrainedModel::Tree(
                TreeTrainer {
                    max_depth: *max_depth,
                    ..Default::default()
                }
                .train(dataset)?,
            ),
            TrainingSpec::KMeans { k, max_iterations } => TrainedModel::KMeans(
                KMeansTrainer {
                    k: *k,
                    max_iterations: *max_iterations,
                    ..Default::default()
                }
                .train(dataset)?,
            ),
        })
    }
}

/// Map a two-valued label set onto {0, 1} (smaller label → 0). Datasets
/// already labeled {0, 1} pass through unchanged (and unclassifiable
/// label sets are left for the trainer's own validation to reject).
fn binarize_labels(data: &Dataset) -> Result<Dataset> {
    let labels = data.labels();
    if labels == [0.0, 1.0] || labels.len() > 2 {
        return Ok(data.clone());
    }
    let map = |l: f64| -> f64 {
        if labels.len() == 1 {
            // Degenerate single-class data: call it class 0.
            0.0
        } else if l == labels[0] {
            0.0
        } else {
            1.0
        }
    };
    let parts: Vec<Vec<crate::dataset::LabeledPoint>> = (0..data.num_partitions())
        .map(|p| {
            data.partition(p)
                .iter()
                .map(|pt| crate::dataset::LabeledPoint::new(map(pt.label), pt.features.clone()))
                .collect()
        })
        .collect();
    Dataset::new(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::MemoryInputFormat;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field, Schema};
    use sqlml_common::SplitMix64;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("x", DataType::Double),
            Field::new("y", DataType::Double),
            Field::new("label", DataType::Int),
        ])
    }

    fn blob_format(parts: usize, n: usize, seed: u64) -> MemoryInputFormat {
        let mut rng = SplitMix64::new(seed);
        let mut partitions: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
        for i in 0..n {
            let cls = (i % 2) as i64;
            let c = if cls == 0 { -2.0 } else { 2.0 };
            partitions[i % parts].push(row![
                c + rng.next_gaussian() * 0.4,
                c + rng.next_gaussian() * 0.4,
                cls
            ]);
        }
        MemoryInputFormat::new(schema(), partitions)
    }

    #[test]
    fn command_parsing() {
        assert_eq!(
            TrainingSpec::parse("svm label=2 iterations=50 step=0.5 reg=0.1 batch=0.25").unwrap(),
            TrainingSpec::SvmSgd {
                label_col: 2,
                iterations: 50,
                step_size: 0.5,
                reg_param: 0.1,
                mini_batch_fraction: 0.25
            }
        );
        assert_eq!(
            TrainingSpec::parse("kmeans k=3").unwrap(),
            TrainingSpec::KMeans {
                k: 3,
                max_iterations: 50
            }
        );
        assert!(TrainingSpec::parse("quantum label=1").is_err());
        assert!(TrainingSpec::parse("svm label").is_err());
        assert!(TrainingSpec::parse("").is_err());
    }

    #[test]
    fn end_to_end_svm_job_through_input_format() {
        let fmt = blob_format(3, 300, 51);
        let runner = JobRunner::new(JobConfig {
            num_workers: 3,
            ..Default::default()
        });
        let spec = TrainingSpec::parse("svm label=2 iterations=60").unwrap();
        let outcome = runner.run(&fmt, &spec).unwrap();
        assert_eq!(outcome.ingest.rows, 300);
        assert_eq!(outcome.model.kind(), "svm");
        // Model must separate the blobs.
        assert_eq!(outcome.model.predict(&[2.0, 2.0]), 1.0);
        assert_eq!(outcome.model.predict(&[-2.0, -2.0]), 0.0);
    }

    #[test]
    fn locality_aware_assignment_prefers_colocated_workers() {
        // 4 splits homed on node-0..node-3; 4 workers on the same nodes.
        let fmt = blob_format(4, 40, 53);
        let runner = JobRunner::new(JobConfig {
            num_workers: 4,
            worker_nodes: (0..4).map(sqlml_dfs::node_name).collect(),
            ..Default::default()
        });
        let (_, report) = runner.ingest_rows(&fmt).unwrap();
        assert_eq!(report.num_splits, 4);
        assert_eq!(report.local_splits, 4, "all splits should read locally");
    }

    #[test]
    fn misaligned_nodes_yield_no_local_splits() {
        let fmt = blob_format(4, 40, 55); // splits on node-0..3
        let runner = JobRunner::new(JobConfig {
            num_workers: 4,
            worker_nodes: (10..14).map(sqlml_dfs::node_name).collect(),
            ..Default::default()
        });
        let (_, report) = runner.ingest_rows(&fmt).unwrap();
        assert_eq!(report.local_splits, 0);
        assert_eq!(report.rows, 40);
    }

    #[test]
    fn more_splits_than_workers_balances_load() {
        let fmt = blob_format(8, 80, 57);
        let runner = JobRunner::new(JobConfig {
            num_workers: 2,
            worker_nodes: vec!["node-0".into(), "node-1".into()],
            splits_per_worker: 4,
        });
        let (parts, report) = runner.ingest_rows(&fmt).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(report.num_splits, 8);
        assert_eq!(parts[0].len() + parts[1].len(), 80);
        // Neither worker should be starved.
        assert!(parts[0].len() >= 30 && parts[1].len() >= 30);
    }

    #[test]
    fn kmeans_job_is_unsupervised() {
        let fmt = blob_format(2, 100, 59);
        let runner = JobRunner::new(JobConfig {
            num_workers: 2,
            ..Default::default()
        });
        let outcome = runner
            .run(
                &fmt,
                &TrainingSpec::parse("kmeans k=2 iterations=30").unwrap(),
            )
            .unwrap();
        match outcome.model {
            TrainedModel::KMeans(m) => {
                // Features are (x, y, label); the blobs sit at ±2.
                assert_eq!(m.centroids.len(), 2);
            }
            other => panic!("unexpected model {other:?}"),
        }
    }

    #[test]
    fn recoded_one_two_labels_train_binary_classifiers() {
        // Labels 1/2, the output of §2.1 recoding.
        let mut rng = SplitMix64::new(67);
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                let cls = (i % 2) as i64; // 0 or 1
                let c = if cls == 0 { -2.0 } else { 2.0 };
                row![
                    c + rng.next_gaussian() * 0.3,
                    c + rng.next_gaussian() * 0.3,
                    cls + 1 // recoded: 1 or 2
                ]
            })
            .collect();
        let fmt = MemoryInputFormat::new(schema(), vec![rows]);
        let runner = JobRunner::new(JobConfig {
            num_workers: 1,
            ..Default::default()
        });
        let outcome = runner
            .run(
                &fmt,
                &TrainingSpec::parse("svm label=2 iterations=50").unwrap(),
            )
            .unwrap();
        // Class "2" (around +2) maps to 1.
        assert_eq!(outcome.model.predict(&[2.0, 2.0]), 1.0);
        assert_eq!(outcome.model.predict(&[-2.0, -2.0]), 0.0);
    }

    #[test]
    fn truly_bad_labels_still_rejected() {
        let rows = vec![
            row![1.0, 1.0, 5i64],
            row![2.0, 2.0, 9i64],
            row![0.0, 0.0, 11i64],
        ];
        let fmt = MemoryInputFormat::new(schema(), vec![rows]);
        let runner = JobRunner::new(JobConfig {
            num_workers: 1,
            ..Default::default()
        });
        assert!(runner
            .run(&fmt, &TrainingSpec::parse("svm label=2").unwrap())
            .is_err());
    }

    #[test]
    fn all_model_kinds_train_through_the_runner() {
        let fmt = blob_format(2, 200, 61);
        let runner = JobRunner::new(JobConfig {
            num_workers: 2,
            ..Default::default()
        });
        for cmd in [
            "svm label=2 iterations=20",
            "logreg label=2 iterations=20",
            "linreg label=2 iterations=20",
            "nb label=2",
            "tree label=2 depth=3",
            "kmeans k=2 iterations=5",
        ] {
            let spec = TrainingSpec::parse(cmd).unwrap();
            let outcome = runner.run(&fmt, &spec).unwrap();
            // Each model must at least produce finite predictions.
            // Supervised models see 2 features (label column removed);
            // the unsupervised k-means sees all 3 columns.
            let features: &[f64] = if spec.label_col().is_some() {
                &[1.0, 1.0]
            } else {
                &[1.0, 1.0, 0.0]
            };
            let p = outcome.model.predict(features);
            assert!(p.is_finite(), "{cmd} produced {p}");
        }
    }
}
