//! Linear regression (least squares) with distributed full-batch gradient
//! descent and optional L2 (ridge) regularization.

use sqlml_common::{Result, SqlmlError};

use crate::dataset::{par_partitions, Dataset};
use crate::linalg::{axpy, dot};

/// A trained linear regressor `ŷ = w·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinRegModel {
    pub weights: Vec<f64>,
    pub intercept: f64,
}

impl LinRegModel {
    pub fn predict(&self, features: &[f64]) -> f64 {
        dot(&self.weights, features) + self.intercept
    }
}

#[derive(Debug, Clone)]
pub struct LinRegTrainer {
    pub iterations: usize,
    pub step_size: f64,
    pub reg_param: f64,
}

impl Default for LinRegTrainer {
    fn default() -> Self {
        LinRegTrainer {
            iterations: 300,
            step_size: 0.1,
            reg_param: 0.0,
        }
    }
}

impl LinRegTrainer {
    pub fn train(&self, data: &Dataset) -> Result<LinRegModel> {
        if data.num_points() == 0 {
            return Err(SqlmlError::Ml("linreg: empty training set".into()));
        }
        let dim = data.dim();
        let n = data.num_points() as f64;
        let mut w = vec![0.0; dim];
        let mut b = 0.0;

        for _ in 0..self.iterations {
            let partials = par_partitions(data, |_, part| {
                let mut gw = vec![0.0; dim];
                let mut gb = 0.0;
                for p in part {
                    let err = dot(&w, &p.features) + b - p.label;
                    axpy(err, &p.features, &mut gw);
                    gb += err;
                }
                (gw, gb)
            });
            let mut gw = vec![0.0; dim];
            let mut gb = 0.0;
            for (pgw, pgb) in partials {
                axpy(1.0, &pgw, &mut gw);
                gb += pgb;
            }
            for (wi, gi) in w.iter_mut().zip(&gw) {
                *wi -= self.step_size * (gi / n + self.reg_param * *wi);
            }
            b -= self.step_size * gb / n;
        }
        Ok(LinRegModel {
            weights: w,
            intercept: b,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledPoint;
    use sqlml_common::SplitMix64;

    #[test]
    fn recovers_a_linear_relationship() {
        // y = 3x1 - 2x2 + 5 + noise
        let mut rng = SplitMix64::new(17);
        let points: Vec<LabeledPoint> = (0..500)
            .map(|_| {
                let x1 = rng.next_gaussian();
                let x2 = rng.next_gaussian();
                let y = 3.0 * x1 - 2.0 * x2 + 5.0 + rng.next_gaussian() * 0.01;
                LabeledPoint::new(y, vec![x1, x2])
            })
            .collect();
        let data = Dataset::new(vec![points[..250].to_vec(), points[250..].to_vec()]).unwrap();
        let m = LinRegTrainer::default().train(&data).unwrap();
        assert!((m.weights[0] - 3.0).abs() < 0.05, "{:?}", m);
        assert!((m.weights[1] + 2.0).abs() < 0.05, "{:?}", m);
        assert!((m.intercept - 5.0).abs() < 0.05, "{:?}", m);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let mut rng = SplitMix64::new(19);
        let points: Vec<LabeledPoint> = (0..200)
            .map(|_| {
                let x = rng.next_gaussian();
                LabeledPoint::new(4.0 * x, vec![x])
            })
            .collect();
        let data = Dataset::from_points(points).unwrap();
        let free = LinRegTrainer::default().train(&data).unwrap();
        let ridge = LinRegTrainer {
            reg_param: 1.0,
            ..Default::default()
        }
        .train(&data)
        .unwrap();
        assert!(ridge.weights[0].abs() < free.weights[0].abs());
    }

    #[test]
    fn empty_input_is_an_error() {
        let empty = Dataset::from_points(vec![]).unwrap();
        assert!(LinRegTrainer::default().train(&empty).is_err());
    }
}
