//! Gaussian naive Bayes. Class statistics (counts, per-feature mean and
//! variance) are computed in a single parallel pass over the partitions
//! and merged exactly, so the model is independent of partitioning.

use std::collections::BTreeMap;

use sqlml_common::{Result, SqlmlError};

use crate::dataset::{par_partitions, Dataset};

/// Per-class Gaussian statistics.
#[derive(Debug, Clone)]
struct ClassStats {
    count: f64,
    mean: Vec<f64>,
    var: Vec<f64>,
}

/// A trained Gaussian naive Bayes classifier over arbitrary numeric
/// class labels.
#[derive(Debug, Clone)]
pub struct NaiveBayesModel {
    /// (label, prior, mean, var) per class, label-sorted.
    classes: Vec<(f64, f64, Vec<f64>, Vec<f64>)>,
}

/// Variance floor to keep degenerate (constant) features finite.
const VAR_EPS: f64 = 1e-9;

impl NaiveBayesModel {
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut best = (f64::NEG_INFINITY, 0.0);
        for (label, prior, mean, var) in &self.classes {
            let mut log_p = prior.ln();
            for ((x, m), v) in features.iter().zip(mean).zip(var) {
                let v = v.max(VAR_EPS);
                let d = x - m;
                log_p += -0.5 * ((2.0 * std::f64::consts::PI * v).ln() + d * d / v);
            }
            if log_p > best.0 {
                best = (log_p, *label);
            }
        }
        best.1
    }

    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }
}

#[derive(Debug, Clone, Default)]
pub struct NaiveBayesTrainer;

impl NaiveBayesTrainer {
    pub fn train(&self, data: &Dataset) -> Result<NaiveBayesModel> {
        if data.num_points() == 0 {
            return Err(SqlmlError::Ml("naive bayes: empty training set".into()));
        }
        let dim = data.dim();

        // Map: per-partition sums and squared sums per class. Labels key a
        // BTreeMap via their bit pattern for exact grouping.
        type Partial = BTreeMap<u64, (f64, Vec<f64>, Vec<f64>)>;
        let partials: Vec<Partial> = par_partitions(data, |_, part| {
            let mut m: Partial = BTreeMap::new();
            for p in part {
                let e = m
                    .entry(p.label.to_bits())
                    .or_insert_with(|| (0.0, vec![0.0; dim], vec![0.0; dim]));
                e.0 += 1.0;
                for ((s, sq), x) in e.1.iter_mut().zip(e.2.iter_mut()).zip(&p.features) {
                    *s += x;
                    *sq += x * x;
                }
            }
            m
        });

        // Reduce: merge sums exactly.
        let mut merged: BTreeMap<u64, (f64, Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for part in partials {
            for (k, (c, s, sq)) in part {
                let e = merged
                    .entry(k)
                    .or_insert_with(|| (0.0, vec![0.0; dim], vec![0.0; dim]));
                e.0 += c;
                for (a, b) in e.1.iter_mut().zip(&s) {
                    *a += b;
                }
                for (a, b) in e.2.iter_mut().zip(&sq) {
                    *a += b;
                }
            }
        }

        let total: f64 = merged.values().map(|(c, _, _)| c).sum();
        let classes = merged
            .into_iter()
            .map(|(bits, (count, sum, sqsum))| {
                let stats = ClassStats {
                    count,
                    mean: sum.iter().map(|s| s / count).collect(),
                    var: sqsum
                        .iter()
                        .zip(&sum)
                        .map(|(sq, s)| (sq / count - (s / count) * (s / count)).max(0.0))
                        .collect(),
                };
                (
                    f64::from_bits(bits),
                    stats.count / total,
                    stats.mean,
                    stats.var,
                )
            })
            .collect();
        Ok(NaiveBayesModel { classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledPoint;
    use sqlml_common::SplitMix64;

    fn three_blobs(n: usize, seed: u64, parts: usize) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let centers = [(-4.0, 0.0), (0.0, 4.0), (4.0, 0.0)];
        let mut out: Vec<Vec<LabeledPoint>> = (0..parts).map(|_| Vec::new()).collect();
        for i in 0..n {
            let c = i % 3;
            let (cx, cy) = centers[c];
            out[i % parts].push(LabeledPoint::new(
                c as f64,
                vec![
                    cx + rng.next_gaussian() * 0.7,
                    cy + rng.next_gaussian() * 0.7,
                ],
            ));
        }
        Dataset::new(out).unwrap()
    }

    #[test]
    fn classifies_three_gaussian_blobs() {
        let data = three_blobs(600, 23, 3);
        let model = NaiveBayesTrainer.train(&data).unwrap();
        assert_eq!(model.num_classes(), 3);
        let acc = data
            .iter()
            .filter(|p| model.predict(&p.features) == p.label)
            .count() as f64
            / data.num_points() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn partitioning_does_not_change_the_model() {
        let m1 = NaiveBayesTrainer.train(&three_blobs(300, 29, 1)).unwrap();
        let m8 = NaiveBayesTrainer.train(&three_blobs(300, 29, 8)).unwrap();
        for x in [-3.0, -1.0, 0.0, 1.0, 3.0] {
            for y in [-1.0, 2.0, 5.0] {
                assert_eq!(m1.predict(&[x, y]), m8.predict(&[x, y]));
            }
        }
    }

    #[test]
    fn degenerate_constant_feature_is_survivable() {
        let data = Dataset::from_points(vec![
            LabeledPoint::new(0.0, vec![1.0, 5.0]),
            LabeledPoint::new(0.0, vec![1.0, 6.0]),
            LabeledPoint::new(1.0, vec![1.0, 50.0]),
            LabeledPoint::new(1.0, vec![1.0, 51.0]),
        ])
        .unwrap();
        let m = NaiveBayesTrainer.train(&data).unwrap();
        assert_eq!(m.predict(&[1.0, 5.5]), 0.0);
        assert_eq!(m.predict(&[1.0, 50.5]), 1.0);
    }

    #[test]
    fn empty_input_is_an_error() {
        let empty = Dataset::from_points(vec![]).unwrap();
        assert!(NaiveBayesTrainer.train(&empty).is_err());
    }
}
