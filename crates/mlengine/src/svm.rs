//! Linear SVM trained with distributed (mini-batch) stochastic gradient
//! descent — the `SVMWithSGD` of the paper's evaluation.
//!
//! Each iteration computes the hinge-loss subgradient in parallel over the
//! dataset's partitions (the map side), sums the partial gradients (the
//! reduce side), and takes a step with an `O(1/√t)` learning-rate decay
//! and L2 regularization — the same scheme as Spark MLlib's
//! `SVMWithSGD`.

use sqlml_common::{Result, SqlmlError};

use crate::dataset::{par_partitions, Dataset};
use crate::linalg::{axpy, dot};

/// A trained linear SVM: `sign(w·x + b)` with labels {0, 1}.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmModel {
    pub weights: Vec<f64>,
    pub intercept: f64,
}

impl SvmModel {
    /// Raw margin `w·x + b`.
    pub fn margin(&self, features: &[f64]) -> f64 {
        dot(&self.weights, features) + self.intercept
    }

    /// Predicted class label (0.0 or 1.0).
    pub fn predict(&self, features: &[f64]) -> f64 {
        if self.margin(features) >= 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

/// SVM trainer configuration.
#[derive(Debug, Clone)]
pub struct SvmTrainer {
    pub iterations: usize,
    pub step_size: f64,
    pub reg_param: f64,
    /// Standardize features before SGD and un-scale the weights after,
    /// as MLlib's linear trainers do. Keeps SGD stable on raw warehouse
    /// features (ages, dollar amounts, ...).
    pub scale_features: bool,
    /// MLlib's `miniBatchFraction`: each iteration samples roughly this
    /// fraction of the points for the gradient. Sampling is a
    /// deterministic hash of (point content, iteration), so the *sample*
    /// is independent of partitioning (floating-point summation order can
    /// still drift the weights by a small epsilon). 1.0 = full batch.
    pub mini_batch_fraction: f64,
}

impl Default for SvmTrainer {
    fn default() -> Self {
        SvmTrainer {
            iterations: 100,
            step_size: 1.0,
            reg_param: 0.01,
            scale_features: true,
            mini_batch_fraction: 1.0,
        }
    }
}

impl SvmTrainer {
    /// Train on a dataset whose labels are in {0, 1} (the recoded-and-
    /// shifted convention; internally mapped to ±1 for the hinge loss).
    pub fn train(&self, data: &Dataset) -> Result<SvmModel> {
        if data.num_points() == 0 {
            return Err(SqlmlError::Ml("SVM: empty training set".into()));
        }
        for p in data.iter() {
            if p.label != 0.0 && p.label != 1.0 {
                return Err(SqlmlError::Ml(format!(
                    "SVM expects labels in {{0,1}}, found {}",
                    p.label
                )));
            }
        }
        if self.scale_features {
            let scaler = crate::dataset::Standardizer::fit(data);
            let scaled = scaler.transform(data);
            let raw = self.train_raw(&scaled);
            let (weights, intercept) = scaler.unscale_linear(&raw.weights, raw.intercept);
            return Ok(SvmModel { weights, intercept });
        }
        Ok(self.train_raw(data))
    }

    fn train_raw(&self, data: &Dataset) -> SvmModel {
        let dim = data.dim();
        let n = data.num_points() as f64;
        let mut w = vec![0.0; dim];
        let mut b = 0.0;

        let fraction = self.mini_batch_fraction.clamp(f64::MIN_POSITIVE, 1.0);
        for t in 1..=self.iterations {
            // Map: partial hinge subgradients per partition, over this
            // iteration's (deterministic) mini-batch sample.
            let partials = par_partitions(data, |_, part| {
                let mut gw = vec![0.0; dim];
                let mut gb = 0.0;
                let mut sampled = 0u64;
                for p in part {
                    if fraction < 1.0 && !in_mini_batch(p, t as u64, fraction) {
                        continue;
                    }
                    sampled += 1;
                    let y = if p.label > 0.5 { 1.0 } else { -1.0 };
                    let margin = dot(&w, &p.features) + b;
                    if y * margin < 1.0 {
                        // d/dw hinge = -y * x
                        axpy(-y, &p.features, &mut gw);
                        gb -= y;
                    }
                }
                (gw, gb, sampled)
            });
            // Reduce: sum partials.
            let mut gw = vec![0.0; dim];
            let mut gb = 0.0;
            let mut sampled = 0u64;
            for (pgw, pgb, ps) in partials {
                axpy(1.0, &pgw, &mut gw);
                gb += pgb;
                sampled += ps;
            }
            // Normalize by the actual sample size (unbiased gradient
            // estimate); an empty sample contributes only regularization.
            let denom = if fraction < 1.0 {
                sampled.max(1) as f64
            } else {
                n
            };
            // L2 regularization on the weights (not the intercept).
            let step = self.step_size / (t as f64).sqrt();
            for (wi, gi) in w.iter_mut().zip(&gw) {
                *wi -= step * (gi / denom + self.reg_param * *wi);
            }
            b -= step * gb / denom;
        }
        SvmModel {
            weights: w,
            intercept: b,
        }
    }
}

/// Deterministic, partition-invariant mini-batch membership: hash the
/// point's content together with the iteration number.
fn in_mini_batch(p: &crate::dataset::LabeledPoint, iteration: u64, fraction: f64) -> bool {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    p.label.to_bits().hash(&mut h);
    for f in &p.features {
        f.to_bits().hash(&mut h);
    }
    let mixed =
        sqlml_common::SplitMix64::new(h.finish() ^ iteration.wrapping_mul(0x9E37)).next_u64();
    (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < fraction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledPoint;
    use sqlml_common::SplitMix64;

    /// Linearly separable blobs around (-2,-2) and (2,2).
    fn blobs(n: usize, seed: u64, partitions: usize) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let mut parts: Vec<Vec<LabeledPoint>> = (0..partitions).map(|_| Vec::new()).collect();
        for i in 0..n {
            let cls = i % 2;
            let center = if cls == 0 { -2.0 } else { 2.0 };
            let x = center + rng.next_gaussian() * 0.5;
            let y = center + rng.next_gaussian() * 0.5;
            parts[i % partitions].push(LabeledPoint::new(cls as f64, vec![x, y]));
        }
        Dataset::new(parts).unwrap()
    }

    #[test]
    fn separates_linearly_separable_blobs() {
        let data = blobs(400, 7, 3);
        let model = SvmTrainer::default().train(&data).unwrap();
        let correct = data
            .iter()
            .filter(|p| model.predict(&p.features) == p.label)
            .count();
        let acc = correct as f64 / data.num_points() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn partition_count_does_not_change_the_model() {
        let a = SvmTrainer::default().train(&blobs(200, 3, 1)).unwrap();
        let b = SvmTrainer::default().train(&blobs(200, 3, 4)).unwrap();
        for (x, y) in a.weights.iter().zip(&b.weights) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
        assert!((a.intercept - b.intercept).abs() < 1e-9);
    }

    #[test]
    fn mini_batch_sgd_still_separates() {
        let data = blobs(600, 13, 3);
        let model = SvmTrainer {
            mini_batch_fraction: 0.2,
            iterations: 200,
            ..Default::default()
        }
        .train(&data)
        .unwrap();
        let acc = data
            .iter()
            .filter(|p| model.predict(&p.features) == p.label)
            .count() as f64
            / data.num_points() as f64;
        assert!(acc > 0.95, "mini-batch accuracy {acc}");
    }

    #[test]
    fn mini_batch_sample_is_partition_invariant() {
        // The *sampled set* per iteration depends only on point content,
        // so it is identical under any partitioning (weights may differ
        // by floating-point summation order, which SGD amplifies — so we
        // compare behaviour, not bits).
        let data1 = blobs(200, 3, 1);
        let data5 = blobs(200, 3, 5);
        for t in [1u64, 7, 23] {
            let s1: usize = data1.iter().filter(|p| in_mini_batch(p, t, 0.3)).count();
            let s5: usize = data5.iter().filter(|p| in_mini_batch(p, t, 0.3)).count();
            assert_eq!(s1, s5, "sample sizes differ at iteration {t}");
        }
        let trainer = SvmTrainer {
            mini_batch_fraction: 0.3,
            iterations: 40,
            ..Default::default()
        };
        let a = trainer.train(&data1).unwrap();
        let b = trainer.train(&data5).unwrap();
        // Behavioural agreement on probes well away from the decision
        // boundary (x + y = 0 for these blobs).
        for (x, y) in [
            (-3.0, -3.0),
            (-2.0, -1.0),
            (1.0, 2.0),
            (3.0, 3.0),
            (2.5, 0.5),
        ] {
            assert_eq!(a.predict(&[x, y]), b.predict(&[x, y]), "at ({x},{y})");
        }
    }

    #[test]
    fn fraction_one_matches_full_batch() {
        let full = SvmTrainer::default().train(&blobs(150, 9, 2)).unwrap();
        let explicit = SvmTrainer {
            mini_batch_fraction: 1.0,
            ..Default::default()
        }
        .train(&blobs(150, 9, 2))
        .unwrap();
        assert_eq!(full, explicit);
    }

    #[test]
    fn rejects_bad_labels_and_empty_input() {
        let bad = Dataset::from_points(vec![LabeledPoint::new(2.0, vec![1.0])]).unwrap();
        assert!(SvmTrainer::default().train(&bad).is_err());
        let empty = Dataset::from_points(vec![]).unwrap();
        assert!(SvmTrainer::default().train(&empty).is_err());
    }

    #[test]
    fn margin_sign_matches_prediction() {
        let m = SvmModel {
            weights: vec![1.0, -1.0],
            intercept: 0.5,
        };
        assert_eq!(m.predict(&[1.0, 0.0]), 1.0);
        assert_eq!(m.predict(&[0.0, 2.0]), 0.0);
    }
}
