//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! Assignment and partial-centroid computation run in parallel over the
//! dataset partitions each iteration; partials are merged exactly, so the
//! result is independent of partitioning.

use sqlml_common::{Result, SplitMix64, SqlmlError};

use crate::dataset::{par_partitions, Dataset};
use crate::linalg::sq_dist;

/// A trained k-means model: the centroids.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids at convergence.
    pub cost: f64,
    pub iterations_run: usize,
}

impl KMeansModel {
    /// Index of the nearest centroid.
    pub fn predict(&self, features: &[f64]) -> usize {
        nearest(&self.centroids, features).0
    }
}

fn nearest(centroids: &[Vec<f64>], x: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(c, x);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[derive(Debug, Clone)]
pub struct KMeansTrainer {
    pub k: usize,
    pub max_iterations: usize,
    pub seed: u64,
    /// Stop when total cost improves by less than this fraction.
    pub tolerance: f64,
}

impl Default for KMeansTrainer {
    fn default() -> Self {
        KMeansTrainer {
            k: 2,
            max_iterations: 50,
            seed: 42,
            tolerance: 1e-6,
        }
    }
}

impl KMeansTrainer {
    pub fn train(&self, data: &Dataset) -> Result<KMeansModel> {
        if data.num_points() < self.k {
            return Err(SqlmlError::Ml(format!(
                "k-means: {} points < k={}",
                data.num_points(),
                self.k
            )));
        }
        let mut centroids = self.seed_centroids(data);
        let mut prev_cost = f64::INFINITY;
        let mut iterations_run = 0;

        for it in 0..self.max_iterations {
            iterations_run = it + 1;
            // Map: per-partition centroid sums + counts + cost.
            let partials = par_partitions(data, |_, part| {
                let mut sums = vec![vec![0.0; data.dim()]; self.k];
                let mut counts = vec![0usize; self.k];
                let mut cost = 0.0;
                for p in part {
                    let (c, d) = nearest(&centroids, &p.features);
                    counts[c] += 1;
                    cost += d;
                    for (s, x) in sums[c].iter_mut().zip(&p.features) {
                        *s += x;
                    }
                }
                (sums, counts, cost)
            });
            // Reduce.
            let mut sums = vec![vec![0.0; data.dim()]; self.k];
            let mut counts = vec![0usize; self.k];
            let mut cost = 0.0;
            for (ps, pc, pcost) in partials {
                cost += pcost;
                for (c, (s, p)) in sums.iter_mut().zip(ps).enumerate() {
                    for (a, b) in s.iter_mut().zip(p) {
                        *a += b;
                    }
                    counts[c] += pc[c];
                }
            }
            for (c, s) in sums.into_iter().enumerate() {
                if counts[c] > 0 {
                    centroids[c] = s.into_iter().map(|v| v / counts[c] as f64).collect();
                }
                // Empty clusters keep their previous centroid.
            }
            if prev_cost.is_finite() && (prev_cost - cost).abs() <= self.tolerance * prev_cost {
                prev_cost = cost;
                break;
            }
            prev_cost = cost;
        }
        Ok(KMeansModel {
            centroids,
            cost: prev_cost,
            iterations_run,
        })
    }

    /// k-means++ seeding over a deterministic sample.
    fn seed_centroids(&self, data: &Dataset) -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::new(self.seed);
        let all: Vec<&[f64]> = data.iter().map(|p| p.features.as_slice()).collect();
        // next_below(len) < len, which already fits in usize.
        #[allow(clippy::cast_possible_truncation)]
        let mut centroids: Vec<Vec<f64>> =
            vec![all[rng.next_below(all.len() as u64) as usize].to_vec()];
        while centroids.len() < self.k {
            let weights: Vec<f64> = all
                .iter()
                .map(|x| nearest(&centroids, x).1.max(f64::MIN_POSITIVE))
                .collect();
            let pick = rng.choose_weighted(&weights);
            centroids.push(all[pick].to_vec());
        }
        centroids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledPoint;

    fn blob_data(parts: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let centers = [(-5.0, -5.0), (5.0, 5.0), (5.0, -5.0)];
        let mut out: Vec<Vec<LabeledPoint>> = (0..parts).map(|_| Vec::new()).collect();
        for i in 0..300 {
            let (cx, cy) = centers[i % 3];
            out[i % parts].push(LabeledPoint::new(
                0.0,
                vec![
                    cx + rng.next_gaussian() * 0.4,
                    cy + rng.next_gaussian() * 0.4,
                ],
            ));
        }
        Dataset::new(out).unwrap()
    }

    #[test]
    fn finds_three_well_separated_blobs() {
        let data = blob_data(4, 41);
        let model = KMeansTrainer {
            k: 3,
            ..Default::default()
        }
        .train(&data)
        .unwrap();
        // Each centroid should be near one of the true centers.
        let centers = [(-5.0, -5.0), (5.0, 5.0), (5.0, -5.0)];
        for c in &model.centroids {
            let min_d = centers
                .iter()
                .map(|(x, y)| sq_dist(c, &[*x, *y]))
                .fold(f64::INFINITY, f64::min);
            assert!(min_d < 1.0, "centroid {c:?} far from all true centers");
        }
        // Cost per point should be about 2 * 0.4^2.
        let per_point = model.cost / data.num_points() as f64;
        assert!(per_point < 1.0, "cost {per_point}");
    }

    #[test]
    fn partitioning_invariant() {
        let m1 = KMeansTrainer {
            k: 3,
            ..Default::default()
        }
        .train(&blob_data(1, 43))
        .unwrap();
        let m6 = KMeansTrainer {
            k: 3,
            ..Default::default()
        }
        .train(&blob_data(6, 43))
        .unwrap();
        assert!((m1.cost - m6.cost).abs() < 1e-6 * m1.cost.max(1.0));
    }

    #[test]
    fn k_larger_than_points_is_an_error() {
        let tiny = Dataset::from_points(vec![LabeledPoint::new(0.0, vec![1.0])]).unwrap();
        assert!(KMeansTrainer {
            k: 2,
            ..Default::default()
        }
        .train(&tiny)
        .is_err());
    }

    #[test]
    fn converges_before_max_iterations_on_easy_data() {
        let data = blob_data(2, 47);
        let model = KMeansTrainer {
            k: 3,
            max_iterations: 50,
            ..Default::default()
        }
        .train(&data)
        .unwrap();
        assert!(model.iterations_run < 50, "ran {}", model.iterations_run);
    }
}
