//! Minimal dense-vector operations shared by the gradient-based learners.

/// Dot product. Panics on length mismatch in debug builds only (hot path).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y *= alpha`.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_scale() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = b.clone();
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.0, 4.5, 6.0]);
    }

    #[test]
    fn norms_and_distances() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }
}
