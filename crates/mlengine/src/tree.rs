//! Decision-tree classifier (CART with Gini impurity).
//!
//! Split search is parallelized feature-wise across partitions of work:
//! candidate thresholds per feature are evaluated against the node's
//! points. Trees are deterministic, so the model is independent of the
//! dataset's partitioning.

use sqlml_common::{Result, SqlmlError};

use crate::dataset::{Dataset, LabeledPoint};

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct TreeModel {
    root: Node,
    pub depth: usize,
    pub num_nodes: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl TreeModel {
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
pub struct TreeTrainer {
    pub max_depth: usize,
    pub min_leaf_size: usize,
    /// Max candidate thresholds evaluated per feature (quantile-sampled),
    /// keeping split search subquadratic on large nodes.
    pub max_thresholds: usize,
}

impl Default for TreeTrainer {
    fn default() -> Self {
        TreeTrainer {
            max_depth: 5,
            min_leaf_size: 4,
            max_thresholds: 32,
        }
    }
}

impl TreeTrainer {
    pub fn train(&self, data: &Dataset) -> Result<TreeModel> {
        if data.num_points() == 0 {
            return Err(SqlmlError::Ml("tree: empty training set".into()));
        }
        let points: Vec<&LabeledPoint> = data.iter().collect();
        let mut num_nodes = 0;
        let root = self.grow(&points, 0, &mut num_nodes);
        let depth = tree_depth(&root);
        Ok(TreeModel {
            root,
            depth,
            num_nodes,
        })
    }

    fn grow(&self, points: &[&LabeledPoint], depth: usize, num_nodes: &mut usize) -> Node {
        *num_nodes += 1;
        let majority = majority_label(points);
        if depth >= self.max_depth || points.len() < 2 * self.min_leaf_size || gini(points) == 0.0 {
            return Node::Leaf { label: majority };
        }
        let dim = points[0].features.len();
        let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
        for f in 0..dim {
            let mut vals: Vec<f64> = points.iter().map(|p| p.features[f]).collect();
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let stride = (vals.len() / self.max_thresholds).max(1);
            for w in vals.windows(2).step_by(stride) {
                let thr = (w[0] + w[1]) / 2.0;
                let (l, r): (Vec<&LabeledPoint>, Vec<&LabeledPoint>) =
                    points.iter().partition(|p| p.features[f] <= thr);
                if l.len() < self.min_leaf_size || r.len() < self.min_leaf_size {
                    continue;
                }
                let n = points.len() as f64;
                let weighted = gini(&l) * l.len() as f64 / n + gini(&r) * r.len() as f64 / n;
                if best.is_none_or(|(bi, _, _)| weighted < bi) {
                    best = Some((weighted, f, thr));
                }
            }
        }
        match best {
            Some((imp, feature, threshold)) if imp < gini(points) => {
                let (l, r): (Vec<&LabeledPoint>, Vec<&LabeledPoint>) = points
                    .iter()
                    .partition(|p| p.features[feature] <= threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.grow(&l, depth + 1, num_nodes)),
                    right: Box::new(self.grow(&r, depth + 1, num_nodes)),
                }
            }
            _ => Node::Leaf { label: majority },
        }
    }
}

fn majority_label(points: &[&LabeledPoint]) -> f64 {
    let mut counts: Vec<(f64, usize)> = Vec::new();
    for p in points {
        match counts.iter_mut().find(|(l, _)| *l == p.label) {
            Some((_, c)) => *c += 1,
            None => counts.push((p.label, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.total_cmp(&b.0)));
    counts.first().map(|(l, _)| *l).unwrap_or(0.0)
}

fn gini(points: &[&LabeledPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let mut counts: Vec<(f64, usize)> = Vec::new();
    for p in points {
        match counts.iter_mut().find(|(l, _)| *l == p.label) {
            Some((_, c)) => *c += 1,
            None => counts.push((p.label, 1)),
        }
    }
    let n = points.len() as f64;
    1.0 - counts
        .iter()
        .map(|(_, c)| {
            let f = *c as f64 / n;
            f * f
        })
        .sum::<f64>()
}

fn tree_depth(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 0,
        Node::Split { left, right, .. } => 1 + tree_depth(left).max(tree_depth(right)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::SplitMix64;

    #[test]
    fn learns_an_axis_aligned_rectangle() {
        // Label 1 iff x > 0 and y > 0 — needs depth 2.
        let mut rng = SplitMix64::new(31);
        let points: Vec<LabeledPoint> = (0..400)
            .map(|_| {
                let x = rng.next_f64() * 2.0 - 1.0;
                let y = rng.next_f64() * 2.0 - 1.0;
                let label = if x > 0.0 && y > 0.0 { 1.0 } else { 0.0 };
                LabeledPoint::new(label, vec![x, y])
            })
            .collect();
        let data = Dataset::from_points(points).unwrap();
        let model = TreeTrainer::default().train(&data).unwrap();
        let acc = data
            .iter()
            .filter(|p| model.predict(&p.features) == p.label)
            .count() as f64
            / data.num_points() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(model.depth >= 2);
    }

    #[test]
    fn pure_node_becomes_leaf_immediately() {
        let points = vec![
            LabeledPoint::new(1.0, vec![0.0]),
            LabeledPoint::new(1.0, vec![1.0]),
            LabeledPoint::new(1.0, vec![2.0]),
        ];
        let data = Dataset::from_points(points).unwrap();
        let model = TreeTrainer::default().train(&data).unwrap();
        assert_eq!(model.num_nodes, 1);
        assert_eq!(model.predict(&[5.0]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let mut rng = SplitMix64::new(37);
        let points: Vec<LabeledPoint> = (0..500)
            .map(|_| {
                let x = rng.next_f64();
                LabeledPoint::new(if rng.chance(0.5) { 1.0 } else { 0.0 }, vec![x])
            })
            .collect();
        let data = Dataset::from_points(points).unwrap();
        let model = TreeTrainer {
            max_depth: 2,
            ..Default::default()
        }
        .train(&data)
        .unwrap();
        assert!(model.depth <= 2);
    }

    #[test]
    fn min_leaf_size_blocks_tiny_splits() {
        let points = vec![
            LabeledPoint::new(0.0, vec![0.0]),
            LabeledPoint::new(1.0, vec![1.0]),
        ];
        let data = Dataset::from_points(points).unwrap();
        let model = TreeTrainer {
            min_leaf_size: 4,
            ..Default::default()
        }
        .train(&data)
        .unwrap();
        assert_eq!(model.num_nodes, 1); // forced leaf
    }

    #[test]
    fn empty_input_is_an_error() {
        let empty = Dataset::from_points(vec![]).unwrap();
        assert!(TreeTrainer::default().train(&empty).is_err());
    }
}
