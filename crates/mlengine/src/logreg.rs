//! Binary logistic regression with distributed full-batch gradient
//! descent (log-loss + L2), parallelized over dataset partitions.

use sqlml_common::{Result, SqlmlError};

use crate::dataset::{par_partitions, Dataset};
use crate::linalg::{axpy, dot, sigmoid};

/// A trained logistic-regression model with labels {0, 1}.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRegModel {
    pub weights: Vec<f64>,
    pub intercept: f64,
}

impl LogRegModel {
    /// P(label = 1 | x).
    pub fn probability(&self, features: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, features) + self.intercept)
    }

    pub fn predict(&self, features: &[f64]) -> f64 {
        if self.probability(features) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }
}

#[derive(Debug, Clone)]
pub struct LogRegTrainer {
    pub iterations: usize,
    pub step_size: f64,
    pub reg_param: f64,
    /// Standardize features before SGD and un-scale the weights after,
    /// as MLlib's linear trainers do. Keeps SGD stable on raw warehouse
    /// features (ages, dollar amounts, ...).
    pub scale_features: bool,
}

impl Default for LogRegTrainer {
    fn default() -> Self {
        LogRegTrainer {
            iterations: 200,
            step_size: 1.0,
            reg_param: 0.001,
            scale_features: true,
        }
    }
}

impl LogRegTrainer {
    pub fn train(&self, data: &Dataset) -> Result<LogRegModel> {
        if data.num_points() == 0 {
            return Err(SqlmlError::Ml("logreg: empty training set".into()));
        }
        for p in data.iter() {
            if p.label != 0.0 && p.label != 1.0 {
                return Err(SqlmlError::Ml(format!(
                    "logreg expects labels in {{0,1}}, found {}",
                    p.label
                )));
            }
        }
        if self.scale_features {
            let scaler = crate::dataset::Standardizer::fit(data);
            let scaled = scaler.transform(data);
            let raw = self.train_raw(&scaled);
            let (weights, intercept) = scaler.unscale_linear(&raw.weights, raw.intercept);
            return Ok(LogRegModel { weights, intercept });
        }
        Ok(self.train_raw(data))
    }

    fn train_raw(&self, data: &Dataset) -> LogRegModel {
        let dim = data.dim();
        let n = data.num_points() as f64;
        let mut w = vec![0.0; dim];
        let mut b = 0.0;

        for _ in 0..self.iterations {
            let partials = par_partitions(data, |_, part| {
                let mut gw = vec![0.0; dim];
                let mut gb = 0.0;
                for p in part {
                    let pred = sigmoid(dot(&w, &p.features) + b);
                    let err = pred - p.label;
                    axpy(err, &p.features, &mut gw);
                    gb += err;
                }
                (gw, gb)
            });
            let mut gw = vec![0.0; dim];
            let mut gb = 0.0;
            for (pgw, pgb) in partials {
                axpy(1.0, &pgw, &mut gw);
                gb += pgb;
            }
            for (wi, gi) in w.iter_mut().zip(&gw) {
                *wi -= self.step_size * (gi / n + self.reg_param * *wi);
            }
            b -= self.step_size * gb / n;
        }
        LogRegModel {
            weights: w,
            intercept: b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledPoint;
    use sqlml_common::SplitMix64;

    fn noisy_halfplanes(n: usize, seed: u64, parts: usize) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let mut out: Vec<Vec<LabeledPoint>> = (0..parts).map(|_| Vec::new()).collect();
        for i in 0..n {
            let x = rng.next_gaussian();
            let y = rng.next_gaussian();
            // True boundary: x + y > 0, with 5% label noise.
            let mut label = if x + y > 0.0 { 1.0 } else { 0.0 };
            if rng.chance(0.05) {
                label = 1.0 - label;
            }
            out[i % parts].push(LabeledPoint::new(label, vec![x, y]));
        }
        Dataset::new(out).unwrap()
    }

    #[test]
    fn learns_a_noisy_halfplane() {
        let data = noisy_halfplanes(600, 11, 4);
        let model = LogRegTrainer::default().train(&data).unwrap();
        let acc = data
            .iter()
            .filter(|p| model.predict(&p.features) == p.label)
            .count() as f64
            / data.num_points() as f64;
        assert!(acc > 0.90, "accuracy {acc}");
        // Weights should point along (1, 1).
        assert!(model.weights[0] > 0.0 && model.weights[1] > 0.0);
    }

    #[test]
    fn probabilities_are_calibrated_at_the_boundary() {
        let data = noisy_halfplanes(600, 13, 2);
        let model = LogRegTrainer::default().train(&data).unwrap();
        let p = model.probability(&[0.0, 0.0]);
        assert!((p - 0.5).abs() < 0.1, "boundary probability {p}");
    }

    #[test]
    fn deterministic_across_partitionings() {
        let a = LogRegTrainer::default()
            .train(&noisy_halfplanes(200, 5, 1))
            .unwrap();
        let b = LogRegTrainer::default()
            .train(&noisy_halfplanes(200, 5, 8))
            .unwrap();
        for (x, y) in a.weights.iter().zip(&b.weights) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_multiclass_labels() {
        let bad = Dataset::from_points(vec![LabeledPoint::new(3.0, vec![1.0])]).unwrap();
        assert!(LogRegTrainer::default().train(&bad).is_err());
    }
}
