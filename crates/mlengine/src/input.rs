//! The Hadoop-style ingestion interface: `InputFormat`, `InputSplit`, and
//! `RecordReader`.
//!
//! The paper's §3 customizes `getInputSplits()` to negotiate splits with
//! the coordinator and uses split *locations* to colocate ML workers with
//! SQL workers; this module defines those extension points plus the two
//! baseline formats (`TextInputFormat` over the DFS and an in-memory
//! format for tests).

use std::any::Any;
use std::io::BufRead;
use std::sync::Arc;

use sqlml_common::{codec, Result, Row, Schema, SqlmlError};
use sqlml_dfs::Dfs;

/// A subset of the input consumed by exactly one ML worker task.
pub trait InputSplit: Send + Sync {
    /// Preferred node names where reading this split is local. The job
    /// scheduler colocates workers with these in a best-effort manner.
    fn locations(&self) -> Vec<String>;

    /// Human-readable description (for logs/EXPLAIN).
    fn describe(&self) -> String;

    /// Downcast hook so formats can recover their concrete split type.
    fn as_any(&self) -> &dyn Any;
}

/// Pull-based record iterator over one split.
pub trait RecordReader: Send {
    /// Next record, or `None` at end of split.
    fn next_row(&mut self) -> Result<Option<Row>>;

    /// Append up to `max_rows` records to `out`, returning how many were
    /// added (0 only at end of split). Batched sources override this to
    /// hand over whole decoded batches without per-row dispatch; the
    /// default just loops [`RecordReader::next_row`].
    fn next_batch(&mut self, out: &mut Vec<Row>, max_rows: usize) -> Result<usize> {
        let mut n = 0;
        while n < max_rows {
            match self.next_row()? {
                Some(row) => {
                    out.push(row);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }
}

/// A source of splits and readers — the contract every ML job ingests
/// through.
pub trait InputFormat: Send + Sync {
    /// Partition the input into about `requested` splits (formats may
    /// return a different number, e.g. one per file block or one per SQL
    /// worker group).
    fn get_splits(&self, requested: usize) -> Result<Vec<Arc<dyn InputSplit>>>;

    /// Open a reader over one split (previously returned by
    /// [`InputFormat::get_splits`] of the same format instance).
    fn create_reader(&self, split: &dyn InputSplit) -> Result<Box<dyn RecordReader>>;

    /// Open a reader knowing which cluster node the reading worker runs
    /// on. Formats that distinguish local from remote reads (as HDFS
    /// short-circuit reads do) override this; the default ignores the
    /// location.
    fn create_reader_at(
        &self,
        split: &dyn InputSplit,
        _worker_node: &str,
    ) -> Result<Box<dyn RecordReader>> {
        self.create_reader(split)
    }

    /// Schema of the produced rows.
    fn schema(&self) -> Schema;
}

// ---------------------------------------------------------------------------
// TextInputFormat: text part-files on the DFS (the naive / insql paths)
// ---------------------------------------------------------------------------

/// One split of a DFS text directory: a byte range `[offset, offset+len)`
/// of one part-file. Whole-file splits have `offset == 0` and
/// `len == total_len`; block-level splits cover one DFS block each and
/// follow Hadoop's line-boundary protocol (see [`TextRecordReader`]).
#[derive(Debug, Clone)]
pub struct FileSplit {
    pub path: String,
    pub offset: u64,
    pub len: u64,
    pub total_len: u64,
    locations: Vec<String>,
}

impl InputSplit for FileSplit {
    fn locations(&self) -> Vec<String> {
        self.locations.clone()
    }

    fn describe(&self) -> String {
        format!(
            "file:{}[{}..{}] of {}B",
            self.path,
            self.offset,
            self.offset + self.len,
            self.total_len
        )
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Reads a directory of text part-files from the DFS.
pub struct TextInputFormat {
    dfs: Dfs,
    dir: String,
    schema: Schema,
    block_splits: bool,
}

impl TextInputFormat {
    pub fn new(dfs: Dfs, dir: impl Into<String>, schema: Schema) -> Self {
        TextInputFormat {
            dfs,
            dir: dir.into(),
            schema,
            block_splits: false,
        }
    }

    /// Split at DFS block granularity instead of one split per file —
    /// what Hadoop's `TextInputFormat` does, so large part-files can be
    /// read by many tasks. Line-straddling blocks are handled with the
    /// classic protocol: a non-initial split discards its first
    /// (possibly partial) line, and every split reads one line past its
    /// end boundary.
    pub fn with_block_splits(mut self) -> Self {
        self.block_splits = true;
        self
    }
}

impl InputFormat for TextInputFormat {
    fn get_splits(&self, _requested: usize) -> Result<Vec<Arc<dyn InputSplit>>> {
        let files = self.dfs.list(&format!("{}/", self.dir));
        if files.is_empty() {
            return Err(SqlmlError::Ml(format!(
                "TextInputFormat: no part files under {}",
                self.dir
            )));
        }
        let mut out: Vec<Arc<dyn InputSplit>> = Vec::with_capacity(files.len());
        for f in files {
            let blocks = self.dfs.block_locations(&f.path)?;
            let node_names = |nodes: &[sqlml_dfs::NodeId]| -> Vec<String> {
                nodes.iter().copied().map(sqlml_dfs::node_name).collect()
            };
            if self.block_splits && blocks.len() > 1 {
                for b in &blocks {
                    out.push(Arc::new(FileSplit {
                        path: f.path.clone(),
                        offset: b.offset,
                        len: b.len,
                        total_len: f.len,
                        locations: node_names(&b.nodes),
                    }));
                }
            } else {
                // Locality: the nodes holding the file's first block.
                let locations = blocks
                    .first()
                    .map(|b| node_names(&b.nodes))
                    .unwrap_or_default();
                out.push(Arc::new(FileSplit {
                    path: f.path,
                    offset: 0,
                    len: f.len,
                    total_len: f.len,
                    locations,
                }));
            }
        }
        Ok(out)
    }

    fn create_reader(&self, split: &dyn InputSplit) -> Result<Box<dyn RecordReader>> {
        self.open_split(split, None)
    }

    fn create_reader_at(
        &self,
        split: &dyn InputSplit,
        worker_node: &str,
    ) -> Result<Box<dyn RecordReader>> {
        self.open_split(split, Some(worker_node))
    }

    fn schema(&self) -> Schema {
        self.schema.clone()
    }
}

impl TextInputFormat {
    fn open_split(
        &self,
        split: &dyn InputSplit,
        worker_node: Option<&str>,
    ) -> Result<Box<dyn RecordReader>> {
        let fs = split
            .as_any()
            .downcast_ref::<FileSplit>()
            .ok_or_else(|| SqlmlError::Ml("TextInputFormat got a foreign split".into()))?;
        // Open from the split's first block through EOF (a straddling
        // last line may reach into later blocks). `open_from` charges
        // remote block reads against the cluster's network bandwidth, so
        // non-local assignments cost time.
        let reader = match worker_node {
            Some(node) => {
                self.dfs
                    .open_range_from(&fs.path, fs.offset, fs.total_len - fs.offset, node)?
            }
            None => self
                .dfs
                .open_range(&fs.path, fs.offset, fs.total_len - fs.offset)?,
        };
        let mut r = TextRecordReader {
            reader,
            schema: self.schema.clone(),
            line: String::new(),
            pos: fs.offset,
            end: fs.offset + fs.len,
        };
        // Hadoop line protocol: a non-initial split discards its first
        // (possibly partial) line — the previous split read it.
        if fs.offset > 0 {
            r.line.clear();
            let n = r.reader.read_line(&mut r.line)?;
            r.pos += n as u64;
        }
        Ok(Box::new(r))
    }
}

struct TextRecordReader {
    reader: sqlml_dfs::DfsReader,
    schema: Schema,
    line: String,
    /// Byte position of the next line start within the file.
    pos: u64,
    /// Split end boundary: lines starting at `pos <= end` belong to this
    /// split (the matching discard rule on the next split prevents
    /// duplicates).
    end: u64,
}

impl RecordReader for TextRecordReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if self.pos > self.end {
                return Ok(None);
            }
            self.line.clear();
            let n = self.reader.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            self.pos += n as u64;
            let trimmed = self.line.trim_end_matches('\n');
            if trimmed.is_empty() {
                continue;
            }
            return Ok(Some(codec::decode_text_row(trimmed, &self.schema)?));
        }
    }
}

// ---------------------------------------------------------------------------
// MemoryInputFormat: pre-partitioned in-memory rows (tests, benchmarks)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct MemorySplit {
    index: usize,
    locations: Vec<String>,
}

impl InputSplit for MemorySplit {
    fn locations(&self) -> Vec<String> {
        self.locations.clone()
    }

    fn describe(&self) -> String {
        format!("memory:{}", self.index)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Serves rows already resident in memory, one split per partition.
pub struct MemoryInputFormat {
    partitions: Vec<Arc<Vec<Row>>>,
    homes: Vec<String>,
    schema: Schema,
}

impl MemoryInputFormat {
    pub fn new(schema: Schema, partitions: Vec<Vec<Row>>) -> Self {
        let homes = (0..partitions.len()).map(sqlml_dfs::node_name).collect();
        MemoryInputFormat {
            partitions: partitions.into_iter().map(Arc::new).collect(),
            homes,
            schema,
        }
    }

    pub fn with_homes(mut self, homes: Vec<String>) -> Self {
        assert_eq!(homes.len(), self.partitions.len());
        self.homes = homes;
        self
    }
}

impl InputFormat for MemoryInputFormat {
    fn get_splits(&self, _requested: usize) -> Result<Vec<Arc<dyn InputSplit>>> {
        Ok((0..self.partitions.len())
            .map(|i| {
                Arc::new(MemorySplit {
                    index: i,
                    locations: vec![self.homes[i].clone()],
                }) as Arc<dyn InputSplit>
            })
            .collect())
    }

    fn create_reader(&self, split: &dyn InputSplit) -> Result<Box<dyn RecordReader>> {
        let ms = split
            .as_any()
            .downcast_ref::<MemorySplit>()
            .ok_or_else(|| SqlmlError::Ml("MemoryInputFormat got a foreign split".into()))?;
        Ok(Box::new(MemoryReader {
            rows: Arc::clone(&self.partitions[ms.index]),
            pos: 0,
        }))
    }

    fn schema(&self) -> Schema {
        self.schema.clone()
    }
}

struct MemoryReader {
    rows: Arc<Vec<Row>>,
    pos: usize,
}

impl RecordReader for MemoryReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let r = self.rows[self.pos].clone();
        self.pos += 1;
        Ok(Some(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};
    use sqlml_dfs::DfsConfig;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("x", DataType::Double),
            Field::new("y", DataType::Int),
        ])
    }

    #[test]
    fn text_format_reads_all_part_files() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        dfs.write_string("/ml/in/part-00000", "1.5|1\n2.5|0\n")
            .unwrap();
        dfs.write_string("/ml/in/part-00001", "3.5|1\n").unwrap();
        let fmt = TextInputFormat::new(dfs, "/ml/in", schema());
        let splits = fmt.get_splits(8).unwrap();
        assert_eq!(splits.len(), 2);
        let mut rows = Vec::new();
        for s in &splits {
            let mut r = fmt.create_reader(s.as_ref()).unwrap();
            while let Some(row) = r.next_row().unwrap() {
                rows.push(row);
            }
        }
        rows.sort();
        assert_eq!(
            rows,
            vec![row![1.5, 1i64], row![2.5, 0i64], row![3.5, 1i64]]
        );
    }

    #[test]
    fn text_splits_expose_block_locality() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        dfs.write_string("/ml/in/part-00000", "1.0|1\n").unwrap();
        let fmt = TextInputFormat::new(dfs, "/ml/in", schema());
        let splits = fmt.get_splits(1).unwrap();
        let locs = splits[0].locations();
        assert!(!locs.is_empty());
        assert!(locs[0].starts_with("node-"));
    }

    #[test]
    fn text_format_errors_on_missing_dir() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        let fmt = TextInputFormat::new(dfs, "/nope", schema());
        assert!(fmt.get_splits(1).is_err());
    }

    #[test]
    fn block_splits_read_every_line_exactly_once() {
        // 64-byte test blocks; varying line widths so lines straddle
        // block boundaries.
        let dfs = Dfs::new(DfsConfig::for_tests());
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("{:0width$}", i, width = 5 + (i * 7) % 15));
            text.push('\n');
        }
        dfs.write_string("/blk/part-00000", &text).unwrap();
        let int_schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let fmt = TextInputFormat::new(dfs.clone(), "/blk", int_schema).with_block_splits();
        let splits = fmt.get_splits(0).unwrap();
        assert!(
            splits.len() > 3,
            "expected many 64-byte block splits, got {}",
            splits.len()
        );
        let mut got = Vec::new();
        for s in &splits {
            let mut r = fmt.create_reader(s.as_ref()).unwrap();
            while let Some(row) = r.next_row().unwrap() {
                got.push(row.get(0).as_i64().unwrap());
            }
        }
        got.sort_unstable();
        let expect: Vec<i64> = (0..40).collect();
        assert_eq!(got, expect, "lines lost or duplicated across splits");
    }

    #[test]
    fn block_splits_carry_per_block_locality() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        dfs.write_string("/blk2/part-00000", &"x|1\n".repeat(100))
            .unwrap();
        let mixed = Schema::new(vec![
            Field::categorical("s"),
            Field::new("v", DataType::Int),
        ]);
        let fmt = TextInputFormat::new(dfs.clone(), "/blk2", mixed).with_block_splits();
        let splits = fmt.get_splits(0).unwrap();
        let blocks = dfs.block_locations("/blk2/part-00000").unwrap();
        assert_eq!(splits.len(), blocks.len());
        for (s, b) in splits.iter().zip(&blocks) {
            let expect: Vec<String> = b.nodes.iter().copied().map(sqlml_dfs::node_name).collect();
            assert_eq!(s.locations(), expect);
        }
    }

    #[test]
    fn memory_format_round_trips_partitions() {
        let fmt = MemoryInputFormat::new(
            schema(),
            vec![
                vec![row![1.0, 1i64]],
                vec![row![2.0, 0i64], row![3.0, 1i64]],
            ],
        );
        let splits = fmt.get_splits(99).unwrap();
        assert_eq!(splits.len(), 2);
        let mut count = 0;
        for s in &splits {
            let mut r = fmt.create_reader(s.as_ref()).unwrap();
            while r.next_row().unwrap().is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn foreign_split_rejected() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        dfs.write_string("/a/part-00000", "1.0|1\n").unwrap();
        let text = TextInputFormat::new(dfs, "/a", schema());
        let mem = MemoryInputFormat::new(schema(), vec![vec![]]);
        let mem_split = mem.get_splits(1).unwrap();
        assert!(text.create_reader(mem_split[0].as_ref()).is_err());
    }
}
