//! Evaluation metrics for trained models.

use crate::dataset::Dataset;

/// Classification accuracy of a predictor over a dataset.
pub fn accuracy(data: &Dataset, predict: impl Fn(&[f64]) -> f64) -> f64 {
    let n = data.num_points();
    if n == 0 {
        return 0.0;
    }
    let correct = data
        .iter()
        .filter(|p| predict(&p.features) == p.label)
        .count();
    correct as f64 / n as f64
}

/// Binary precision/recall/F1 for the positive class `1.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryReport {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub true_pos: usize,
    pub false_pos: usize,
    pub false_neg: usize,
    pub true_neg: usize,
}

pub fn binary_report(data: &Dataset, predict: impl Fn(&[f64]) -> f64) -> BinaryReport {
    let (mut tp, mut fp, mut fne, mut tn) = (0usize, 0usize, 0usize, 0usize);
    for p in data.iter() {
        let pred = predict(&p.features);
        match (p.label == 1.0, pred == 1.0) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fne += 1,
            (false, false) => tn += 1,
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fne == 0 {
        0.0
    } else {
        tp as f64 / (tp + fne) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    BinaryReport {
        precision,
        recall,
        f1,
        true_pos: tp,
        false_pos: fp,
        false_neg: fne,
        true_neg: tn,
    }
}

/// Root-mean-squared error of a regressor.
pub fn rmse(data: &Dataset, predict: impl Fn(&[f64]) -> f64) -> f64 {
    let n = data.num_points();
    if n == 0 {
        return 0.0;
    }
    let sse: f64 = data
        .iter()
        .map(|p| {
            let e = predict(&p.features) - p.label;
            e * e
        })
        .sum();
    (sse / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledPoint;

    fn toy() -> Dataset {
        Dataset::from_points(vec![
            LabeledPoint::new(1.0, vec![1.0]),
            LabeledPoint::new(1.0, vec![2.0]),
            LabeledPoint::new(0.0, vec![-1.0]),
            LabeledPoint::new(0.0, vec![-2.0]),
        ])
        .unwrap()
    }

    #[test]
    fn accuracy_of_perfect_and_constant_predictors() {
        let d = toy();
        assert_eq!(accuracy(&d, |f| if f[0] > 0.0 { 1.0 } else { 0.0 }), 1.0);
        assert_eq!(accuracy(&d, |_| 1.0), 0.5);
    }

    #[test]
    fn binary_report_counts() {
        let d = toy();
        // Predict 1 for x > 1.5: catches one of two positives, no FPs.
        let r = binary_report(&d, |f| if f[0] > 1.5 { 1.0 } else { 0.0 });
        assert_eq!(r.true_pos, 1);
        assert_eq!(r.false_neg, 1);
        assert_eq!(r.false_pos, 0);
        assert_eq!(r.true_neg, 2);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 0.5);
        assert!((r.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_of_exact_and_offset_predictors() {
        let d = Dataset::from_points(vec![
            LabeledPoint::new(2.0, vec![1.0]),
            LabeledPoint::new(4.0, vec![2.0]),
        ])
        .unwrap();
        assert_eq!(rmse(&d, |f| 2.0 * f[0]), 0.0);
        assert_eq!(rmse(&d, |f| 2.0 * f[0] + 1.0), 1.0);
    }

    #[test]
    fn empty_dataset_metrics_are_zero() {
        let d = Dataset::from_points(vec![]).unwrap();
        assert_eq!(accuracy(&d, |_| 1.0), 0.0);
        assert_eq!(rmse(&d, |_| 1.0), 0.0);
    }
}
