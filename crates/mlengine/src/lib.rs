//! A distributed "big ML" engine that ingests data through Hadoop-style
//! `InputFormat`s.
//!
//! This crate stands in for Spark MLlib / Mahout / SystemML in the paper's
//! architecture. Its defining property — the one the paper's generality
//! argument rests on — is that **every job reads its input through the
//! [`input::InputFormat`] interface**: the engine asks the format for
//! [`input::InputSplit`]s (with locality hints), assigns splits to ML
//! workers preferring colocated ones, and each worker pulls records
//! through a [`input::RecordReader`]. Swapping `TextInputFormat` (files on
//! the DFS) for the transfer crate's `SqlStreamInputFormat` (live TCP
//! streams from SQL workers) requires **no change to any algorithm**.
//!
//! Included algorithms (all parallel over dataset partitions):
//! SVM with SGD (the paper's evaluation algorithm), logistic regression,
//! linear regression, Gaussian naive Bayes, decision trees (CART), and
//! k-means.

pub mod dataset;
pub mod input;
pub mod job;
pub mod kmeans;
pub mod linalg;
pub mod linreg;
pub mod logreg;
pub mod metrics;
pub mod naive_bayes;
pub mod svm;
pub mod tree;

pub use dataset::{Dataset, LabeledPoint};
pub use input::{InputFormat, InputSplit, MemoryInputFormat, RecordReader, TextInputFormat};
pub use job::{IngestReport, JobConfig, JobRunner, TrainedModel, TrainingSpec};
