//! Predicate implication and the §5.1 / §5.2 matching conditions.

use std::collections::BTreeSet;

use sqlml_common::Value;
use sqlml_sqlengine::ast::CmpOp;

use crate::descriptor::{ColRef, QueryDescriptor, SimplePredicate};

/// Does `stronger` (a predicate of the *new* query) logically imply
/// `weaker` (a predicate of the *cached* query) over the same column?
///
/// Sound but deliberately incomplete single-predicate reasoning — the
/// cases the paper's example needs (`a < 18` implies `a <= 20`) plus the
/// equality/ordering family. A `false` answer only costs a cache miss.
pub fn predicate_implies(stronger: &SimplePredicate, weaker: &SimplePredicate) -> bool {
    if stronger.col != weaker.col {
        return false;
    }
    if stronger.op == weaker.op && stronger.value == weaker.value {
        return true;
    }
    let sv = &stronger.value;
    let wv = &weaker.value;
    if sv.is_null() || wv.is_null() {
        return false; // NULL comparisons never pass anyway; don't reason.
    }
    match stronger.op {
        // col = v implies anything v satisfies.
        CmpOp::Eq => eval_cmp(weaker.op, sv, wv),
        CmpOp::Lt => match weaker.op {
            CmpOp::Lt | CmpOp::LtEq => sv <= wv,
            CmpOp::NotEq => wv >= sv,
            _ => false,
        },
        CmpOp::LtEq => match weaker.op {
            CmpOp::Lt => sv < wv,
            CmpOp::LtEq => sv <= wv,
            CmpOp::NotEq => wv > sv,
            _ => false,
        },
        CmpOp::Gt => match weaker.op {
            CmpOp::Gt | CmpOp::GtEq => sv >= wv,
            CmpOp::NotEq => wv <= sv,
            _ => false,
        },
        CmpOp::GtEq => match weaker.op {
            CmpOp::Gt => sv > wv,
            CmpOp::GtEq => sv >= wv,
            CmpOp::NotEq => wv < sv,
            _ => false,
        },
        CmpOp::NotEq => weaker.op == CmpOp::NotEq && sv == wv,
    }
}

/// Evaluate `left op right` over constant values.
fn eval_cmp(op: CmpOp, left: &Value, right: &Value) -> bool {
    match op {
        CmpOp::Eq => left == right,
        CmpOp::NotEq => left != right,
        CmpOp::Lt => left < right,
        CmpOp::LtEq => left <= right,
        CmpOp::Gt => left > right,
        CmpOp::GtEq => left >= right,
    }
}

/// §5.1: can `new` be answered entirely from the cached result of
/// `cached`? On success returns the *extra* predicates `new` adds (to be
/// applied over the cached table).
///
/// Conditions (quoting the paper):
/// 1. same tables in FROM, same join conditions and predicates in WHERE;
/// 2. projected fields are a subset of the cached projection;
/// 3. additional conjunctive predicates only on the cached projection.
pub fn full_result_match<'a>(
    cached: &QueryDescriptor,
    new: &'a QueryDescriptor,
) -> Option<Vec<&'a SimplePredicate>> {
    if cached.tables != new.tables || cached.joins != new.joins {
        return None;
    }
    // Condition 2.
    let cached_proj: BTreeSet<&ColRef> = cached.projections.iter().collect();
    if !new.projections.iter().all(|p| cached_proj.contains(p)) {
        return None;
    }
    // Condition 1 (predicates) + 3 (extras): every cached predicate must
    // appear verbatim in the new query; leftovers must touch projected
    // columns only.
    let mut remaining: Vec<&SimplePredicate> = new.predicates.iter().collect();
    for cp in &cached.predicates {
        match remaining.iter().position(|np| *np == cp) {
            Some(pos) => {
                remaining.remove(pos);
            }
            None => return None,
        }
    }
    if remaining.iter().any(|p| !cached_proj.contains(&p.col)) {
        return None;
    }
    Some(remaining)
}

/// §5.2: can the recode map built for `cached` be reused for `new`?
///
/// Conditions:
/// 1. same tables, same join conditions;
/// 2. predicates on the same set of fields, each the same or logically
///    stronger than the cached one;
/// 3. the new query's projected *categorical* fields are a subset of the
///    cached ones (checked by the caller against the map's columns);
/// 4. additional predicates are conjunctive (guaranteed by descriptor
///    construction).
pub fn recode_map_match(cached: &QueryDescriptor, new: &QueryDescriptor) -> bool {
    if cached.tables != new.tables || cached.joins != new.joins {
        return false;
    }
    // Every cached predicate must be implied by some new predicate on the
    // same column: the new result is then a subset of the cached one, so
    // every categorical value in it already has a code.
    for cp in &cached.predicates {
        let implied = new
            .predicates_on(&cp.col)
            .iter()
            .any(|np| predicate_implies(np, cp));
        if !implied {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(col: &str, op: CmpOp, v: impl Into<Value>) -> SimplePredicate {
        SimplePredicate {
            col: ColRef::new("t", col),
            op,
            value: v.into(),
        }
    }

    #[test]
    fn the_papers_example_implication() {
        // "a < 18 is logically stronger than a <= 20"
        assert!(predicate_implies(
            &pred("a", CmpOp::Lt, 18i64),
            &pred("a", CmpOp::LtEq, 20i64)
        ));
        assert!(!predicate_implies(
            &pred("a", CmpOp::LtEq, 20i64),
            &pred("a", CmpOp::Lt, 18i64)
        ));
    }

    #[test]
    fn equality_implies_whatever_it_satisfies() {
        assert!(predicate_implies(
            &pred("a", CmpOp::Eq, 5i64),
            &pred("a", CmpOp::Lt, 10i64)
        ));
        assert!(predicate_implies(
            &pred("a", CmpOp::Eq, 5i64),
            &pred("a", CmpOp::NotEq, 7i64)
        ));
        assert!(!predicate_implies(
            &pred("a", CmpOp::Eq, 15i64),
            &pred("a", CmpOp::Lt, 10i64)
        ));
    }

    #[test]
    fn boundary_cases_of_ordering_implication() {
        // col < 10 implies col < 10 and col <= 10, not col < 9.
        assert!(predicate_implies(
            &pred("a", CmpOp::Lt, 10i64),
            &pred("a", CmpOp::Lt, 10i64)
        ));
        assert!(predicate_implies(
            &pred("a", CmpOp::Lt, 10i64),
            &pred("a", CmpOp::LtEq, 10i64)
        ));
        assert!(!predicate_implies(
            &pred("a", CmpOp::Lt, 10i64),
            &pred("a", CmpOp::Lt, 9i64)
        ));
        // col <= 10 implies col < 11 (integers or not, 10 < 11).
        assert!(predicate_implies(
            &pred("a", CmpOp::LtEq, 10i64),
            &pred("a", CmpOp::Lt, 11i64)
        ));
        assert!(!predicate_implies(
            &pred("a", CmpOp::LtEq, 10i64),
            &pred("a", CmpOp::Lt, 10i64)
        ));
        // Upper bounds never imply lower bounds.
        assert!(!predicate_implies(
            &pred("a", CmpOp::Lt, 10i64),
            &pred("a", CmpOp::Gt, 0i64)
        ));
        // Mirrors.
        assert!(predicate_implies(
            &pred("a", CmpOp::Gt, 20i64),
            &pred("a", CmpOp::GtEq, 18i64)
        ));
        assert!(predicate_implies(
            &pred("a", CmpOp::GtEq, 21i64),
            &pred("a", CmpOp::Gt, 20i64)
        ));
    }

    #[test]
    fn not_eq_only_implies_itself() {
        assert!(predicate_implies(
            &pred("a", CmpOp::NotEq, 3i64),
            &pred("a", CmpOp::NotEq, 3i64)
        ));
        assert!(!predicate_implies(
            &pred("a", CmpOp::NotEq, 3i64),
            &pred("a", CmpOp::NotEq, 4i64)
        ));
        // But bounds imply inequality with out-of-range constants.
        assert!(predicate_implies(
            &pred("a", CmpOp::Lt, 5i64),
            &pred("a", CmpOp::NotEq, 9i64)
        ));
    }

    #[test]
    fn different_columns_never_imply() {
        assert!(!predicate_implies(
            &pred("a", CmpOp::Eq, 1i64),
            &pred("b", CmpOp::Eq, 1i64)
        ));
    }

    #[test]
    fn string_predicates() {
        assert!(predicate_implies(
            &pred("c", CmpOp::Eq, "USA"),
            &pred("c", CmpOp::Eq, "USA")
        ));
        assert!(!predicate_implies(
            &pred("c", CmpOp::Eq, "USA"),
            &pred("c", CmpOp::Eq, "CA")
        ));
    }

    // -- descriptor-level matches ------------------------------------------

    fn base_descriptor() -> QueryDescriptor {
        QueryDescriptor {
            tables: ["carts".to_string(), "users".to_string()]
                .into_iter()
                .collect(),
            joins: [(
                ColRef::new("carts", "userid"),
                ColRef::new("users", "userid"),
            )]
            .into_iter()
            .collect(),
            predicates: vec![SimplePredicate {
                col: ColRef::new("users", "country"),
                op: CmpOp::Eq,
                value: Value::Str("USA".into()),
            }],
            projections: vec![
                ColRef::new("users", "age"),
                ColRef::new("users", "gender"),
                ColRef::new("carts", "amount"),
                ColRef::new("carts", "abandoned"),
            ],
        }
    }

    #[test]
    fn full_match_paper_section_5_1_example() {
        let cached = base_descriptor();
        // The paper's reusable query: subset projection + extra predicate
        // on a projected field (gender).
        let mut new = base_descriptor();
        new.projections = vec![
            ColRef::new("users", "age"),
            ColRef::new("carts", "amount"),
            ColRef::new("carts", "abandoned"),
        ];
        new.predicates.push(SimplePredicate {
            col: ColRef::new("users", "gender"),
            op: CmpOp::Eq,
            value: Value::Str("F".into()),
        });
        let extras = full_result_match(&cached, &new).unwrap();
        assert_eq!(extras.len(), 1);
        assert_eq!(extras[0].col, ColRef::new("users", "gender"));
    }

    #[test]
    fn full_match_rejects_the_papers_negative_example() {
        let cached = base_descriptor();
        // §5.2's query: projects nitems (not cached) and adds a predicate
        // on year (not projected) — "the cached data cannot be used at
        // all".
        let mut new = base_descriptor();
        new.projections.push(ColRef::new("carts", "nitems"));
        new.predicates.push(SimplePredicate {
            col: ColRef::new("carts", "year"),
            op: CmpOp::Eq,
            value: Value::Int(2014),
        });
        assert!(full_result_match(&cached, &new).is_none());
        // But the recode map IS reusable for it (§5.2's point): same
        // tables/joins, country predicate unchanged, extra conjunct only
        // shrinks the result.
        assert!(recode_map_match(&cached, &new));
    }

    #[test]
    fn full_match_requires_identical_base_predicates() {
        let cached = base_descriptor();
        let mut new = base_descriptor();
        new.predicates[0].value = Value::Str("CA".into());
        assert!(full_result_match(&cached, &new).is_none());
    }

    #[test]
    fn full_match_rejects_extra_predicate_on_unprojected_column() {
        let cached = base_descriptor();
        let mut new = base_descriptor();
        new.predicates.push(SimplePredicate {
            col: ColRef::new("users", "userid"), // not projected
            op: CmpOp::Gt,
            value: Value::Int(5),
        });
        assert!(full_result_match(&cached, &new).is_none());
    }

    #[test]
    fn map_match_accepts_stronger_predicates() {
        let mut cached = base_descriptor();
        cached.predicates.push(SimplePredicate {
            col: ColRef::new("users", "age"),
            op: CmpOp::LtEq,
            value: Value::Int(20),
        });
        let mut new = base_descriptor();
        new.predicates.push(SimplePredicate {
            col: ColRef::new("users", "age"),
            op: CmpOp::Lt,
            value: Value::Int(18),
        });
        assert!(recode_map_match(&cached, &new));
        // The reverse direction must fail (weaker predicate would surface
        // unseen categorical values).
        assert!(!recode_map_match(&new, &cached));
    }

    #[test]
    fn map_match_requires_same_joins() {
        let cached = base_descriptor();
        let mut new = base_descriptor();
        new.joins.clear();
        assert!(!recode_map_match(&cached, &new));
    }
}
