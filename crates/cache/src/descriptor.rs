//! Normalized descriptors of preparation queries.
//!
//! A [`QueryDescriptor`] captures exactly the parts of a
//! select-project-join query that the §5 matching conditions reason
//! about: the table set, the equi-join conditions, the conjunctive
//! column-vs-literal predicates, and the projected columns. Queries that
//! do not fit this shape (aggregates, disjunctions, self-joins, …) are
//! simply not cacheable and yield `None`.

use std::collections::BTreeSet;

use sqlml_common::{Result, SqlmlError, Value};
use sqlml_sqlengine::ast::{AstExpr, CmpOp, SelectItem, SelectStmt, TableRef};
use sqlml_sqlengine::Catalog;

/// A column of a base table, alias-resolved: `(table, column)`, both
/// lower-cased.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColRef {
    pub table: String,
    pub column: String,
}

impl ColRef {
    pub fn new(table: &str, column: &str) -> Self {
        ColRef {
            table: table.to_ascii_lowercase(),
            column: column.to_ascii_lowercase(),
        }
    }
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// A conjunctive `column op literal` predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplePredicate {
    pub col: ColRef,
    pub op: CmpOp,
    pub value: Value,
}

impl std::fmt::Display for SimplePredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.col, self.op.symbol(), self.value)
    }
}

/// The normalized shape of a cacheable preparation query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDescriptor {
    /// Base tables referenced (lower-cased). Self-joins are rejected
    /// during construction, so a set suffices.
    pub tables: BTreeSet<String>,
    /// Equi-join conditions, each stored with its two sides in canonical
    /// (sorted) order.
    pub joins: BTreeSet<(ColRef, ColRef)>,
    /// Conjunctive column-vs-literal predicates.
    pub predicates: Vec<SimplePredicate>,
    /// Projected columns, in output order.
    pub projections: Vec<ColRef>,
}

impl QueryDescriptor {
    /// Build from a parsed SELECT. Returns `Ok(None)` when the query does
    /// not have the cacheable SPJ shape.
    pub fn from_select(stmt: &SelectStmt, catalog: &Catalog) -> Result<Option<QueryDescriptor>> {
        // Shape gate: plain conjunctive select-project-join only.
        if stmt.distinct
            || !stmt.group_by.is_empty()
            || stmt.having.is_some()
            || !stmt.order_by.is_empty()
            || stmt.limit.is_some()
            || !stmt.joins.is_empty()
        {
            return Ok(None);
        }

        // Bindings: alias -> table name; reject self-joins and table
        // functions (their output is not a base relation).
        let mut bindings: Vec<(String, String)> = Vec::new(); // (binding, table)
        let mut tables = BTreeSet::new();
        for t in &stmt.from {
            match t {
                TableRef::Named { name, alias } => {
                    let table = name.to_ascii_lowercase();
                    if !tables.insert(table.clone()) {
                        return Ok(None); // self-join
                    }
                    let binding = alias.clone().unwrap_or_else(|| name.clone());
                    bindings.push((binding.to_ascii_lowercase(), table));
                }
                TableRef::TableFunction { .. } => return Ok(None),
            }
        }

        let resolve = |qualifier: Option<&str>, column: &str| -> Result<Option<ColRef>> {
            match qualifier {
                Some(q) => {
                    let q = q.to_ascii_lowercase();
                    for (b, t) in &bindings {
                        if *b == q {
                            return Ok(Some(ColRef::new(t, column)));
                        }
                    }
                    Err(SqlmlError::Plan(format!("unknown alias {q:?}")))
                }
                None => {
                    // Resolve an unqualified column by probing the
                    // catalog schemas; must be unique.
                    let mut hit = None;
                    for (_, t) in &bindings {
                        let table = catalog.table(t)?;
                        if table.schema().index_of(column).is_ok() {
                            if hit.is_some() {
                                return Err(SqlmlError::Plan(format!(
                                    "ambiguous column {column:?}"
                                )));
                            }
                            hit = Some(ColRef::new(t, column));
                        }
                    }
                    Ok(hit)
                }
            }
        };

        // Projections: simple columns (or wildcards) only.
        let mut projections = Vec::new();
        for item in &stmt.projection {
            match item {
                SelectItem::Expr {
                    expr: AstExpr::Column { qualifier, name },
                    ..
                } => match resolve(qualifier.as_deref(), name)? {
                    Some(c) => projections.push(c),
                    None => return Ok(None),
                },
                SelectItem::Wildcard => {
                    for (_, t) in &bindings {
                        let table = catalog.table(t)?;
                        for f in table.schema().fields() {
                            projections.push(ColRef::new(t, &f.name));
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let q = q.to_ascii_lowercase();
                    let Some((_, t)) = bindings.iter().find(|(b, _)| *b == q) else {
                        return Ok(None);
                    };
                    let table = catalog.table(t)?;
                    for f in table.schema().fields() {
                        projections.push(ColRef::new(t, &f.name));
                    }
                }
                _ => return Ok(None), // computed projections: not cacheable
            }
        }

        // WHERE: conjunctive, each conjunct either col=col (join) or
        // col-op-literal (predicate).
        let mut joins = BTreeSet::new();
        let mut predicates = Vec::new();
        if let Some(sel) = &stmt.selection {
            for conj in sel.conjuncts() {
                let AstExpr::Cmp { op, left, right } = conj else {
                    return Ok(None);
                };
                match (left.as_ref(), right.as_ref()) {
                    (
                        AstExpr::Column {
                            qualifier: ql,
                            name: nl,
                        },
                        AstExpr::Column {
                            qualifier: qr,
                            name: nr,
                        },
                    ) => {
                        if *op != CmpOp::Eq {
                            return Ok(None);
                        }
                        let (Some(a), Some(b)) =
                            (resolve(ql.as_deref(), nl)?, resolve(qr.as_deref(), nr)?)
                        else {
                            return Ok(None);
                        };
                        let pair = if a <= b { (a, b) } else { (b, a) };
                        joins.insert(pair);
                    }
                    (AstExpr::Column { qualifier, name }, AstExpr::Literal(v)) => {
                        let Some(col) = resolve(qualifier.as_deref(), name)? else {
                            return Ok(None);
                        };
                        predicates.push(SimplePredicate {
                            col,
                            op: *op,
                            value: v.clone(),
                        });
                    }
                    (AstExpr::Literal(v), AstExpr::Column { qualifier, name }) => {
                        let Some(col) = resolve(qualifier.as_deref(), name)? else {
                            return Ok(None);
                        };
                        predicates.push(SimplePredicate {
                            col,
                            op: op.flipped(),
                            value: v.clone(),
                        });
                    }
                    _ => return Ok(None),
                }
            }
        }

        Ok(Some(QueryDescriptor {
            tables,
            joins,
            predicates,
            projections,
        }))
    }

    /// The predicates grouped by column, for per-field implication
    /// checks.
    pub fn predicates_on(&self, col: &ColRef) -> Vec<&SimplePredicate> {
        self.predicates.iter().filter(|p| p.col == *col).collect()
    }

    /// The set of columns carrying predicates.
    pub fn predicate_columns(&self) -> BTreeSet<&ColRef> {
        self.predicates.iter().map(|p| &p.col).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::schema::{DataType, Field, Schema};
    use sqlml_sqlengine::parser::parse_select;
    use sqlml_sqlengine::PartitionedTable;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let carts = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("amount", DataType::Double),
            Field::categorical("abandoned"),
            Field::new("year", DataType::Int),
            Field::new("nitems", DataType::Int),
        ]);
        let users = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::categorical("country"),
        ]);
        c.register_table("carts", PartitionedTable::single(carts, vec![]));
        c.register_table("users", PartitionedTable::single(users, vec![]));
        c
    }

    fn descr(sql: &str) -> Option<QueryDescriptor> {
        QueryDescriptor::from_select(&parse_select(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn paper_query_descriptor() {
        let d = descr(
            "SELECT U.age, U.gender, C.amount, C.abandoned \
             FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA'",
        )
        .unwrap();
        assert_eq!(
            d.tables,
            ["carts", "users"].iter().map(|s| s.to_string()).collect()
        );
        assert_eq!(d.joins.len(), 1);
        let j = d.joins.iter().next().unwrap();
        assert_eq!(j.0, ColRef::new("carts", "userid"));
        assert_eq!(j.1, ColRef::new("users", "userid"));
        assert_eq!(d.predicates.len(), 1);
        assert_eq!(d.predicates[0].col, ColRef::new("users", "country"));
        assert_eq!(d.predicates[0].value, Value::Str("USA".into()));
        assert_eq!(d.projections.len(), 4);
        assert_eq!(d.projections[0], ColRef::new("users", "age"));
    }

    #[test]
    fn alias_and_case_normalization() {
        let a = descr(
            "SELECT u.AGE FROM Users U, Carts C WHERE c.USERID = U.userid AND u.country='USA'",
        )
        .unwrap();
        let b = descr(
            "SELECT users.age FROM users, carts \
             WHERE carts.userid = users.userid AND users.country='USA'",
        )
        .unwrap();
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.joins, b.joins);
        assert_eq!(a.projections, b.projections);
    }

    #[test]
    fn flipped_literal_predicates_normalize() {
        let a = descr("SELECT age FROM users WHERE 18 < age").unwrap();
        let b = descr("SELECT age FROM users WHERE age > 18").unwrap();
        assert_eq!(a.predicates, b.predicates);
    }

    #[test]
    fn non_spj_queries_are_not_cacheable() {
        assert!(descr("SELECT COUNT(*) FROM users").is_none());
        assert!(descr("SELECT DISTINCT gender FROM users").is_none());
        assert!(descr("SELECT age FROM users ORDER BY age").is_none());
        assert!(descr("SELECT age FROM users LIMIT 5").is_none());
        assert!(descr("SELECT age FROM users WHERE age > 10 OR age < 5").is_none());
        assert!(descr("SELECT age + 1 FROM users").is_none());
        assert!(descr("SELECT age FROM users WHERE age > userid").is_none());
    }

    #[test]
    fn self_joins_are_not_cacheable() {
        assert!(descr("SELECT a.age FROM users a, users b WHERE a.userid = b.userid").is_none());
    }

    #[test]
    fn wildcard_expands_against_catalog() {
        let d = descr("SELECT * FROM users WHERE country = 'USA'").unwrap();
        assert_eq!(d.projections.len(), 4);
        assert!(d.projections.contains(&ColRef::new("users", "gender")));
    }

    #[test]
    fn predicate_grouping_helpers() {
        let d =
            descr("SELECT age FROM users WHERE age > 10 AND age < 20 AND country = 'USA'").unwrap();
        let age = ColRef::new("users", "age");
        assert_eq!(d.predicates_on(&age).len(), 2);
        assert_eq!(d.predicate_columns().len(), 2);
    }
}
