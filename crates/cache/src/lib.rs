//! Caching of transformation results (§5).
//!
//! When similar preparation queries repeat between the SQL and ML
//! systems, two kinds of reuse apply:
//!
//! * **Fully transformed data** (§5.1) — the recoded/dummy-coded result
//!   of a preparation query is kept as a materialized table. A new query
//!   can be answered entirely from it when it has the same FROM/joins and
//!   predicates, projects a subset of the cached columns, and adds only
//!   conjunctive predicates on projected columns. This skips the SQL
//!   query *and* the transformation.
//! * **Recode maps** (§5.2) — the intermediate `(colname, colval,
//!   recodeval)` map reusable under weaker conditions (same FROM/joins,
//!   logically-stronger predicates on the same fields, subset of
//!   projected categorical fields). This skips one of recoding's two
//!   passes.
//!
//! Matching is materialized-view-style query subsumption over normalized
//! [`descriptor::QueryDescriptor`]s, with the single-column implication
//! logic in [`subsume`] (`a < 18` is logically stronger than `a <= 20`,
//! as the paper's example notes).

pub mod descriptor;
pub mod manager;
pub mod subsume;

pub use descriptor::{ColRef, QueryDescriptor, SimplePredicate};
pub use manager::{CacheDecision, CacheManager, CacheProbe, CacheStats, FullReuse};
pub use subsume::{full_result_match, predicate_implies, recode_map_match};
