//! The cache manager: stores fully transformed results (as materialized
//! catalog tables) and recode maps, and answers lookups with a reuse
//! decision.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use sqlml_common::lockorder::TrackedMutex;
use sqlml_common::{Result, SqlmlError, Value};
use sqlml_sqlengine::ast::CmpOp;
use sqlml_sqlengine::Engine;
use sqlml_transform::{RecodeMap, TransformSpec};

use crate::descriptor::{QueryDescriptor, SimplePredicate};
use crate::subsume::{full_result_match, recode_map_match};

/// A cached fully transformed result (§5.1) — conceptually a
/// materialized view plus its transformation metadata.
#[derive(Debug, Clone)]
struct FullEntry {
    descriptor: QueryDescriptor,
    spec: TransformSpec,
    map: RecodeMap,
    /// Name of the materialized table in the engine catalog.
    table_name: String,
}

/// A cached recode map (§5.2).
#[derive(Debug, Clone)]
struct MapEntry {
    descriptor: QueryDescriptor,
    map: RecodeMap,
}

/// A full-result hit, ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct FullReuse {
    /// The materialized table holding the cached transformed result.
    pub table_name: String,
    /// A SQL query over that table computing the new query's transformed
    /// answer (projection + extra predicates, with literals on recoded
    /// columns already mapped through the recode map).
    pub sql: String,
    /// The recode map of the cached entry (categorical semantics of the
    /// integer columns).
    pub map: RecodeMap,
}

/// Outcome of a cache lookup, best reuse first.
#[derive(Debug, Clone)]
pub enum CacheDecision {
    /// §5.1 hit: skip query + transformation entirely.
    Full(FullReuse),
    /// §5.2 hit: run the query, but reuse the recode map (skip recoding's
    /// first pass).
    RecodeMap(RecodeMap),
    Miss,
}

/// Outcome of a non-materializing [`CacheManager::probe`]: what the best
/// reuse *would* be, without building the rewrite or cloning any map.
/// Placement/scheduling signal only — a router asking "which cluster
/// already holds something usable for this descriptor" must not pay
/// lookup's allocation cost per shard, and must not perturb the hit/miss
/// counters of the queries that actually execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CacheProbe {
    Miss,
    /// A recode map (§5.2) would be reused.
    RecodeMap,
    /// A fully transformed result (§5.1) would be reused.
    Full,
}

/// Hit/miss counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    pub full_hits: AtomicUsize,
    pub map_hits: AtomicUsize,
    pub misses: AtomicUsize,
}

impl CacheStats {
    pub fn snapshot(&self) -> (usize, usize, usize) {
        (
            self.full_hits.load(Ordering::Relaxed),
            self.map_hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// The cache. Assumes no updates to the base tables (the paper's stated
/// assumption); [`CacheManager::invalidate_all`] is the escape hatch.
pub struct CacheManager {
    engine: Engine,
    full: TrackedMutex<Vec<FullEntry>>,
    maps: TrackedMutex<Vec<MapEntry>>,
    next_id: AtomicU64,
    pub stats: CacheStats,
}

impl CacheManager {
    pub fn new(engine: Engine) -> Self {
        // The manager's lock discipline, checked by the tracked layer (and
        // mirrored in xtask/lock-order.manifest): `full` before `maps`
        // (store_full registers then stores the map), and the catalog's
        // table lock nests inside `full` (store_full registers the
        // materialized table inside the critical section so lookup never
        // sees an entry whose table is missing).
        sqlml_common::declare_order(&[
            ("cache.full", "cache.maps"),
            ("cache.full", "sqlengine.catalog.tables"),
        ]);
        CacheManager {
            engine,
            full: TrackedMutex::new("cache.full", Vec::new()),
            maps: TrackedMutex::new("cache.maps", Vec::new()),
            next_id: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// Store a fully transformed result: materializes `table` in the
    /// engine catalog and records the entry. Also records the recode map
    /// (a full entry subsumes a map entry). Returns the materialized
    /// table's name.
    ///
    /// Concurrency: two queries that miss on the same descriptor at the
    /// same time both arrive here with a freshly computed result. The
    /// first store wins; the duplicate's table is simply never registered
    /// (the caller's copy is dropped), so the cache cannot accumulate
    /// redundant materializations under load. The check and the insert
    /// happen under one lock, and the table is registered inside that
    /// critical section so a concurrent [`CacheManager::lookup`] never
    /// observes an entry whose table is missing from the catalog.
    pub fn store_full(
        &self,
        descriptor: QueryDescriptor,
        spec: TransformSpec,
        map: RecodeMap,
        table: sqlml_sqlengine::PartitionedTable,
    ) -> String {
        let mut full = self.full.lock();
        if let Some(existing) = full
            .iter()
            .find(|e| e.descriptor == descriptor && e.spec == spec)
        {
            return existing.table_name.clone();
        }
        let table_name = format!(
            "__sqlml_cache_{}",
            self.next_id.fetch_add(1, Ordering::Relaxed)
        );
        self.engine.register_table(&table_name, table);
        full.push(FullEntry {
            descriptor: descriptor.clone(),
            spec,
            map: map.clone(),
            table_name: table_name.clone(),
        });
        // Lock order is always full → maps (see `invalidate_all`).
        drop(full);
        self.store_recode_map(descriptor, map);
        table_name
    }

    /// Store just a recode map (the first identical store wins; maps
    /// covering different column sets for the same descriptor coexist).
    pub fn store_recode_map(&self, descriptor: QueryDescriptor, map: RecodeMap) {
        let mut maps = self.maps.lock();
        if maps
            .iter()
            .any(|e| e.descriptor == descriptor && e.map == map)
        {
            return;
        }
        maps.push(MapEntry { descriptor, map });
    }

    /// Number of entries (full, maps).
    pub fn len(&self) -> (usize, usize) {
        (self.full.lock().len(), self.maps.lock().len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }

    /// Drop everything (e.g. after base-table updates).
    pub fn invalidate_all(&self) {
        for e in self.full.lock().drain(..) {
            let _ = self.engine.catalog().drop_table(&e.table_name);
        }
        self.maps.lock().clear();
    }

    /// Non-materializing probe: would [`CacheManager::lookup`] hit, and
    /// how well? Runs the same §5.1/§5.2 subsumption checks but builds no
    /// rewrite SQL, clones no recode map, and leaves the hit/miss stats
    /// untouched — cheap enough to call once per shard on every admission
    /// for cache-affinity routing.
    pub fn probe(&self, query: &QueryDescriptor, spec: &TransformSpec) -> CacheProbe {
        for entry in self.full.lock().iter() {
            if let Some(extras) = full_result_match(&entry.descriptor, query) {
                if Self::rewrite_compatible(entry, query, spec, &extras) {
                    return CacheProbe::Full;
                }
            }
        }
        for entry in self.maps.lock().iter() {
            if recode_map_match(&entry.descriptor, query)
                && spec.recode_columns.iter().all(|c| entry.map.has_column(c))
            {
                return CacheProbe::RecodeMap;
            }
        }
        CacheProbe::Miss
    }

    /// The decision core of [`CacheManager::rewrite_over_cached`] without
    /// any of its string building: `true` iff the rewrite would succeed.
    fn rewrite_compatible(
        entry: &FullEntry,
        query: &QueryDescriptor,
        spec: &TransformSpec,
        extras: &[&SimplePredicate],
    ) -> bool {
        let is_dummy_cached = |col: &str| {
            entry
                .spec
                .dummy_code_columns
                .iter()
                .any(|d| d.eq_ignore_ascii_case(col))
        };
        let is_dummy_new = |col: &str| {
            spec.dummy_code_columns
                .iter()
                .any(|d| d.eq_ignore_ascii_case(col))
        };
        // Every projected column must carry compatible coding.
        for p in &query.projections {
            if is_dummy_cached(&p.column) != is_dummy_new(&p.column) {
                return false;
            }
        }
        // Every extra predicate must be expressible over the transformed
        // layout (same cases as the rewrite, minus the SQL).
        for pred in extras {
            let col = &pred.col.column;
            if is_dummy_cached(col) || entry.map.has_column(col) {
                if !matches!(pred.value, Value::Str(_))
                    || !matches!(pred.op, CmpOp::Eq | CmpOp::NotEq)
                {
                    return false;
                }
            } else if matches!(pred.value, Value::Null) {
                return false;
            }
        }
        true
    }

    /// Look up the best reuse for a new query + transformation spec.
    pub fn lookup(&self, query: &QueryDescriptor, spec: &TransformSpec) -> CacheDecision {
        // Best first: full result (§5.1).
        for entry in self.full.lock().iter() {
            if let Some(extras) = full_result_match(&entry.descriptor, query) {
                match self.rewrite_over_cached(entry, query, spec, &extras) {
                    Ok(Some(reuse)) => {
                        self.stats.full_hits.fetch_add(1, Ordering::Relaxed);
                        return CacheDecision::Full(reuse);
                    }
                    Ok(None) => {} // spec-incompatible; keep looking
                    Err(_) => {}
                }
            }
        }
        // Second best: recode map (§5.2).
        for entry in self.maps.lock().iter() {
            if recode_map_match(&entry.descriptor, query) {
                // Condition 3: the map must cover every categorical
                // column the new pipeline will recode.
                let covered = spec.recode_columns.iter().all(|c| entry.map.has_column(c));
                // (When recode_columns is defaulted-empty the pipeline
                // derives them from the schema; the transformer re-checks
                // coverage at apply time, so accept here.)
                if covered {
                    self.stats.map_hits.fetch_add(1, Ordering::Relaxed);
                    return CacheDecision::RecodeMap(entry.map.clone());
                }
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        CacheDecision::Miss
    }

    /// Build the SQL that answers `query` from a cached entry's
    /// materialized table; `None` when the transformation specs are
    /// incompatible (e.g. the cache dummy-coded a column the new request
    /// wants plain).
    fn rewrite_over_cached(
        &self,
        entry: &FullEntry,
        query: &QueryDescriptor,
        spec: &TransformSpec,
        extras: &[&SimplePredicate],
    ) -> Result<Option<FullReuse>> {
        let is_dummy_cached = |col: &str| {
            entry
                .spec
                .dummy_code_columns
                .iter()
                .any(|d| d.eq_ignore_ascii_case(col))
        };
        let is_dummy_new = |col: &str| {
            spec.dummy_code_columns
                .iter()
                .any(|d| d.eq_ignore_ascii_case(col))
        };

        // Projection: each requested column must exist in the cached
        // output with compatible coding.
        let mut select_cols: Vec<String> = Vec::new();
        for p in &query.projections {
            let col = &p.column;
            match (is_dummy_cached(col), is_dummy_new(col)) {
                (false, false) => select_cols.push(col.clone()),
                (true, true) => {
                    // Expand to the cached indicator block.
                    for v in entry.map.values_in_code_order(col) {
                        select_cols.push(format!("{col}_{}", sanitize(&v)));
                    }
                }
                // Coding mismatch: cannot serve from this entry.
                _ => return Ok(None),
            }
        }

        // Extra predicates, mapped onto the transformed layout.
        let mut where_parts = Vec::new();
        for pred in extras {
            let col = &pred.col.column;
            let is_recoded = entry.map.has_column(col);
            if is_dummy_cached(col) {
                // gender = 'F' over a dummy-coded gender → gender_F = 1.
                let Value::Str(s) = &pred.value else {
                    return Ok(None);
                };
                let indicator = match pred.op {
                    CmpOp::Eq => 1,
                    CmpOp::NotEq => 0,
                    _ => return Ok(None),
                };
                match entry.map.code(col, s) {
                    Some(_) => where_parts.push(format!("{col}_{} = {indicator}", sanitize(s))),
                    // Value never seen by the cached query: the predicate
                    // is unsatisfiable (Eq) or trivially true (NotEq).
                    None => {
                        if pred.op == CmpOp::Eq {
                            where_parts.push("1 = 0".to_string());
                        }
                    }
                }
            } else if is_recoded {
                // String literal must be mapped through the recode map.
                let Value::Str(s) = &pred.value else {
                    return Ok(None);
                };
                // Only (in)equality is order-safe after recoding: codes
                // are assigned by sorted value, but mixing with other
                // comparisons invites subtle bugs, so stay conservative.
                if !matches!(pred.op, CmpOp::Eq | CmpOp::NotEq) {
                    return Ok(None);
                }
                match entry.map.code(col, s) {
                    Some(code) => where_parts.push(format!("{col} {} {code}", pred.op.symbol())),
                    None => {
                        if pred.op == CmpOp::Eq {
                            where_parts.push("1 = 0".to_string());
                        }
                    }
                }
            } else {
                where_parts.push(format!(
                    "{col} {} {}",
                    pred.op.symbol(),
                    render_literal(&pred.value)?
                ));
            }
        }

        let mut sql = format!(
            "SELECT {} FROM {}",
            select_cols.join(", "),
            entry.table_name
        );
        if !where_parts.is_empty() {
            sql.push_str(&format!(" WHERE {}", where_parts.join(" AND ")));
        }
        Ok(Some(FullReuse {
            table_name: entry.table_name.clone(),
            sql,
            map: entry.map.clone(),
        }))
    }
}

/// Same value-name sanitization as dummy coding uses for column names.
fn sanitize(v: &str) -> String {
    v.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn render_literal(v: &Value) -> Result<String> {
    Ok(match v {
        Value::Int(i) => i.to_string(),
        Value::Double(d) => format!("{d:?}"),
        Value::Bool(b) => b.to_string().to_uppercase(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Null => return Err(SqlmlError::Cache("NULL literals are not rewritable".into())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field, Schema};
    use sqlml_sqlengine::parser::parse_select;
    use sqlml_sqlengine::EngineConfig;
    use sqlml_transform::{InSqlTransformer, TransformSpec};

    /// Engine with the paper's carts/users tables, small scale.
    fn engine() -> Engine {
        let e = Engine::new(EngineConfig::with_workers(2));
        let carts = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("amount", DataType::Double),
            Field::categorical("abandoned"),
            Field::new("year", DataType::Int),
        ]);
        let users = Schema::new(vec![
            Field::new("userid", DataType::Int),
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::categorical("country"),
        ]);
        e.register_rows(
            "carts",
            carts,
            (0..20)
                .map(|i| {
                    row![
                        (i % 5) as i64,
                        10.0 + i as f64,
                        if i % 2 == 0 { "Yes" } else { "No" },
                        if i < 10 { 2013i64 } else { 2014i64 }
                    ]
                })
                .collect(),
        );
        e.register_rows(
            "users",
            users,
            (0..5)
                .map(|i| {
                    row![
                        i as i64,
                        20 + i as i64,
                        if i % 2 == 0 { "F" } else { "M" },
                        "USA"
                    ]
                })
                .collect(),
        );
        e
    }

    const PREP: &str = "SELECT U.age, U.gender, C.amount, C.abandoned \
                        FROM carts C, users U \
                        WHERE C.userid=U.userid AND U.country='USA'";

    fn descriptor(e: &Engine, sql: &str) -> QueryDescriptor {
        QueryDescriptor::from_select(&parse_select(sql).unwrap(), e.catalog())
            .unwrap()
            .unwrap()
    }

    /// Run the prep query + transformation and cache the result.
    fn prime_cache(e: &Engine, cache: &CacheManager, spec: &TransformSpec) {
        e.execute(&format!("CREATE TABLE prep AS {PREP}")).unwrap();
        let tr = InSqlTransformer::new(e.clone());
        let out = tr.transform("prep", spec).unwrap();
        cache.store_full(descriptor(e, PREP), spec.clone(), out.recode_map, out.table);
        e.execute("DROP TABLE prep").unwrap();
    }

    #[test]
    fn full_hit_answers_subset_query_with_recoded_predicate() {
        let e = engine();
        let cache = CacheManager::new(e.clone());
        let spec = TransformSpec::default();
        prime_cache(&e, &cache, &spec);

        // The paper's §5.1 reuse query.
        let q = descriptor(
            &e,
            "SELECT U.age, C.amount, C.abandoned FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA' AND U.gender='F'",
        );
        let decision = cache.lookup(&q, &spec);
        let CacheDecision::Full(reuse) = decision else {
            panic!("expected full hit, got {decision:?}");
        };
        // gender='F' must have been recoded (F -> 1).
        assert!(reuse.sql.contains("gender = 1"), "{}", reuse.sql);

        // Executing the rewrite gives exactly the direct computation.
        let via_cache = e.query(&reuse.sql).unwrap().collect_sorted();
        e.execute(
            "CREATE TABLE direct AS SELECT U.age, C.amount, C.abandoned \
             FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA' AND U.gender='F'",
        )
        .unwrap();
        let tr = InSqlTransformer::new(e.clone());
        let direct = tr.transform("direct", &spec).unwrap();
        assert_eq!(via_cache, direct.table.collect_sorted());
        assert_eq!(cache.stats.snapshot(), (1, 0, 0));
    }

    #[test]
    fn map_hit_for_the_papers_5_2_query() {
        let e = engine();
        let cache = CacheManager::new(e.clone());
        let spec = TransformSpec::default();
        prime_cache(&e, &cache, &spec);

        // Projects a new column (year) and adds a predicate on an
        // unprojected column: full reuse impossible, map reuse fine.
        let q = descriptor(
            &e,
            "SELECT U.age, U.gender, C.amount, C.year, C.abandoned \
             FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA' AND C.year = 2014",
        );
        match cache.lookup(&q, &spec) {
            CacheDecision::RecodeMap(map) => {
                assert_eq!(map.code("gender", "F"), Some(1));
                assert_eq!(map.code("abandoned", "Yes"), Some(2));
            }
            other => panic!("expected map hit, got {other:?}"),
        }
        assert_eq!(cache.stats.snapshot(), (0, 1, 0));
    }

    #[test]
    fn probe_agrees_with_lookup_and_stays_off_the_stats() {
        let e = engine();
        let cache = CacheManager::new(e.clone());
        let spec = TransformSpec::default();
        prime_cache(&e, &cache, &spec);

        // Full-hit query, map-hit query, miss query — probe must agree
        // with lookup on each while touching no counters.
        let full_q = descriptor(
            &e,
            "SELECT U.age, C.amount, C.abandoned FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA' AND U.gender='F'",
        );
        let map_q = descriptor(
            &e,
            "SELECT U.age, U.gender, C.amount, C.year, C.abandoned \
             FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA' AND C.year = 2014",
        );
        let miss_q = descriptor(&e, "SELECT age FROM users WHERE country='CA'");
        assert_eq!(cache.probe(&full_q, &spec), CacheProbe::Full);
        assert_eq!(cache.probe(&map_q, &spec), CacheProbe::RecodeMap);
        assert_eq!(cache.probe(&miss_q, &spec), CacheProbe::Miss);
        assert_eq!(cache.stats.snapshot(), (0, 0, 0), "probe bumped stats");

        assert!(matches!(
            cache.lookup(&full_q, &spec),
            CacheDecision::Full(_)
        ));
        assert!(matches!(
            cache.lookup(&map_q, &spec),
            CacheDecision::RecodeMap(_)
        ));
        assert!(matches!(cache.lookup(&miss_q, &spec), CacheDecision::Miss));
    }

    #[test]
    fn probe_downgrades_on_coding_mismatch_like_lookup() {
        let e = engine();
        let cache = CacheManager::new(e.clone());
        // Cache dummy-coded gender; the new request wants it plain — full
        // reuse impossible, map reuse fine (mirrors the lookup test).
        prime_cache(&e, &cache, &TransformSpec::new(&["gender"]));
        let q = descriptor(
            &e,
            "SELECT U.gender, C.amount FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA'",
        );
        assert_eq!(
            cache.probe(&q, &TransformSpec::default()),
            CacheProbe::RecodeMap
        );
    }

    #[test]
    fn unrelated_query_misses() {
        let e = engine();
        let cache = CacheManager::new(e.clone());
        let spec = TransformSpec::default();
        prime_cache(&e, &cache, &spec);
        let q = descriptor(&e, "SELECT age FROM users WHERE country='CA'");
        assert!(matches!(cache.lookup(&q, &spec), CacheDecision::Miss));
        assert_eq!(cache.stats.snapshot(), (0, 0, 1));
    }

    #[test]
    fn dummy_coded_projection_expands_in_rewrite() {
        let e = engine();
        let cache = CacheManager::new(e.clone());
        let spec = TransformSpec::new(&["gender"]);
        prime_cache(&e, &cache, &spec);

        let q = descriptor(
            &e,
            "SELECT U.gender, C.amount FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA'",
        );
        match cache.lookup(&q, &spec) {
            CacheDecision::Full(reuse) => {
                assert!(reuse.sql.contains("gender_F"), "{}", reuse.sql);
                assert!(reuse.sql.contains("gender_M"), "{}", reuse.sql);
                let rows = e.query(&reuse.sql).unwrap();
                assert_eq!(rows.schema().len(), 3); // gender_F, gender_M, amount
            }
            other => panic!("expected full hit, got {other:?}"),
        }
    }

    #[test]
    fn coding_mismatch_downgrades_to_map_hit() {
        let e = engine();
        let cache = CacheManager::new(e.clone());
        // Cache dummy-coded gender; new request wants it plain-recoded.
        prime_cache(&e, &cache, &TransformSpec::new(&["gender"]));
        let q = descriptor(
            &e,
            "SELECT U.gender, C.amount FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA'",
        );
        match cache.lookup(&q, &TransformSpec::default()) {
            CacheDecision::RecodeMap(_) => {}
            other => panic!("expected map hit, got {other:?}"),
        }
    }

    #[test]
    fn unseen_literal_becomes_unsatisfiable_predicate() {
        let e = engine();
        let cache = CacheManager::new(e.clone());
        let spec = TransformSpec::default();
        prime_cache(&e, &cache, &spec);
        let q = descriptor(
            &e,
            "SELECT U.age FROM carts C, users U \
             WHERE C.userid=U.userid AND U.country='USA' AND U.gender='X'",
        );
        match cache.lookup(&q, &spec) {
            CacheDecision::Full(reuse) => {
                assert!(reuse.sql.contains("1 = 0"), "{}", reuse.sql);
                assert_eq!(e.query(&reuse.sql).unwrap().num_rows(), 0);
            }
            other => panic!("expected full hit, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_drops_materialized_tables() {
        let e = engine();
        let cache = CacheManager::new(e.clone());
        let spec = TransformSpec::default();
        prime_cache(&e, &cache, &spec);
        assert_eq!(cache.len(), (1, 1));
        let name = {
            let q = descriptor(&e, PREP);
            match cache.lookup(&q, &spec) {
                CacheDecision::Full(r) => r.table_name,
                other => panic!("{other:?}"),
            }
        };
        assert!(e.catalog().has_table(&name));
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert!(!e.catalog().has_table(&name));
    }

    #[test]
    fn concurrent_identical_misses_store_one_entry() {
        // Two (here: eight) queries that miss simultaneously both try to
        // populate the cache; only one materialization may survive.
        let e = engine();
        let cache = CacheManager::new(e.clone());
        let spec = TransformSpec::default();
        e.execute(&format!("CREATE TABLE prep AS {PREP}")).unwrap();
        let tr = InSqlTransformer::new(e.clone());
        let out = tr.transform("prep", &spec).unwrap();
        e.execute("DROP TABLE prep").unwrap();
        let d = descriptor(&e, PREP);
        let names: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (cache, d, spec) = (&cache, d.clone(), spec.clone());
                    let (map, table) = (out.recode_map.clone(), out.table.clone());
                    s.spawn(move || cache.store_full(d, spec, map, table))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every storer was told the same winning table name.
        assert!(names.windows(2).all(|w| w[0] == w[1]), "{names:?}");
        assert_eq!(cache.len(), (1, 1));
        assert!(e.catalog().has_table(&names[0]));
        assert!(matches!(cache.lookup(&d, &spec), CacheDecision::Full(_)));
    }

    #[test]
    fn store_plain_table_and_lookup_identity() {
        // A degenerate single-table cache entry with no transformation.
        let e = engine();
        let cache = CacheManager::new(e.clone());
        let sql = "SELECT age, userid FROM users WHERE country = 'USA'";
        e.execute(&format!("CREATE TABLE snap AS {sql}")).unwrap();
        let table = (*e.catalog().table("snap").unwrap()).clone();
        cache.store_full(
            descriptor(&e, sql),
            TransformSpec::default(),
            RecodeMap::default(),
            table,
        );
        let q = descriptor(&e, "SELECT age FROM users WHERE country='USA' AND age > 21");
        match cache.lookup(&q, &TransformSpec::default()) {
            CacheDecision::Full(reuse) => {
                assert!(reuse.sql.contains("age > 21"), "{}", reuse.sql);
                let rows = e.query(&reuse.sql).unwrap().collect_sorted();
                assert_eq!(rows, vec![row![22i64], row![23i64], row![24i64]]);
            }
            other => panic!("expected full hit, got {other:?}"),
        }
    }
}
