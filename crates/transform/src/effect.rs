//! Effect coding and orthogonal (Helmert) coding — the "less common
//! transformations" the paper's §2 says "can be implemented in similar
//! ways as dummy coding".
//!
//! Both expand a recoded column with `K` levels into `K-1` contrast
//! columns:
//!
//! * **Effect coding**: level `i < K` gets indicator `+1` in column `i`;
//!   the reference level `K` gets `-1` in every column.
//! * **Helmert (orthogonal) coding**: contrast `j` (1-based, `j < K`)
//!   compares level `j+1` against the mean of levels `1..=j`:
//!   `c_j(i) = -1` for `i ≤ j`, `c_j(j+1) = j`, else `0`. The contrast
//!   columns are pairwise orthogonal over a balanced design.

use sqlml_common::schema::{DataType, Field};
use sqlml_common::{Result, Row, Schema, SqlmlError, Value};
use sqlml_sqlengine::udf::{PartitionCtx, TableUdf};

/// The Helmert contrast matrix: `K` rows (levels) × `K-1` columns.
pub fn helmert_matrix(k: usize) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0; k.saturating_sub(1)]; k];
    for j in 1..k {
        for (i, row) in m.iter_mut().enumerate() {
            let level = i + 1;
            row[j - 1] = if level <= j {
                -1.0
            } else if level == j + 1 {
                j as f64
            } else {
                0.0
            };
        }
    }
    m
}

/// The effect-coding matrix: `K` rows × `K-1` columns.
pub fn effect_matrix(k: usize) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0; k.saturating_sub(1)]; k];
    for (i, row) in m.iter_mut().enumerate() {
        if i + 1 < k {
            row[i] = 1.0;
        } else {
            for c in row.iter_mut() {
                *c = -1.0;
            }
        }
    }
    m
}

fn parse_args(args: &[Value]) -> Result<(String, usize)> {
    if args.len() != 2 {
        return Err(SqlmlError::Plan(
            "contrast coding takes (column_name, cardinality)".into(),
        ));
    }
    let col = args[0].as_str()?.to_string();
    let k = args[1].as_i64()?;
    if k < 2 {
        return Err(SqlmlError::Plan(format!(
            "contrast coding needs cardinality >= 2, got {k}"
        )));
    }
    Ok((col, k as usize))
}

fn contrast_schema(input: &Schema, col: &str, k: usize, tag: &str) -> Result<(usize, Schema)> {
    let idx = input.index_of(col)?;
    let mut fields = Vec::with_capacity(input.len() + k - 2);
    for (i, f) in input.fields().iter().enumerate() {
        if i == idx {
            for j in 1..k {
                fields.push(Field::new(format!("{}_{tag}{j}", f.name), DataType::Double));
            }
        } else {
            fields.push(f.clone());
        }
    }
    Ok((idx, Schema::new(fields)))
}

fn apply_matrix(
    rows: &[Row],
    input_schema: &Schema,
    col: &str,
    k: usize,
    matrix: &[Vec<f64>],
    tag: &str,
) -> Result<Vec<Row>> {
    let (idx, _) = contrast_schema(input_schema, col, k, tag)?;
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        let mut vals = Vec::with_capacity(r.len() + k - 2);
        for (i, v) in r.values().iter().enumerate() {
            if i == idx {
                let code = v.as_i64().map_err(|_| {
                    SqlmlError::Type(format!("contrast coding: column {col:?} must be recoded"))
                })?;
                if code < 1 || code as usize > k {
                    return Err(SqlmlError::Execution(format!(
                        "contrast coding: code {code} out of range 1..={k}"
                    )));
                }
                for c in &matrix[code as usize - 1] {
                    vals.push(Value::Double(*c));
                }
            } else {
                vals.push(v.clone());
            }
        }
        out.push(Row::new(vals));
    }
    Ok(out)
}

/// Table UDF: `TABLE(effect_code(t, 'col', K))`.
pub struct EffectCodeUdf;

impl TableUdf for EffectCodeUdf {
    fn name(&self) -> &str {
        "effect_code"
    }

    fn output_schema(&self, input: &Schema, args: &[Value]) -> Result<Schema> {
        let (col, k) = parse_args(args)?;
        Ok(contrast_schema(input, &col, k, "eff")?.1)
    }

    fn execute(
        &self,
        rows: &[Row],
        input_schema: &Schema,
        args: &[Value],
        _ctx: &PartitionCtx,
    ) -> Result<Vec<Row>> {
        let (col, k) = parse_args(args)?;
        apply_matrix(rows, input_schema, &col, k, &effect_matrix(k), "eff")
    }
}

/// Table UDF: `TABLE(orthogonal_code(t, 'col', K))` (Helmert contrasts).
pub struct OrthogonalCodeUdf;

impl TableUdf for OrthogonalCodeUdf {
    fn name(&self) -> &str {
        "orthogonal_code"
    }

    fn output_schema(&self, input: &Schema, args: &[Value]) -> Result<Schema> {
        let (col, k) = parse_args(args)?;
        Ok(contrast_schema(input, &col, k, "orth")?.1)
    }

    fn execute(
        &self,
        rows: &[Row],
        input_schema: &Schema,
        args: &[Value],
        _ctx: &PartitionCtx,
    ) -> Result<Vec<Row>> {
        let (col, k) = parse_args(args)?;
        apply_matrix(rows, input_schema, &col, k, &helmert_matrix(k), "orth")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;

    fn ctx() -> PartitionCtx {
        PartitionCtx {
            partition: 0,
            num_partitions: 1,
            worker: 0,
            num_workers: 1,
            node: "node-0".into(),
        }
    }

    #[test]
    fn helmert_columns_are_pairwise_orthogonal() {
        for k in 2..=6 {
            let m = helmert_matrix(k);
            for a in 0..k - 1 {
                for b in 0..k - 1 {
                    let dot: f64 = (0..k).map(|i| m[i][a] * m[i][b]).sum();
                    if a == b {
                        assert!(dot > 0.0);
                    } else {
                        assert!(dot.abs() < 1e-12, "k={k} cols {a},{b} dot={dot}");
                    }
                }
            }
            // Every contrast sums to zero over a balanced design.
            for j in 0..k - 1 {
                let s: f64 = m.iter().map(|row| row[j]).sum();
                assert!(s.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn effect_matrix_reference_level_is_minus_one() {
        let m = effect_matrix(3);
        assert_eq!(m[0], vec![1.0, 0.0]);
        assert_eq!(m[1], vec![0.0, 1.0]);
        assert_eq!(m[2], vec![-1.0, -1.0]);
    }

    #[test]
    fn effect_code_udf_expands_rows() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("cat", DataType::Int),
        ]);
        let rows = vec![row![10i64, 1i64], row![20i64, 3i64]];
        let args = vec![Value::Str("cat".into()), Value::Int(3)];
        let out = EffectCodeUdf
            .execute(&rows, &schema, &args, &ctx())
            .unwrap();
        assert_eq!(out[0], row![10i64, 1.0, 0.0]);
        assert_eq!(out[1], row![20i64, -1.0, -1.0]);
        let s = EffectCodeUdf.output_schema(&schema, &args).unwrap();
        assert_eq!(s.names(), vec!["x", "cat_eff1", "cat_eff2"]);
    }

    #[test]
    fn orthogonal_code_udf_expands_rows() {
        let schema = Schema::new(vec![Field::new("cat", DataType::Int)]);
        let rows = vec![row![2i64]];
        let args = vec![Value::Str("cat".into()), Value::Int(3)];
        let out = OrthogonalCodeUdf
            .execute(&rows, &schema, &args, &ctx())
            .unwrap();
        // Level 2 of Helmert(3): contrast1 = 1, contrast2 = -1.
        assert_eq!(out[0], row![1.0, -1.0]);
    }

    #[test]
    fn bad_args_are_rejected() {
        let schema = Schema::new(vec![Field::new("cat", DataType::Int)]);
        assert!(EffectCodeUdf
            .output_schema(&schema, &[Value::Str("cat".into()), Value::Int(1)])
            .is_err());
        assert!(EffectCodeUdf.output_schema(&schema, &[]).is_err());
        let rows = vec![row![9i64]];
        assert!(EffectCodeUdf
            .execute(
                &rows,
                &schema,
                &[Value::Str("cat".into()), Value::Int(3)],
                &ctx()
            )
            .is_err());
    }
}
