//! In-SQL data transformations for ML (the paper's §2).
//!
//! Machine-learning systems consume numeric values; SQL warehouses store
//! categorical variables as strings. This crate implements the common
//! transformations **inside the SQL engine** as parallel table UDFs plus
//! generated SQL, exploiting the engine's partition parallelism:
//!
//! * **Recoding of categorical variables** ([`recode`]) — the two-phase
//!   distributed algorithm: phase 1 computes per-partition distinct
//!   values via the `distinct_values` table UDF and merges them with
//!   `SELECT DISTINCT`; phase 2 recodes via a join against the recode-map
//!   table (the exact query shape of §2.1). Recoded values are
//!   consecutive integers starting at 1 (the SystemML requirement the
//!   paper cites).
//! * **Dummy coding** ([`dummy`]) — one-hot expansion of a recoded
//!   column into K binary columns via the `dummy_code` table UDF.
//! * **Effect and orthogonal (Helmert) coding** ([`effect`]) — the "less
//!   common transformations" §2 mentions, implemented the same way.
//! * **The pipeline** ([`pipeline`]) — orchestrates query → recode →
//!   dummy code, optionally reusing a cached recode map (§5.2's
//!   optimization: skipping one of the two passes).

pub mod apply;
pub mod dummy;
pub mod effect;
pub mod pipeline;
pub mod recode;

pub use apply::FlatRecodeApplier;
pub use pipeline::{register_udfs, InSqlTransformer, TransformOutput, TransformSpec};
pub use recode::RecodeMap;
