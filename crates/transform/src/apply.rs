//! Flat, index-resolved recode application.
//!
//! [`RecodeMap::code`] walks two nested `BTreeMap<String, _>`s — a
//! column probe then a value probe, both O(log n) with string
//! comparisons at every tree node. Applying a map to millions of rows
//! that way is the dominant cost of the external (naive) transform job.
//!
//! A [`FlatRecodeApplier`] resolves everything that is per-*column* —
//! which action applies, the value→code table, the dummy block width —
//! exactly once, into a dense `Vec` indexed by column position. Per cell
//! the work left is a single `HashMap<Arc<str>, i64>` probe (O(1),
//! hashed once), and non-categorical cells are a straight clone (a
//! refcount bump for interned strings).

use std::collections::HashMap;
use std::sync::Arc;

use sqlml_common::{Result, Row, Schema, SqlmlError, Value};

use crate::pipeline::TransformSpec;
use crate::recode::RecodeMap;

/// Per-column action, resolved from the spec + map at build time.
enum ColumnAction {
    /// Not a transform target: copy the value through.
    Pass,
    /// Recode the string value to its integer code (NULL stays NULL).
    Recode {
        name: String,
        codes: HashMap<Arc<str>, i64>,
    },
    /// Expand into `k` indicator columns (NULL → all-zero block).
    Dummy {
        name: String,
        codes: HashMap<Arc<str>, i64>,
        k: usize,
    },
}

/// A recode/dummy applier with all per-column resolution done up front.
/// Build once per partition (or per job), then call [`Self::apply`] per
/// row.
pub struct FlatRecodeApplier {
    actions: Vec<ColumnAction>,
    out_width: usize,
}

impl FlatRecodeApplier {
    /// Resolve `spec` + `map` against `schema` into per-column actions.
    pub fn new(
        map: &RecodeMap,
        schema: &Schema,
        spec: &TransformSpec,
    ) -> Result<FlatRecodeApplier> {
        let recode_columns = spec.effective_recode_columns(schema);
        let mut actions = Vec::with_capacity(schema.len());
        let mut out_width = 0;
        for f in schema.fields() {
            let is_recoded = recode_columns
                .iter()
                .any(|c| c.eq_ignore_ascii_case(&f.name));
            let is_dummy = spec
                .dummy_code_columns
                .iter()
                .any(|c| c.eq_ignore_ascii_case(&f.name));
            if !is_recoded && !is_dummy {
                actions.push(ColumnAction::Pass);
                out_width += 1;
                continue;
            }
            let codes: HashMap<Arc<str>, i64> = map
                .column_codes(&f.name)
                .map(|m| m.iter().map(|(v, c)| (Arc::from(v.as_str()), *c)).collect())
                .unwrap_or_default();
            if is_dummy {
                let k = codes.len();
                actions.push(ColumnAction::Dummy {
                    name: f.name.clone(),
                    codes,
                    k,
                });
                out_width += k;
            } else {
                actions.push(ColumnAction::Recode {
                    name: f.name.clone(),
                    codes,
                });
                out_width += 1;
            }
        }
        Ok(FlatRecodeApplier { actions, out_width })
    }

    /// Width of the transformed row.
    pub fn output_width(&self) -> usize {
        self.out_width
    }

    /// Transform one row: recode categorical values, expand dummy
    /// blocks. Matches [`RecodeMap::code`]-based application value for
    /// value (the property tests assert this).
    pub fn apply(&self, row: &Row) -> Result<Row> {
        let mut values = Vec::with_capacity(self.out_width);
        for (i, action) in self.actions.iter().enumerate() {
            let v = row.get(i);
            match action {
                ColumnAction::Pass => values.push(v.clone()),
                ColumnAction::Recode { name, codes } => match v {
                    Value::Null => values.push(Value::Null),
                    Value::Str(s) => values.push(Value::Int(lookup(codes, s, name)?)),
                    other => {
                        return Err(SqlmlError::Type(format!(
                            "expected a categorical string in {name}, found {other}"
                        )))
                    }
                },
                ColumnAction::Dummy { name, codes, k } => {
                    let code = match v {
                        Value::Null => 0,
                        Value::Str(s) => lookup(codes, s, name)?,
                        other => {
                            return Err(SqlmlError::Type(format!(
                                "expected a categorical string in {name}, found {other}"
                            )))
                        }
                    };
                    for j in 1..=*k as i64 {
                        values.push(Value::Int((j == code) as i64));
                    }
                }
            }
        }
        Ok(Row::new(values))
    }
}

fn lookup(codes: &HashMap<Arc<str>, i64>, s: &Arc<str>, col: &str) -> Result<i64> {
    codes
        .get(&**s)
        .copied()
        .ok_or_else(|| SqlmlError::Execution(format!("unseen value {s:?} for {col}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::categorical("abandoned"),
        ])
    }

    fn map() -> RecodeMap {
        RecodeMap::from_pairs(vec![
            ("gender".into(), "F".into()),
            ("gender".into(), "M".into()),
            ("abandoned".into(), "Yes".into()),
            ("abandoned".into(), "No".into()),
        ])
    }

    #[test]
    fn recode_matches_map_code() {
        let spec = TransformSpec::default();
        let a = FlatRecodeApplier::new(&map(), &schema(), &spec).unwrap();
        let out = a.apply(&row![30i64, "F", "Yes"]).unwrap();
        assert_eq!(out, row![30i64, 1i64, 2i64]);
        assert_eq!(a.output_width(), 3);
    }

    #[test]
    fn dummy_expansion_and_null_blocks() {
        let spec = TransformSpec::new(&["gender"]);
        let a = FlatRecodeApplier::new(&map(), &schema(), &spec).unwrap();
        // F -> (1, 0); abandoned recodes.
        let out = a.apply(&row![30i64, "F", "No"]).unwrap();
        assert_eq!(out, row![30i64, 1i64, 0i64, 1i64]);
        assert_eq!(a.output_width(), 4);
        // NULL gender -> all-zero block.
        let out = a
            .apply(&Row::new(vec![
                Value::Int(30),
                Value::Null,
                Value::Str("No".into()),
            ]))
            .unwrap();
        assert_eq!(out, row![30i64, 0i64, 0i64, 1i64]);
    }

    #[test]
    fn unseen_value_errors() {
        let spec = TransformSpec::default();
        let a = FlatRecodeApplier::new(&map(), &schema(), &spec).unwrap();
        assert!(a.apply(&row![30i64, "X", "Yes"]).is_err());
    }

    #[test]
    fn non_string_in_categorical_errors() {
        let spec = TransformSpec::default();
        let a = FlatRecodeApplier::new(&map(), &schema(), &spec).unwrap();
        let bad = Row::new(vec![Value::Int(30), Value::Int(7), Value::Str("No".into())]);
        assert!(a.apply(&bad).is_err());
    }
}
