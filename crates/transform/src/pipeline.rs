//! The In-SQL transformation pipeline: orchestrates the two-phase recode
//! and dummy coding entirely through SQL statements and table UDFs, so
//! everything runs inside the SQL engine with its partition parallelism
//! (the paper's "In-SQL transformation" approach).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlml_common::{Result, Schema, SqlmlError};
use sqlml_sqlengine::{Engine, PartitionedTable};

use crate::dummy::DummyCodeUdf;
use crate::effect::{EffectCodeUdf, OrthogonalCodeUdf};
use crate::recode::{AssignRecodeIdsUdf, DistinctValuesUdf, RecodeMap};

/// Register all transformation table UDFs with an engine. Idempotent.
pub fn register_udfs(engine: &Engine) {
    engine.register_table_udf(Arc::new(DistinctValuesUdf));
    engine.register_table_udf(Arc::new(AssignRecodeIdsUdf));
    engine.register_table_udf(Arc::new(DummyCodeUdf));
    engine.register_table_udf(Arc::new(EffectCodeUdf));
    engine.register_table_udf(Arc::new(OrthogonalCodeUdf));
}

/// What to transform.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransformSpec {
    /// Categorical columns to recode. Empty = every column flagged
    /// `categorical` in the input schema.
    pub recode_columns: Vec<String>,
    /// Recoded columns to further dummy-code (must be a subset of the
    /// recoded columns).
    pub dummy_code_columns: Vec<String>,
}

impl TransformSpec {
    /// Recode all categorical columns, dummy-code the given ones.
    pub fn new(dummy_code_columns: &[&str]) -> Self {
        TransformSpec {
            recode_columns: Vec::new(),
            dummy_code_columns: dummy_code_columns.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The recode columns, defaulted from a schema when unspecified.
    pub fn effective_recode_columns(&self, schema: &Schema) -> Vec<String> {
        if self.recode_columns.is_empty() {
            schema.categorical_columns()
        } else {
            self.recode_columns.clone()
        }
    }
}

/// Result of a transformation run.
#[derive(Debug)]
pub struct TransformOutput {
    /// The fully transformed (recoded + dummy-coded) table.
    pub table: PartitionedTable,
    /// The recode map built (or reused) — cacheable per §5.2.
    pub recode_map: RecodeMap,
    /// Time spent building the recode map (zero when a cached map was
    /// supplied).
    pub map_build: Duration,
    /// Time spent applying recode join + dummy coding.
    pub apply: Duration,
}

static TEMP_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_name(tag: &str) -> String {
    format!(
        "__sqlml_{tag}_{}",
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// Runs In-SQL transformations against one engine.
///
/// ```
/// use sqlml_sqlengine::{Engine, EngineConfig};
/// use sqlml_transform::{InSqlTransformer, TransformSpec};
/// use sqlml_common::schema::{DataType, Field, Schema};
/// use sqlml_common::row;
///
/// let engine = Engine::new(EngineConfig::with_workers(2));
/// engine.register_rows(
///     "t",
///     Schema::new(vec![Field::new("age", DataType::Int), Field::categorical("gender")]),
///     vec![row![57i64, "F"], row![40i64, "M"]],
/// );
/// let transformer = InSqlTransformer::new(engine);
/// let out = transformer.transform("t", &TransformSpec::default()).unwrap();
/// // gender recoded to consecutive integers from 1 (F=1, M=2).
/// assert_eq!(out.recode_map.code("gender", "F"), Some(1));
/// assert_eq!(out.recode_map.code("gender", "M"), Some(2));
/// ```
#[derive(Clone)]
pub struct InSqlTransformer {
    engine: Engine,
}

impl InSqlTransformer {
    /// Wrap an engine, registering the transformation UDFs.
    pub fn new(engine: Engine) -> Self {
        register_udfs(&engine);
        InSqlTransformer { engine }
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Phase 1 of §2.1: build the recode map for `columns` of `table` with
    /// one parallel scan (the `distinct_values` UDF), a global
    /// `SELECT DISTINCT ... ORDER BY` merge, and the `assign_recode_ids`
    /// UDF.
    pub fn build_recode_map(&self, table: &str, columns: &[String]) -> Result<RecodeMap> {
        if columns.is_empty() {
            return Ok(RecodeMap::default());
        }
        let col_args = columns
            .iter()
            .map(|c| format!("'{c}'"))
            .collect::<Vec<_>>()
            .join(", ");
        let pairs = temp_name("pairs");
        self.engine.execute(&format!(
            "CREATE TABLE {pairs} AS \
             SELECT DISTINCT colname, colval \
             FROM TABLE(distinct_values({table}, {col_args})) AS d \
             ORDER BY colname, colval"
        ))?;
        let result = self.engine.query(&format!(
            "SELECT * FROM TABLE(assign_recode_ids({pairs})) AS m"
        ));
        self.engine.execute(&format!("DROP TABLE {pairs}"))?;
        let map = RecodeMap::from_rows(&result?.collect_rows())?;
        map.validate()?;
        Ok(map)
    }

    /// Register a recode map as a catalog table (the `M` table); returns
    /// its name.
    pub fn register_recode_map(&self, map: &RecodeMap) -> String {
        let name = temp_name("recodemap");
        self.engine.register_table(
            &name,
            PartitionedTable::single(crate::recode::recode_map_schema(), map.to_rows()),
        );
        name
    }

    /// Generate the §2.1 phase-2 recoding join:
    /// `SELECT T.a, M1.recodeval AS g, ... FROM t T, m M1, ... WHERE ...`.
    pub fn recode_join_sql(
        &self,
        table: &str,
        schema: &Schema,
        recode_columns: &[String],
        map_table: &str,
    ) -> Result<String> {
        let mut projections = Vec::with_capacity(schema.len());
        let mut froms = vec![format!("{table} T")];
        let mut predicates = Vec::new();
        for field in schema.fields() {
            if let Some(pos) = recode_columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(&field.name))
            {
                let alias = format!("M{pos}");
                projections.push(format!("{alias}.recodeval AS {}", field.name));
                froms.push(format!("{map_table} AS {alias}"));
                predicates.push(format!("{alias}.colname = '{}'", field.name));
                predicates.push(format!("T.{} = {alias}.colval", field.name));
            } else {
                projections.push(format!("T.{}", field.name));
            }
        }
        for c in recode_columns {
            if schema.index_of(c).is_err() {
                return Err(SqlmlError::Plan(format!(
                    "recode column {c:?} not in table {table:?}"
                )));
            }
        }
        let mut sql = format!(
            "SELECT {} FROM {}",
            projections.join(", "),
            froms.join(", ")
        );
        if !predicates.is_empty() {
            sql.push_str(&format!(" WHERE {}", predicates.join(" AND ")));
        }
        Ok(sql)
    }

    /// Full transformation with a freshly built recode map (two passes).
    pub fn transform(&self, table: &str, spec: &TransformSpec) -> Result<TransformOutput> {
        let schema = self.engine.catalog().table(table)?.schema().clone();
        let columns = spec.effective_recode_columns(&schema);
        let t0 = Instant::now();
        let map = self.build_recode_map(table, &columns)?;
        let map_build = t0.elapsed();
        self.apply_with_map(table, &schema, spec, map, map_build)
    }

    /// Transformation reusing a cached recode map — §5.2: "we avoid one
    /// of the two passes".
    pub fn transform_with_map(
        &self,
        table: &str,
        spec: &TransformSpec,
        map: &RecodeMap,
    ) -> Result<TransformOutput> {
        let schema = self.engine.catalog().table(table)?.schema().clone();
        let columns = spec.effective_recode_columns(&schema);
        for c in &columns {
            if !map.has_column(c) {
                return Err(SqlmlError::Cache(format!(
                    "cached recode map lacks column {c:?}"
                )));
            }
        }
        self.apply_with_map(table, &schema, spec, map.clone(), Duration::ZERO)
    }

    fn apply_with_map(
        &self,
        table: &str,
        schema: &Schema,
        spec: &TransformSpec,
        map: RecodeMap,
        map_build: Duration,
    ) -> Result<TransformOutput> {
        let columns = spec.effective_recode_columns(schema);
        for d in &spec.dummy_code_columns {
            if !columns.iter().any(|c| c.eq_ignore_ascii_case(d)) {
                return Err(SqlmlError::Plan(format!(
                    "dummy-code column {d:?} is not among the recoded columns"
                )));
            }
        }

        let t0 = Instant::now();
        // Phase 2: recode via join (or pass-through when nothing to do).
        let mut current: PartitionedTable = if columns.is_empty() {
            self.engine.query(&format!("SELECT * FROM {table}"))?
        } else {
            let map_table = self.register_recode_map(&map);
            let sql = self.recode_join_sql(table, schema, &columns, &map_table)?;
            let result = self.engine.query(&sql);
            self.engine.execute(&format!("DROP TABLE {map_table}"))?;
            result?
        };

        // Dummy coding, one column at a time, through SQL + table UDF.
        for col in &spec.dummy_code_columns {
            let values = map.values_in_code_order(col);
            if values.is_empty() {
                return Err(SqlmlError::Plan(format!(
                    "no recode map entries for dummy-code column {col:?}"
                )));
            }
            let tmp = temp_name("dummyin");
            self.engine.register_table(&tmp, current);
            let value_args = values
                .iter()
                .map(|v| format!("'{}'", v.replace('\'', "''")))
                .collect::<Vec<_>>()
                .join(", ");
            let result = self.engine.query(&format!(
                "SELECT * FROM TABLE(dummy_code({tmp}, '{col}', {value_args})) AS d"
            ));
            self.engine.execute(&format!("DROP TABLE {tmp}"))?;
            current = result?;
        }

        Ok(TransformOutput {
            table: current,
            recode_map: map,
            map_build,
            apply: t0.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use sqlml_common::schema::{DataType, Field};
    use sqlml_common::Value;
    use sqlml_sqlengine::EngineConfig;

    /// The table of Figure 1(a).
    fn engine_with_figure1() -> Engine {
        let e = Engine::new(EngineConfig::with_workers(3));
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::new("amount", DataType::Double),
            Field::categorical("abandoned"),
        ]);
        e.register_rows(
            "t",
            schema,
            vec![
                row![57i64, "F", 103.25, "Yes"],
                row![40i64, "M", 35.8, "Yes"],
                row![35i64, "F", 48.9, "No"],
            ],
        );
        e
    }

    #[test]
    fn two_phase_recode_reproduces_figure_1b() {
        let tr = InSqlTransformer::new(engine_with_figure1());
        let out = tr.transform("t", &TransformSpec::default()).unwrap();
        // Figure 1(b): F=1, M=2; No=1, Yes=2 (sorted order).
        let rows = out.table.collect_sorted();
        assert_eq!(
            rows,
            vec![
                row![35i64, 1i64, 48.9, 1i64],
                row![40i64, 2i64, 35.8, 2i64],
                row![57i64, 1i64, 103.25, 2i64],
            ]
        );
        assert_eq!(out.recode_map.code("gender", "F"), Some(1));
        assert_eq!(out.recode_map.code("abandoned", "Yes"), Some(2));
        assert_eq!(
            out.table.schema().names(),
            vec!["age", "gender", "amount", "abandoned"]
        );
        assert_eq!(out.table.schema().field(1).data_type, DataType::Int);
    }

    #[test]
    fn recode_plus_dummy_reproduces_figure_1c() {
        let tr = InSqlTransformer::new(engine_with_figure1());
        let out = tr.transform("t", &TransformSpec::new(&["gender"])).unwrap();
        assert_eq!(
            out.table.schema().names(),
            vec!["age", "gender_F", "gender_M", "amount", "abandoned"]
        );
        let rows = out.table.collect_sorted();
        assert_eq!(
            rows,
            vec![
                row![35i64, 1i64, 0i64, 48.9, 1i64],
                row![40i64, 0i64, 1i64, 35.8, 2i64],
                row![57i64, 1i64, 0i64, 103.25, 2i64],
            ]
        );
    }

    #[test]
    fn distributed_map_matches_centralized_reference() {
        // Many partitions, skewed values: the two-phase distributed map
        // must equal the centralized single-scan map.
        let e = Engine::new(EngineConfig::with_workers(7));
        let schema = Schema::new(vec![Field::categorical("c")]);
        let values = ["a", "b", "c", "d", "e"];
        let rows: Vec<_> = (0..200).map(|i| row![values[i * i % 5]]).collect();
        e.register_rows("data", schema.clone(), rows);
        let tr = InSqlTransformer::new(e.clone());
        let distributed = tr.build_recode_map("data", &["c".to_string()]).unwrap();
        let table = e.catalog().table("data").unwrap();
        let reference =
            RecodeMap::from_table_scan(table.partitions(), &schema, &["c".to_string()]).unwrap();
        assert_eq!(distributed, reference);
    }

    #[test]
    fn cached_map_skips_phase_one() {
        let tr = InSqlTransformer::new(engine_with_figure1());
        let first = tr.transform("t", &TransformSpec::default()).unwrap();
        assert!(first.map_build > Duration::ZERO);
        let second = tr
            .transform_with_map("t", &TransformSpec::default(), &first.recode_map)
            .unwrap();
        assert_eq!(second.map_build, Duration::ZERO);
        assert_eq!(second.table.collect_sorted(), first.table.collect_sorted());
    }

    #[test]
    fn cached_map_missing_column_is_rejected() {
        let tr = InSqlTransformer::new(engine_with_figure1());
        let partial = RecodeMap::from_pairs(vec![("gender".into(), "F".into())]);
        assert!(tr
            .transform_with_map("t", &TransformSpec::default(), &partial)
            .is_err());
    }

    #[test]
    fn dummy_code_of_unrecoded_column_is_rejected() {
        let tr = InSqlTransformer::new(engine_with_figure1());
        let spec = TransformSpec {
            recode_columns: vec!["gender".into()],
            dummy_code_columns: vec!["abandoned".into()],
        };
        assert!(tr.transform("t", &spec).is_err());
    }

    #[test]
    fn no_categorical_columns_is_a_pass_through() {
        let e = Engine::new(EngineConfig::with_workers(2));
        e.register_rows(
            "nums",
            Schema::new(vec![Field::new("x", DataType::Int)]),
            vec![row![1i64], row![2i64]],
        );
        let tr = InSqlTransformer::new(e);
        let out = tr.transform("nums", &TransformSpec::default()).unwrap();
        assert_eq!(out.table.num_rows(), 2);
        assert!(out.recode_map.columns().next().is_none());
    }

    #[test]
    fn recode_join_sql_matches_paper_shape() {
        let tr = InSqlTransformer::new(engine_with_figure1());
        let schema = tr.engine().catalog().table("t").unwrap().schema().clone();
        let sql = tr
            .recode_join_sql("t", &schema, &["gender".into(), "abandoned".into()], "m")
            .unwrap();
        assert!(sql.contains("M0.recodeval AS gender"), "{sql}");
        assert!(sql.contains("M1.recodeval AS abandoned"), "{sql}");
        assert!(sql.contains("T.gender = M0.colval"), "{sql}");
        assert!(sql.contains("M0.colname = 'gender'"), "{sql}");
        // And it parses + plans.
        tr.engine().register_table(
            "m",
            PartitionedTable::single(crate::recode::recode_map_schema(), vec![]),
        );
        tr.engine().validate(&sql).unwrap();
    }

    #[test]
    fn transformed_output_is_fully_numeric() {
        let tr = InSqlTransformer::new(engine_with_figure1());
        let out = tr.transform("t", &TransformSpec::new(&["gender"])).unwrap();
        for r in out.table.collect_rows() {
            assert!(r.to_f64_vec().is_ok(), "row {r} still has strings");
        }
    }

    #[test]
    fn values_with_quotes_survive_dummy_coding() {
        let e = Engine::new(EngineConfig::with_workers(2));
        let schema = Schema::new(vec![Field::categorical("c")]);
        e.register_rows("q", schema, vec![row!["it's"], row!["plain"]]);
        let tr = InSqlTransformer::new(e);
        let out = tr.transform("q", &TransformSpec::new(&["c"])).unwrap();
        assert_eq!(out.table.schema().len(), 2);
        let rows = out.table.collect_sorted();
        // Exactly one indicator set per row.
        for r in &rows {
            let total: i64 = (0..2).map(|i| r.get(i).as_i64().unwrap()).sum();
            assert_eq!(total, 1);
        }
        let _ = Value::Null; // keep Value import used in both cfg branches
    }
}
