//! Recoding of categorical variables (§2.1).

use std::collections::BTreeMap;

use sqlml_common::schema::{DataType, Field};
use sqlml_common::{Result, Row, Schema, SqlmlError, Value};
use sqlml_sqlengine::udf::{PartitionCtx, TableUdf};

/// The recode-map table layout: `(colname, colval, recodeval)` — the
/// paper's `M` table.
pub fn recode_map_schema() -> Schema {
    Schema::new(vec![
        Field::new("colname", DataType::Str),
        Field::new("colval", DataType::Str),
        Field::new("recodeval", DataType::Int),
    ])
}

/// The distinct-pairs layout produced by phase 1: `(colname, colval)`.
pub fn distinct_pairs_schema() -> Schema {
    Schema::new(vec![
        Field::new("colname", DataType::Str),
        Field::new("colval", DataType::Str),
    ])
}

/// A recode map: per categorical column, a bijection from string values
/// onto `1..=K` (consecutive, 1-based, assigned in sorted value order so
/// the map is deterministic under any partitioning).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecodeMap {
    columns: BTreeMap<String, BTreeMap<String, i64>>,
}

impl RecodeMap {
    /// Build from (column, value) pairs; values are sorted per column and
    /// assigned consecutive codes from 1.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, String)>) -> Self {
        let mut sets: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (c, v) in pairs {
            sets.entry(c).or_default().push(v);
        }
        let mut columns = BTreeMap::new();
        for (c, mut vals) in sets {
            vals.sort();
            vals.dedup();
            let m = vals
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v, i as i64 + 1))
                .collect();
            columns.insert(c, m);
        }
        RecodeMap { columns }
    }

    /// Build directly from a table by scanning the named categorical
    /// columns — the centralized one-pass algorithm the paper describes
    /// for a single machine. Used as the reference in tests.
    pub fn from_table_scan(
        partitions: &[std::sync::Arc<Vec<Row>>],
        schema: &Schema,
        columns: &[String],
    ) -> Result<RecodeMap> {
        let mut pairs = Vec::new();
        for col in columns {
            let idx = schema.index_of(col)?;
            for part in partitions {
                for r in part.iter() {
                    if let Value::Str(s) = r.get(idx) {
                        pairs.push((col.clone(), s.to_string()));
                    }
                }
            }
        }
        Ok(RecodeMap::from_pairs(pairs))
    }

    /// The code for a value of a column.
    pub fn code(&self, column: &str, value: &str) -> Option<i64> {
        self.columns.get(column)?.get(value).copied()
    }

    /// The full value → code map of one column, if present. Used to build
    /// flat per-partition appliers that probe a single `HashMap` per cell
    /// instead of walking two nested `BTreeMap`s.
    pub fn column_codes(&self, column: &str) -> Option<&BTreeMap<String, i64>> {
        self.columns.get(column)
    }

    /// Number of distinct values of a column (0 if unknown).
    pub fn cardinality(&self, column: &str) -> usize {
        self.columns.get(column).map(|m| m.len()).unwrap_or(0)
    }

    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(|s| s.as_str())
    }

    pub fn has_column(&self, column: &str) -> bool {
        self.columns.contains_key(column)
    }

    /// The values of a column in code order (code 1 first).
    pub fn values_in_code_order(&self, column: &str) -> Vec<String> {
        let Some(m) = self.columns.get(column) else {
            return Vec::new();
        };
        let mut pairs: Vec<(&i64, &String)> = m.iter().map(|(v, c)| (c, v)).collect();
        pairs.sort();
        pairs.into_iter().map(|(_, v)| v.clone()).collect()
    }

    /// Serialize as rows of the `M` table.
    pub fn to_rows(&self) -> Vec<Row> {
        let mut out = Vec::new();
        for (c, m) in &self.columns {
            for (v, code) in m {
                out.push(Row::new(vec![
                    Value::Str(c.as_str().into()),
                    Value::Str(v.as_str().into()),
                    Value::Int(*code),
                ]));
            }
        }
        out
    }

    /// Parse from rows of the `M` table.
    pub fn from_rows(rows: &[Row]) -> Result<RecodeMap> {
        let mut columns: BTreeMap<String, BTreeMap<String, i64>> = BTreeMap::new();
        for r in rows {
            if r.len() != 3 {
                return Err(SqlmlError::Execution(
                    "recode map rows must have 3 columns".into(),
                ));
            }
            columns
                .entry(r.get(0).as_str()?.to_string())
                .or_default()
                .insert(r.get(1).as_str()?.to_string(), r.get(2).as_i64()?);
        }
        Ok(RecodeMap { columns })
    }

    /// Check the invariant: per column, codes are exactly `1..=K`.
    pub fn validate(&self) -> Result<()> {
        for (c, m) in &self.columns {
            let mut codes: Vec<i64> = m.values().copied().collect();
            codes.sort_unstable();
            let expect: Vec<i64> = (1..=m.len() as i64).collect();
            if codes != expect {
                return Err(SqlmlError::Execution(format!(
                    "recode map for {c:?} is not consecutive-from-1: {codes:?}"
                )));
            }
        }
        Ok(())
    }
}

/// Phase-1 table UDF: `TABLE(distinct_values(t, 'col1', 'col2', ...))`.
///
/// Runs once per partition in parallel, emitting the partition-local
/// distinct `(colname, colval)` pairs of every requested column — one
/// scan of the data computes the distincts for *all* columns, which §2.1
/// argues is the advantage over issuing one `SELECT DISTINCT` per column.
pub struct DistinctValuesUdf;

impl TableUdf for DistinctValuesUdf {
    fn name(&self) -> &str {
        "distinct_values"
    }

    fn output_schema(&self, _input: &Schema, args: &[Value]) -> Result<Schema> {
        if args.is_empty() {
            return Err(SqlmlError::Plan(
                "distinct_values needs at least one column name".into(),
            ));
        }
        Ok(distinct_pairs_schema())
    }

    fn execute(
        &self,
        rows: &[Row],
        input_schema: &Schema,
        args: &[Value],
        _ctx: &PartitionCtx,
    ) -> Result<Vec<Row>> {
        let mut col_indices: Vec<(std::sync::Arc<str>, usize)> = Vec::with_capacity(args.len());
        for a in args {
            let name = a.as_str()?;
            col_indices.push((name.into(), input_schema.index_of(name)?));
        }
        let mut seen: std::collections::HashSet<(usize, &str)> = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in rows {
            for (i, (name, idx)) in col_indices.iter().enumerate() {
                match r.get(*idx) {
                    Value::Str(s) => {
                        if seen.insert((i, &**s)) {
                            out.push(Row::new(vec![
                                Value::Str(name.clone()),
                                Value::Str(s.clone()),
                            ]));
                        }
                    }
                    Value::Null => {} // NULLs are not recoded.
                    other => {
                        return Err(SqlmlError::Type(format!(
                            "distinct_values: column {name:?} holds non-string {other}"
                        )))
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Phase-1.5 table UDF: `TABLE(assign_recode_ids(d))` where `d` is the
/// *globally deduplicated, sorted* `(colname, colval)` table gathered
/// into a single partition (the pipeline produces it with
/// `SELECT DISTINCT ... ORDER BY colname, colval`). Assigns consecutive
/// codes from 1 per column.
pub struct AssignRecodeIdsUdf;

impl TableUdf for AssignRecodeIdsUdf {
    fn name(&self) -> &str {
        "assign_recode_ids"
    }

    fn output_schema(&self, input: &Schema, _args: &[Value]) -> Result<Schema> {
        if input.len() != 2 {
            return Err(SqlmlError::Plan(
                "assign_recode_ids expects a (colname, colval) input".into(),
            ));
        }
        Ok(recode_map_schema())
    }

    fn execute(
        &self,
        rows: &[Row],
        _input_schema: &Schema,
        _args: &[Value],
        ctx: &PartitionCtx,
    ) -> Result<Vec<Row>> {
        // Code assignment is global: the input must be gathered.
        if ctx.num_partitions != 1 && !rows.is_empty() {
            return Err(SqlmlError::Execution(
                "assign_recode_ids requires a single-partition (gathered) input; \
                 use ORDER BY to gather the distinct pairs first"
                    .into(),
            ));
        }
        let mut out = Vec::with_capacity(rows.len());
        let mut current_col: Option<String> = None;
        let mut next_code = 1i64;
        let mut last_val: Option<String> = None;
        for r in rows {
            let col = r.get(0).as_str()?.to_string();
            let val = r.get(1).as_str()?.to_string();
            if current_col.as_deref() != Some(col.as_str()) {
                current_col = Some(col.clone());
                next_code = 1;
            } else if let Some(prev) = &last_val {
                if *prev >= val {
                    return Err(SqlmlError::Execution(
                        "assign_recode_ids input must be sorted by (colname, colval) \
                         with no duplicates"
                            .into(),
                    ));
                }
            }
            out.push(Row::new(vec![
                Value::Str(col.into()),
                Value::Str(val.as_str().into()),
                Value::Int(next_code),
            ]));
            last_val = Some(val);
            next_code += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use std::sync::Arc;

    #[test]
    fn from_pairs_assigns_sorted_consecutive_codes() {
        let m = RecodeMap::from_pairs(vec![
            ("gender".into(), "M".into()),
            ("gender".into(), "F".into()),
            ("gender".into(), "M".into()),
            ("abandoned".into(), "Yes".into()),
            ("abandoned".into(), "No".into()),
        ]);
        assert_eq!(m.code("gender", "F"), Some(1));
        assert_eq!(m.code("gender", "M"), Some(2));
        assert_eq!(m.code("abandoned", "No"), Some(1));
        assert_eq!(m.code("abandoned", "Yes"), Some(2));
        assert_eq!(m.cardinality("gender"), 2);
        assert_eq!(m.code("gender", "X"), None);
        m.validate().unwrap();
    }

    #[test]
    fn rows_round_trip() {
        let m = RecodeMap::from_pairs(vec![
            ("c".into(), "a".into()),
            ("c".into(), "b".into()),
            ("d".into(), "z".into()),
        ]);
        let back = RecodeMap::from_rows(&m.to_rows()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn values_in_code_order() {
        let m = RecodeMap::from_pairs(vec![
            ("c".into(), "beta".into()),
            ("c".into(), "alpha".into()),
            ("c".into(), "gamma".into()),
        ]);
        assert_eq!(m.values_in_code_order("c"), vec!["alpha", "beta", "gamma"]);
        assert!(m.values_in_code_order("missing").is_empty());
    }

    #[test]
    fn distinct_values_udf_scans_all_columns_in_one_pass() {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::categorical("abandoned"),
        ]);
        let rows = vec![
            row![57i64, "F", "Yes"],
            row![40i64, "M", "Yes"],
            row![35i64, "F", "No"],
        ];
        let ctx = PartitionCtx {
            partition: 0,
            num_partitions: 1,
            worker: 0,
            num_workers: 1,
            node: "node-0".into(),
        };
        let out = DistinctValuesUdf
            .execute(
                &rows,
                &schema,
                &[Value::Str("gender".into()), Value::Str("abandoned".into())],
                &ctx,
            )
            .unwrap();
        let mut pairs: Vec<(String, String)> = out
            .iter()
            .map(|r| {
                (
                    r.get(0).as_str().unwrap().to_string(),
                    r.get(1).as_str().unwrap().to_string(),
                )
            })
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                ("abandoned".to_string(), "No".to_string()),
                ("abandoned".to_string(), "Yes".to_string()),
                ("gender".to_string(), "F".to_string()),
                ("gender".to_string(), "M".to_string()),
            ]
        );
    }

    #[test]
    fn distinct_values_udf_skips_nulls_rejects_numbers() {
        let schema = Schema::new(vec![
            Field::categorical("g"),
            Field::new("n", DataType::Int),
        ]);
        let ctx = PartitionCtx {
            partition: 0,
            num_partitions: 1,
            worker: 0,
            num_workers: 1,
            node: "node-0".into(),
        };
        let rows = vec![Row::new(vec![Value::Null, Value::Int(1)])];
        let out = DistinctValuesUdf
            .execute(&rows, &schema, &[Value::Str("g".into())], &ctx)
            .unwrap();
        assert!(out.is_empty());
        let bad = DistinctValuesUdf.execute(&rows, &schema, &[Value::Str("n".into())], &ctx);
        assert!(bad.is_err());
    }

    #[test]
    fn assign_ids_requires_sorted_gathered_input() {
        let ctx1 = PartitionCtx {
            partition: 0,
            num_partitions: 1,
            worker: 0,
            num_workers: 1,
            node: "node-0".into(),
        };
        let sorted = vec![
            row!["abandoned", "No"],
            row!["abandoned", "Yes"],
            row!["gender", "F"],
            row!["gender", "M"],
        ];
        let out = AssignRecodeIdsUdf
            .execute(&sorted, &distinct_pairs_schema(), &[], &ctx1)
            .unwrap();
        let m = RecodeMap::from_rows(&out).unwrap();
        assert_eq!(m.code("gender", "F"), Some(1));
        assert_eq!(m.code("abandoned", "Yes"), Some(2));
        m.validate().unwrap();

        // Unsorted input is rejected.
        let unsorted = vec![row!["gender", "M"], row!["gender", "F"]];
        assert!(AssignRecodeIdsUdf
            .execute(&unsorted, &distinct_pairs_schema(), &[], &ctx1)
            .is_err());

        // Multi-partition non-empty input is rejected.
        let ctx2 = PartitionCtx {
            num_partitions: 2,
            ..ctx1
        };
        assert!(AssignRecodeIdsUdf
            .execute(&sorted, &distinct_pairs_schema(), &[], &ctx2)
            .is_err());
    }

    #[test]
    fn centralized_scan_matches_from_pairs() {
        let schema = Schema::new(vec![Field::categorical("g")]);
        let parts = vec![
            Arc::new(vec![row!["b"], row!["a"]]),
            Arc::new(vec![row!["c"], row!["a"]]),
        ];
        let m = RecodeMap::from_table_scan(&parts, &schema, &["g".to_string()]).unwrap();
        assert_eq!(m.code("g", "a"), Some(1));
        assert_eq!(m.code("g", "b"), Some(2));
        assert_eq!(m.code("g", "c"), Some(3));
    }
}
