//! Dummy coding / one-hot encoding (§2.2).

use sqlml_common::schema::{DataType, Field};
use sqlml_common::{Result, Row, Schema, SqlmlError, Value};
use sqlml_sqlengine::udf::{PartitionCtx, TableUdf};

/// Table UDF: `TABLE(dummy_code(t, 'col', 'val1', ..., 'valK'))`.
///
/// Expands the **already recoded** integer column `col` (values `1..=K`,
/// where code `i` corresponds to `val_i`) into `K` binary columns named
/// `col_val1 .. col_valK`, placed where `col` was. Runs per partition in
/// parallel — §2.2: "we only need a parallel table UDF that takes in the
/// number of distinct values ... and scans through each partition".
pub struct DummyCodeUdf;

/// Compute the expanded schema for dummy-coding `col` with value names.
fn expanded_schema(input: &Schema, col: &str, values: &[String]) -> Result<(usize, Schema)> {
    let idx = input.index_of(col)?;
    let mut fields = Vec::with_capacity(input.len() + values.len() - 1);
    for (i, f) in input.fields().iter().enumerate() {
        if i == idx {
            for v in values {
                fields.push(Field::new(
                    format!("{}_{}", f.name, sanitize(v)),
                    DataType::Int,
                ));
            }
        } else {
            fields.push(f.clone());
        }
    }
    Ok((idx, Schema::new(fields)))
}

/// Column-name-safe rendering of a categorical value.
fn sanitize(v: &str) -> String {
    v.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn parse_args(args: &[Value]) -> Result<(String, Vec<String>)> {
    if args.len() < 2 {
        return Err(SqlmlError::Plan(
            "dummy_code needs a column name plus its K value names (or the cardinality K)".into(),
        ));
    }
    let col = args[0].as_str()?.to_string();
    // Two invocation forms: value names (`dummy_code(t, 'gender', 'F',
    // 'M')` — indicator columns named after the values) or just the
    // cardinality (`dummy_code(t, 'gender', 2)` — generic names `1..K`,
    // usable in statically generated rewrite scripts where the recode
    // map is not known yet).
    if args.len() == 2 {
        if let Value::Int(k) = args[1] {
            if k < 1 {
                return Err(SqlmlError::Plan(format!(
                    "dummy_code cardinality must be >= 1, got {k}"
                )));
            }
            return Ok((col, (1..=k).map(|i| i.to_string()).collect()));
        }
    }
    let values = args[1..]
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Result<Vec<_>>>()?;
    Ok((col, values))
}

impl TableUdf for DummyCodeUdf {
    fn name(&self) -> &str {
        "dummy_code"
    }

    fn output_schema(&self, input: &Schema, args: &[Value]) -> Result<Schema> {
        let (col, values) = parse_args(args)?;
        Ok(expanded_schema(input, &col, &values)?.1)
    }

    fn execute(
        &self,
        rows: &[Row],
        input_schema: &Schema,
        args: &[Value],
        _ctx: &PartitionCtx,
    ) -> Result<Vec<Row>> {
        let (col, values) = parse_args(args)?;
        let (idx, _) = expanded_schema(input_schema, &col, &values)?;
        let k = values.len();
        let mut out = Vec::with_capacity(rows.len());
        for r in rows {
            let mut vals = Vec::with_capacity(r.len() + k - 1);
            for (i, v) in r.values().iter().enumerate() {
                if i == idx {
                    let code = match v {
                        Value::Null => 0, // NULL → all-zero indicator block
                        other => other.as_i64().map_err(|_| {
                            SqlmlError::Type(format!(
                                "dummy_code: column {col:?} must be recoded to integers first, \
                                 found {other}"
                            ))
                        })?,
                    };
                    if code < 0 || code as usize > k {
                        return Err(SqlmlError::Execution(format!(
                            "dummy_code: code {code} out of range 1..={k} for column {col:?}"
                        )));
                    }
                    for j in 1..=k {
                        vals.push(Value::Int((j as i64 == code) as i64));
                    }
                } else {
                    vals.push(v.clone());
                }
            }
            out.push(Row::new(vals));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;

    fn ctx() -> PartitionCtx {
        PartitionCtx {
            partition: 0,
            num_partitions: 1,
            worker: 0,
            num_workers: 1,
            node: "node-0".into(),
        }
    }

    fn recoded_schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("gender", DataType::Int),
            Field::new("amount", DataType::Double),
            Field::new("abandoned", DataType::Int),
        ])
    }

    fn args() -> Vec<Value> {
        vec![
            Value::Str("gender".into()),
            Value::Str("F".into()),
            Value::Str("M".into()),
        ]
    }

    #[test]
    fn reproduces_figure_1c() {
        // Figure 1(b) -> 1(c): gender 1/2 becomes female/male indicators.
        let rows = vec![
            row![57i64, 1i64, 103.25, 1i64],
            row![40i64, 2i64, 35.8, 1i64],
            row![35i64, 1i64, 48.9, 2i64],
        ];
        let out = DummyCodeUdf
            .execute(&rows, &recoded_schema(), &args(), &ctx())
            .unwrap();
        assert_eq!(out[0], row![57i64, 1i64, 0i64, 103.25, 1i64]);
        assert_eq!(out[1], row![40i64, 0i64, 1i64, 35.8, 1i64]);
        assert_eq!(out[2], row![35i64, 1i64, 0i64, 48.9, 2i64]);
    }

    #[test]
    fn schema_expansion_names_and_positions() {
        let s = DummyCodeUdf
            .output_schema(&recoded_schema(), &args())
            .unwrap();
        assert_eq!(
            s.names(),
            vec!["age", "gender_F", "gender_M", "amount", "abandoned"]
        );
        assert_eq!(s.field(1).data_type, DataType::Int);
    }

    #[test]
    fn exactly_one_hot_per_row() {
        let rows: Vec<Row> = (1..=2).map(|c| row![0i64, c as i64, 0.0, 1i64]).collect();
        let out = DummyCodeUdf
            .execute(&rows, &recoded_schema(), &args(), &ctx())
            .unwrap();
        for r in &out {
            let ones = r.get(1).as_i64().unwrap() + r.get(2).as_i64().unwrap();
            assert_eq!(ones, 1);
        }
    }

    #[test]
    fn null_becomes_all_zero_block() {
        let rows = vec![Row::new(vec![
            Value::Int(1),
            Value::Null,
            Value::Double(0.0),
            Value::Int(1),
        ])];
        let out = DummyCodeUdf
            .execute(&rows, &recoded_schema(), &args(), &ctx())
            .unwrap();
        assert_eq!(out[0].get(1), &Value::Int(0));
        assert_eq!(out[0].get(2), &Value::Int(0));
    }

    #[test]
    fn out_of_range_code_and_unrecoded_strings_error() {
        let rows = vec![row![0i64, 3i64, 0.0, 1i64]];
        assert!(DummyCodeUdf
            .execute(&rows, &recoded_schema(), &args(), &ctx())
            .is_err());
        let s = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::new("amount", DataType::Double),
            Field::new("abandoned", DataType::Int),
        ]);
        let rows = vec![row![0i64, "F", 0.0, 1i64]];
        assert!(DummyCodeUdf.execute(&rows, &s, &args(), &ctx()).is_err());
    }

    #[test]
    fn cardinality_form_uses_generic_names() {
        let args = vec![Value::Str("gender".into()), Value::Int(2)];
        let s = DummyCodeUdf
            .output_schema(&recoded_schema(), &args)
            .unwrap();
        assert_eq!(
            s.names(),
            vec!["age", "gender_1", "gender_2", "amount", "abandoned"]
        );
        let rows = vec![row![1i64, 2i64, 0.0, 1i64]];
        let out = DummyCodeUdf
            .execute(&rows, &recoded_schema(), &args, &ctx())
            .unwrap();
        assert_eq!(out[0], row![1i64, 0i64, 1i64, 0.0, 1i64]);
        assert!(DummyCodeUdf
            .output_schema(
                &recoded_schema(),
                &[Value::Str("gender".into()), Value::Int(0)]
            )
            .is_err());
    }

    #[test]
    fn value_names_are_sanitized() {
        let s = DummyCodeUdf
            .output_schema(
                &recoded_schema(),
                &[
                    Value::Str("gender".into()),
                    Value::Str("not known".into()),
                    Value::Str("f/m".into()),
                ],
            )
            .unwrap();
        assert!(s.names().contains(&"gender_not_known".to_string()));
        assert!(s.names().contains(&"gender_f_m".to_string()));
    }
}
