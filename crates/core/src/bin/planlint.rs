//! `planlint` — run the plan semantic analyzer over the whole workload
//! corpus.
//!
//! Builds the paper's synthetic warehouse (`carts` + `users` at unit-test
//! scale), registers the In-SQL transformation UDFs, then plans a battery
//! of corpus queries through both the fused and the unfused optimizer
//! paths and validates every resulting plan tree explicitly (so this
//! works in release builds too, where the engine's automatic debug-mode
//! validation is compiled out). Exits non-zero and names the query and
//! diagnostic on the first invariant violation.
//!
//! ```text
//! cargo run -p sqlml-core --bin planlint
//! ```

use std::process::ExitCode;

use sqlml_core::workload::{Workload, WorkloadScale, PREP_QUERY};
use sqlml_sqlengine::{Engine, EngineConfig};

/// Corpus queries: the paper's preparation query plus coverage of every
/// plan node the planner can emit (filter, project, join, aggregate,
/// distinct, sort, limit, scalar + table UDFs, and fusible chains).
fn corpus() -> Vec<String> {
    let mut queries: Vec<String> = vec![
        PREP_QUERY.to_string(),
        "SELECT * FROM carts".into(),
        "SELECT cartid, amount * 1.1 FROM carts WHERE amount > 100".into(),
        "SELECT userid, age + 1 FROM users WHERE country = 'USA' AND age BETWEEN 20 AND 60".into(),
        "SELECT DISTINCT country FROM users".into(),
        "SELECT country, count(*), avg(age) FROM users GROUP BY country".into(),
        "SELECT year, sum(amount), min(nitems), max(nitems) FROM carts \
         GROUP BY year ORDER BY year"
            .into(),
        "SELECT U.country, count(*) FROM carts C, users U \
         WHERE C.userid = U.userid GROUP BY U.country ORDER BY country LIMIT 5"
            .into(),
        "SELECT C.cartid, U.age FROM carts C LEFT JOIN users U ON C.userid = U.userid".into(),
        "SELECT abs(amount - 50), round(amount, 1) FROM carts LIMIT 10".into(),
        "SELECT upper(country), length(gender) FROM users WHERE gender IS NOT NULL".into(),
        "SELECT cartid FROM carts WHERE abandoned IN ('yes', 'no') AND NOT nitems = 0".into(),
        "SELECT cartid, CAST(amount AS BIGINT) FROM carts WHERE amount > 10 LIMIT 3".into(),
        // Table-UDF plans: the two-phase recode front end.
        "SELECT DISTINCT colname, colval \
         FROM TABLE(distinct_values(users, 'gender', 'country')) AS d \
         ORDER BY colname, colval"
            .into(),
        "SELECT * FROM TABLE(distinct_values(carts, 'abandoned')) AS d".into(),
    ];
    // Fusible chains at increasing depth (filter/project stacks collapse
    // into Plan::Fused; make sure every depth validates).
    for depth in 1..=3 {
        let mut q = "SELECT amount FROM carts WHERE amount > 0".to_string();
        for i in 0..depth {
            q.push_str(&format!(" AND nitems > {i}"));
        }
        queries.push(q);
    }
    queries
}

fn main() -> ExitCode {
    let wl = Workload::generate(WorkloadScale::TINY, 42);
    let engine = Engine::new(EngineConfig::with_workers(2));
    engine.register_rows("carts", wl.carts_schema.clone(), wl.carts);
    engine.register_rows("users", wl.users_schema.clone(), wl.users);
    sqlml_transform::pipeline::register_udfs(&engine);

    let mut failures = 0usize;
    let mut checked = 0usize;
    for sql in corpus() {
        for (mode, plan) in [
            ("fused", plan_query(&engine, &sql, true)),
            ("unfused", plan_query(&engine, &sql, false)),
        ] {
            checked += 1;
            match plan {
                Ok(()) => {}
                Err(e) => {
                    failures += 1;
                    eprintln!("planlint FAIL [{mode}] {sql}\n  {e}");
                }
            }
        }
    }
    if failures == 0 {
        println!("planlint: {checked} plans validated clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("planlint: {failures}/{checked} plans failed validation");
        ExitCode::FAILURE
    }
}

fn plan_query(engine: &Engine, sql: &str, fused: bool) -> sqlml_common::Result<()> {
    let stmt = sqlml_sqlengine::parser::parse_select(sql)?;
    let plan = if fused {
        engine.plan(&stmt)?
    } else {
        engine.plan_unfused(&stmt)?
    };
    sqlml_sqlengine::validate::validate(&plan, engine.catalog()).map(|_| ())
}
