//! The external transformation tool of the naive baseline.
//!
//! The paper's naive pipeline used **Jaql** as "a third tool" between the
//! SQL system and the ML system: it read the materialized SQL result from
//! HDFS, performed recoding + dummy coding with its built-in functions,
//! and wrote the transformed data back to HDFS. This module is that tool,
//! built as a two-job MapReduce-style program over DFS text files:
//!
//! * job 1 (map per part-file, reduce at the driver): collect distinct
//!   values per categorical column and build the recode map;
//! * job 2 (map per part-file): rewrite each row using the map, apply
//!   dummy coding, and write an output part-file.
//!
//! Both jobs run their map tasks in parallel, one thread per part-file —
//! but every byte still crosses the file system twice more than the
//! In-SQL approach, which is exactly the overhead Figure 3 charges the
//! naive bar with.

use std::collections::BTreeSet;

use sqlml_common::schema::{DataType, Field, Schema};
use sqlml_common::{codec, Result, SqlmlError, Value};
use sqlml_dfs::Dfs;
use sqlml_transform::{FlatRecodeApplier, RecodeMap, TransformSpec};

/// Output of the external transform job.
#[derive(Debug)]
pub struct ExternalTransformOutput {
    /// DFS directory holding the transformed part-files.
    pub output_dir: String,
    /// The transformed data's schema.
    pub schema: Schema,
    pub recode_map: RecodeMap,
    pub rows: usize,
}

/// Run the external transformation: `input_dir` (text part-files with
/// `input_schema`) → `output_dir` on the same DFS.
pub fn run_external_transform(
    dfs: &Dfs,
    input_dir: &str,
    input_schema: &Schema,
    spec: &TransformSpec,
    output_dir: &str,
) -> Result<ExternalTransformOutput> {
    let recode_columns = spec.effective_recode_columns(input_schema);
    for d in &spec.dummy_code_columns {
        if !recode_columns.iter().any(|c| c.eq_ignore_ascii_case(d)) {
            return Err(SqlmlError::Plan(format!(
                "dummy-code column {d:?} is not among the recoded columns"
            )));
        }
    }
    let files: Vec<String> = dfs
        .list(&format!("{input_dir}/"))
        .into_iter()
        .map(|f| f.path)
        .collect();
    if files.is_empty() {
        return Err(SqlmlError::Dfs(format!("no input under {input_dir}")));
    }
    let col_indices: Vec<(String, usize)> = recode_columns
        .iter()
        .map(|c| Ok((c.clone(), input_schema.index_of(c)?)))
        .collect::<Result<_>>()?;

    // ---- Job 1: distinct values per column (map side), merged at the
    // driver (reduce side).
    let partials: Vec<BTreeSet<(String, String)>> = parallel_over_files(&files, |path| {
        let text = dfs.read_string(path)?;
        let mut set = BTreeSet::new();
        for line in text.lines().filter(|l| !l.is_empty()) {
            let row = codec::decode_text_row(line, input_schema)?;
            for (name, idx) in &col_indices {
                if let Value::Str(s) = row.get(*idx) {
                    set.insert((name.clone(), s.to_string()));
                }
            }
        }
        Ok(set)
    })?;
    let mut all_pairs = BTreeSet::new();
    for p in partials {
        all_pairs.extend(p);
    }
    let recode_map = RecodeMap::from_pairs(all_pairs);
    recode_map.validate()?;

    // Transformed schema: recoded columns become BIGINT; dummy-coded
    // columns expand into K indicator columns.
    let mut fields = Vec::new();
    for f in input_schema.fields() {
        let is_recoded = recode_columns
            .iter()
            .any(|c| c.eq_ignore_ascii_case(&f.name));
        let is_dummy = spec
            .dummy_code_columns
            .iter()
            .any(|c| c.eq_ignore_ascii_case(&f.name));
        if is_dummy {
            for v in recode_map.values_in_code_order(&f.name) {
                fields.push(Field::new(
                    format!("{}_{}", f.name, sanitize(&v)),
                    DataType::Int,
                ));
            }
        } else if is_recoded {
            fields.push(Field::new(f.name.clone(), DataType::Int));
        } else {
            fields.push(f.clone());
        }
    }
    let out_schema = Schema::new(fields);

    // ---- Job 2: transform each part-file and write the output. All
    // per-column resolution (which action, value→code table, block
    // width) happens once here; the per-row work is a flat O(1) probe
    // per categorical cell.
    let applier = FlatRecodeApplier::new(&recode_map, input_schema, spec)?;
    let row_counts: Vec<usize> = parallel_over_files(&files, |path| {
        let text = dfs.read_string(path)?;
        let mut interner = sqlml_common::Interner::new();
        let mut out_rows = Vec::new();
        for line in text.lines().filter(|l| !l.is_empty()) {
            let row = codec::decode_text_row_interned(line, input_schema, &mut interner)?;
            out_rows.push(applier.apply(&row)?);
        }
        let part_name = path.rsplit('/').next().unwrap_or("part-00000");
        dfs.write_string(
            &format!("{output_dir}/{part_name}"),
            &codec::encode_text_batch(&out_rows),
        )?;
        Ok(out_rows.len())
    })?;

    Ok(ExternalTransformOutput {
        output_dir: output_dir.to_string(),
        schema: out_schema,
        recode_map,
        rows: row_counts.iter().sum(),
    })
}

/// Run `f` over the part-files in parallel (one map task per file).
fn parallel_over_files<T, F>(files: &[String], f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&str) -> Result<T> + Sync,
{
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = files
            .iter()
            .map(|path| scope.spawn(move || f(path)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| SqlmlError::Execution("map task panicked".into()))?
            })
            .collect()
    })
}

fn sanitize(v: &str) -> String {
    v.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlml_common::row;
    use sqlml_dfs::DfsConfig;

    fn input_schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::categorical("gender"),
            Field::new("amount", DataType::Double),
            Field::categorical("abandoned"),
        ])
    }

    fn dfs_with_input() -> Dfs {
        let dfs = Dfs::new(DfsConfig::for_tests());
        let part0 = vec![
            row![57i64, "F", 103.25, "Yes"],
            row![40i64, "M", 35.8, "Yes"],
        ];
        let part1 = vec![row![35i64, "F", 48.9, "No"]];
        dfs.write_string("/in/part-00000", &codec::encode_text_batch(&part0))
            .unwrap();
        dfs.write_string("/in/part-00001", &codec::encode_text_batch(&part1))
            .unwrap();
        dfs
    }

    #[test]
    fn external_transform_reproduces_figure_1() {
        let dfs = dfs_with_input();
        let out = run_external_transform(
            &dfs,
            "/in",
            &input_schema(),
            &TransformSpec::new(&["gender"]),
            "/out",
        )
        .unwrap();
        assert_eq!(out.rows, 3);
        assert_eq!(
            out.schema.names(),
            vec!["age", "gender_F", "gender_M", "amount", "abandoned"]
        );
        // Read back and verify Figure 1(c) content.
        let mut rows = Vec::new();
        for f in dfs.list("/out/") {
            let text = dfs.read_string(&f.path).unwrap();
            rows.extend(codec::decode_text_batch(&text, &out.schema).unwrap());
        }
        rows.sort();
        assert_eq!(
            rows,
            vec![
                row![35i64, 1i64, 0i64, 48.9, 1i64],
                row![40i64, 0i64, 1i64, 35.8, 2i64],
                row![57i64, 1i64, 0i64, 103.25, 2i64],
            ]
        );
    }

    #[test]
    fn matches_the_insql_transformer_exactly() {
        use sqlml_sqlengine::{Engine, EngineConfig};
        use sqlml_transform::InSqlTransformer;
        let dfs = dfs_with_input();
        let spec = TransformSpec::new(&["gender"]);
        let external =
            run_external_transform(&dfs, "/in", &input_schema(), &spec, "/out2").unwrap();

        let engine = Engine::new(EngineConfig::with_workers(2));
        engine
            .load_text_table("t", input_schema(), &dfs, "/in")
            .unwrap();
        let insql = InSqlTransformer::new(engine.clone())
            .transform("t", &spec)
            .unwrap();

        let mut ext_rows = Vec::new();
        for f in dfs.list("/out2/") {
            let text = dfs.read_string(&f.path).unwrap();
            ext_rows.extend(codec::decode_text_batch(&text, &external.schema).unwrap());
        }
        ext_rows.sort();
        assert_eq!(ext_rows, insql.table.collect_sorted());
        assert_eq!(external.recode_map, insql.recode_map);
    }

    #[test]
    fn missing_input_dir_fails() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        assert!(run_external_transform(
            &dfs,
            "/nothing",
            &input_schema(),
            &TransformSpec::default(),
            "/out"
        )
        .is_err());
    }
}
