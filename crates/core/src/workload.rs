//! Synthetic workload matching the paper's evaluation scenario (§1, §7):
//! an online retailer's `carts` and `users` tables, a preparation query
//! joining them for USA customers, and an SVM on cart abandonment.
//!
//! The paper generated 1B carts (56 GB) and 10M users (361 MB) as text on
//! HDFS; we generate the same schema and value distributions at
//! configurable scale, seeded for reproducibility.

use sqlml_common::schema::{DataType, Field, Schema};
use sqlml_common::{Row, SplitMix64, Value};

/// How big to make the synthetic warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadScale {
    pub carts: usize,
    pub users: usize,
}

impl WorkloadScale {
    /// Unit-test scale.
    pub const TINY: WorkloadScale = WorkloadScale {
        carts: 2_000,
        users: 200,
    };
    /// Default benchmark scale (keeps Figure 3/4 runs in seconds).
    pub const SMALL: WorkloadScale = WorkloadScale {
        carts: 200_000,
        users: 20_000,
    };
    /// Larger benchmark scale (minutes).
    pub const MEDIUM: WorkloadScale = WorkloadScale {
        carts: 2_000_000,
        users: 100_000,
    };

    /// The paper's ratio (100 carts per user) at an arbitrary cart count.
    pub fn with_carts(carts: usize) -> WorkloadScale {
        WorkloadScale {
            carts,
            users: (carts / 100).max(10),
        }
    }
}

/// The generated tables plus their schemas.
#[derive(Debug, Clone)]
pub struct Workload {
    pub carts_schema: Schema,
    pub users_schema: Schema,
    pub carts: Vec<Row>,
    pub users: Vec<Row>,
}

/// Schema of the `carts` fact table.
pub fn carts_schema() -> Schema {
    Schema::new(vec![
        Field::new("cartid", DataType::Int),
        Field::new("userid", DataType::Int),
        Field::new("amount", DataType::Double),
        Field::categorical("abandoned"),
        Field::new("year", DataType::Int),
        Field::new("nitems", DataType::Int),
    ])
}

/// Schema of the `users` dimension table.
pub fn users_schema() -> Schema {
    Schema::new(vec![
        Field::new("userid", DataType::Int),
        Field::new("age", DataType::Int),
        Field::categorical("gender"),
        Field::categorical("country"),
    ])
}

/// The preparation query of the paper's running example.
pub const PREP_QUERY: &str = "SELECT U.age, U.gender, C.amount, C.abandoned \
                              FROM carts C, users U \
                              WHERE C.userid = U.userid AND U.country = 'USA'";

/// The ML command of the evaluation: SVM with SGD on the `abandoned`
/// label (column 3 of the prepared result).
pub const SVM_COMMAND: &str = "svm label=3 iterations=10 step=1.0 reg=0.01";

const COUNTRIES: [&str; 6] = ["USA", "CA", "UK", "DE", "FR", "JP"];
const COUNTRY_WEIGHTS: [f64; 6] = [0.55, 0.12, 0.11, 0.09, 0.07, 0.06];

impl Workload {
    /// Generate the workload deterministically from a seed.
    ///
    /// Abandonment correlates with the features (younger users and large
    /// cart amounts abandon more) so the downstream SVM has signal to
    /// find — the evaluation measures pipeline time, but the model should
    /// still be learnable.
    pub fn generate(scale: WorkloadScale, seed: u64) -> Workload {
        let mut rng = SplitMix64::new(seed);
        let mut user_rng = rng.fork(1);
        let mut cart_rng = rng.fork(2);

        // Pre-interned categorical values: every generated row shares one
        // allocation per distinct value (Value::Str is an Arc<str>).
        let female: std::sync::Arc<str> = "F".into();
        let male: std::sync::Arc<str> = "M".into();
        let countries: Vec<std::sync::Arc<str>> = COUNTRIES.iter().map(|&c| c.into()).collect();

        let mut users = Vec::with_capacity(scale.users);
        let mut ages = Vec::with_capacity(scale.users);
        for uid in 0..scale.users {
            let age = user_rng.range_i64(18, 80);
            ages.push(age);
            let gender = if user_rng.chance(0.5) { &female } else { &male };
            let country = &countries[user_rng.choose_weighted(&COUNTRY_WEIGHTS)];
            users.push(Row::new(vec![
                Value::Int(uid as i64),
                Value::Int(age),
                Value::Str(gender.clone()),
                Value::Str(country.clone()),
            ]));
        }

        let yes: std::sync::Arc<str> = "Yes".into();
        let no: std::sync::Arc<str> = "No".into();
        let mut carts = Vec::with_capacity(scale.carts);
        for cid in 0..scale.carts {
            let uid = cart_rng.next_below(scale.users as u64) as usize;
            let amount = (cart_rng.next_gaussian() * 40.0 + 90.0).abs() + 1.0;
            let age = ages[uid] as f64;
            // Abandonment probability: strongly feature-dependent so the
            // downstream classifier has real signal — younger users and
            // pricier carts abandon far more often.
            let p = (0.5 + 0.012 * (45.0 - age) + 0.005 * (amount - 90.0)).clamp(0.02, 0.98);
            let abandoned = if cart_rng.chance(p) { &yes } else { &no };
            let year = if cart_rng.chance(0.7) { 2014 } else { 2013 };
            let nitems = cart_rng.range_i64(1, 20);
            carts.push(Row::new(vec![
                Value::Int(cid as i64),
                Value::Int(uid as i64),
                Value::Double((amount * 100.0).round() / 100.0),
                Value::Str(abandoned.clone()),
                Value::Int(year),
                Value::Int(nitems),
            ]));
        }

        Workload {
            carts_schema: carts_schema(),
            users_schema: users_schema(),
            carts,
            users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::generate(
            WorkloadScale {
                carts: 100,
                users: 20,
            },
            5,
        );
        let b = Workload::generate(
            WorkloadScale {
                carts: 100,
                users: 20,
            },
            5,
        );
        let c = Workload::generate(
            WorkloadScale {
                carts: 100,
                users: 20,
            },
            6,
        );
        assert_eq!(a.carts, b.carts);
        assert_eq!(a.users, b.users);
        assert_ne!(a.carts, c.carts);
    }

    #[test]
    fn row_shapes_match_schemas() {
        let w = Workload::generate(WorkloadScale::TINY, 1);
        assert_eq!(w.carts.len(), WorkloadScale::TINY.carts);
        assert_eq!(w.users.len(), WorkloadScale::TINY.users);
        for r in w.carts.iter().take(50) {
            assert_eq!(r.len(), w.carts_schema.len());
        }
        for r in w.users.iter().take(50) {
            assert_eq!(r.len(), w.users_schema.len());
        }
    }

    #[test]
    fn value_distributions_are_plausible() {
        let w = Workload::generate(WorkloadScale::TINY, 2);
        let usa = w
            .users
            .iter()
            .filter(|r| r.get(3) == &Value::Str("USA".into()))
            .count() as f64
            / w.users.len() as f64;
        assert!((0.4..0.7).contains(&usa), "USA fraction {usa}");
        let abandoned = w
            .carts
            .iter()
            .filter(|r| r.get(3) == &Value::Str("Yes".into()))
            .count() as f64
            / w.carts.len() as f64;
        assert!((0.1..0.6).contains(&abandoned), "abandon rate {abandoned}");
        // Every cart references a valid user.
        for r in w.carts.iter().take(200) {
            let uid = r.get(1).as_i64().unwrap();
            assert!((uid as usize) < w.users.len());
        }
    }

    #[test]
    fn abandonment_correlates_with_age() {
        // Young users must abandon more than old ones — the learnable
        // signal the SVM needs.
        let w = Workload::generate(
            WorkloadScale {
                carts: 20_000,
                users: 1_000,
            },
            3,
        );
        let age_of: Vec<i64> = w.users.iter().map(|r| r.get(1).as_i64().unwrap()).collect();
        let (mut young_yes, mut young_all, mut old_yes, mut old_all) = (0, 0, 0, 0);
        for r in &w.carts {
            let uid = r.get(1).as_i64().unwrap() as usize;
            let yes = r.get(3) == &Value::Str("Yes".into());
            if age_of[uid] < 35 {
                young_all += 1;
                young_yes += yes as i64;
            } else if age_of[uid] > 60 {
                old_all += 1;
                old_yes += yes as i64;
            }
        }
        let young_rate = young_yes as f64 / young_all as f64;
        let old_rate = old_yes as f64 / old_all as f64;
        assert!(
            young_rate > old_rate + 0.05,
            "young {young_rate} vs old {old_rate}"
        );
    }

    #[test]
    fn scale_presets() {
        let s = WorkloadScale::with_carts(50_000);
        assert_eq!(s.users, 500);
    }
}
