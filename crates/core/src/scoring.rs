//! Scoring trained models back inside SQL.
//!
//! The paper's pipeline is one-directional (SQL → ML); production
//! deployments immediately need the reverse hop — applying the trained
//! model to warehouse rows. Since the SQL engine is extensible through
//! scalar UDFs, a trained model *is* a scalar function: register it and
//! score with plain SQL:
//!
//! ```sql
//! SELECT userid, churn_score(age, gender, amount) FROM prepared
//! ```

use std::sync::Arc;

use sqlml_common::schema::DataType;
use sqlml_common::{Result, SqlmlError, Value};
use sqlml_mlengine::job::TrainedModel;
use sqlml_sqlengine::udf::ScalarUdf;
use sqlml_sqlengine::Engine;

/// A trained model exposed as a SQL scalar function. Arguments are the
/// feature values in training order; the return value is the model's
/// prediction (class label, regression value, or cluster id).
pub struct ModelUdf {
    name: String,
    model: TrainedModel,
    /// Expected feature count, for arity errors at evaluation time
    /// (linear models know their dimension; trees/NB accept any arity
    /// and fail naturally on out-of-range access, so we check when we
    /// can).
    expected_arity: Option<usize>,
}

impl ModelUdf {
    pub fn new(name: impl Into<String>, model: TrainedModel) -> Self {
        let expected_arity = match &model {
            TrainedModel::Svm(m) => Some(m.weights.len()),
            TrainedModel::LogReg(m) => Some(m.weights.len()),
            TrainedModel::LinReg(m) => Some(m.weights.len()),
            _ => None,
        };
        ModelUdf {
            name: name.into(),
            model,
            expected_arity,
        }
    }
}

impl ScalarUdf for ModelUdf {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&self, args: &[Value]) -> Result<Value> {
        if let Some(n) = self.expected_arity {
            if args.len() != n {
                return Err(SqlmlError::Type(format!(
                    "{} takes {n} feature arguments, got {}",
                    self.name,
                    args.len()
                )));
            }
        }
        let mut features = Vec::with_capacity(args.len());
        for a in args {
            // NULL features score as 0.0, matching the ingestion path's
            // treatment in `Row::to_f64_vec`.
            features.push(if a.is_null() { 0.0 } else { a.as_f64()? });
        }
        Ok(Value::Double(self.model.predict(&features)))
    }

    fn return_type(&self, _arg_types: &[DataType]) -> DataType {
        DataType::Double
    }
}

/// Register a trained model as a scalar UDF on an engine.
pub fn register_model_udf(engine: &Engine, name: &str, model: TrainedModel) {
    engine.register_scalar_udf(Arc::new(ModelUdf::new(name, model)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SimCluster};
    use crate::pipeline::{Pipeline, PipelineRequest, Strategy};
    use crate::workload::{WorkloadScale, PREP_QUERY};
    use sqlml_mlengine::svm::SvmModel;
    use sqlml_transform::TransformSpec;

    #[test]
    fn model_udf_scores_rows_in_sql() {
        // Train through the pipeline, then score the transformed rows in
        // SQL with the resulting model — the full circle.
        let cluster = SimCluster::start(ClusterConfig::for_tests()).unwrap();
        cluster.load_workload(WorkloadScale::TINY, 88).unwrap();
        let pipeline = Pipeline::new(&cluster);
        let report = pipeline
            .run(
                &PipelineRequest {
                    prep_sql: PREP_QUERY.to_string(),
                    spec: TransformSpec::new(&["gender"]),
                    ml_command: "svm label=4 iterations=40".to_string(),
                },
                Strategy::InSqlStream,
            )
            .unwrap();

        let engine = &cluster.engine;
        register_model_udf(engine, "abandon_score", report.model);
        // Rebuild the transformed table to score it.
        engine
            .execute(&format!("CREATE TABLE p AS {PREP_QUERY}"))
            .unwrap();
        let tr = sqlml_transform::InSqlTransformer::new(engine.clone());
        let out = tr.transform("p", &TransformSpec::new(&["gender"])).unwrap();
        engine.register_table("scored_input", out.table);

        let scored = engine
            .query(
                "SELECT abandon_score(age, gender_F, gender_M, amount) AS s \
                 FROM scored_input",
            )
            .unwrap();
        assert_eq!(
            scored.num_rows(),
            engine.table_rows("scored_input").unwrap()
        );
        let mut zeros = 0;
        let mut ones = 0;
        for r in scored.collect_rows() {
            let score = r.get(0).as_f64().unwrap();
            if score == 0.0 {
                zeros += 1;
            } else if score == 1.0 {
                ones += 1;
            } else {
                panic!("non-binary score {score}");
            }
        }
        assert!(zeros > 0 && ones > 0, "degenerate model: {zeros}/{ones}");

        // Scores compose with the rest of SQL (aggregation over scores).
        let agg = engine
            .query(
                "SELECT abandon_score(age, gender_F, gender_M, amount) AS s, COUNT(*) \
                 FROM scored_input GROUP BY abandon_score(age, gender_F, gender_M, amount)",
            )
            .unwrap();
        assert_eq!(agg.num_rows(), 2);
    }

    #[test]
    fn arity_mismatch_is_a_type_error() {
        let udf = ModelUdf::new(
            "m",
            TrainedModel::Svm(SvmModel {
                weights: vec![1.0, -1.0],
                intercept: 0.0,
            }),
        );
        assert!(udf.eval(&[Value::Double(1.0)]).is_err());
        assert_eq!(
            udf.eval(&[Value::Double(3.0), Value::Double(1.0)]).unwrap(),
            Value::Double(1.0)
        );
        // NULL features are treated as 0.
        assert_eq!(
            udf.eval(&[Value::Null, Value::Double(1.0)]).unwrap(),
            Value::Double(0.0)
        );
    }
}
