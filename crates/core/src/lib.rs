//! The paper's primary contribution, assembled: a generic integration of
//! big SQL and big ML systems.
//!
//! This crate wires the substrates together into the three end-to-end
//! approaches the evaluation (§7) compares:
//!
//! * **naive** — SQL result materialized on the DFS, transformed by an
//!   external tool (our stand-in for Jaql) reading and writing DFS files,
//!   then ingested by the ML job from the DFS;
//! * **insql** — transformations pushed into the SQL engine as UDFs
//!   (pipelined with the preparation query), one DFS hand-off;
//! * **insql+stream** — In-SQL transformation plus the parallel streaming
//!   transfer: no file system between the systems at all.
//!
//! Plus the §5 caching variants of each (reuse a recode map, or the whole
//! transformed result), a synthetic workload generator reproducing the
//! paper's carts/users scenario, and a [`cluster::SimCluster`] that
//! stands in for the paper's 5-server testbed.

pub mod cluster;
pub mod naive;
pub mod pipeline;
pub mod scoring;
pub mod workload;

pub use cluster::{ClusterConfig, SimCluster};
pub use pipeline::{describe_prep, CacheMode, Pipeline, PipelineReport, PipelineRequest, Strategy};
pub use scoring::{register_model_udf, ModelUdf};
pub use workload::{Workload, WorkloadScale};
