//! A simulated cluster standing in for the paper's 5-server testbed: a
//! DFS, an MPP SQL engine, an ML worker pool, and a streaming-transfer
//! coordinator, all sharing one set of node names so locality is
//! meaningful end to end.

use sqlml_common::Result;
use sqlml_dfs::{Dfs, DfsConfig};
use sqlml_mlengine::job::JobConfig;
use sqlml_sqlengine::{Engine, EngineConfig};
use sqlml_transfer::{StreamSession, StreamSessionConfig};

use crate::workload::{Workload, WorkloadScale};

/// Cluster layout knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated machines (the paper used 4 worker servers).
    pub num_nodes: usize,
    /// SQL workers (the paper ran 1 multi-threaded Big SQL worker per
    /// server; we default to one worker per node).
    pub sql_workers: usize,
    /// ML workers (the paper ran 6 Spark workers per server).
    pub ml_workers: usize,
    /// The paper's `k` (readers per SQL worker).
    pub splits_per_worker: u32,
    /// Send/receive buffer size for streaming (paper: 4 KiB).
    pub send_buffer_bytes: usize,
    /// Rows per `RowBatch` frame on the streaming data plane.
    pub batch_rows: usize,
    /// Wire-byte target per frame (frames close at `batch_rows` rows or
    /// `frame_bytes` bytes, whichever comes first; paper: 4 KiB).
    pub frame_bytes: usize,
    /// Sender threads per SQL worker (0 = one dedicated thread per peer).
    pub sender_threads: usize,
    /// Wire codec for the streaming data plane (negotiated per group).
    pub codec: sqlml_transfer::WireCodec,
    /// Adaptive batching ceiling in rows per frame (0 = auto).
    pub batch_rows_max: usize,
    /// DFS parameters (block size, replication, optional throttling).
    pub dfs: DfsConfig,
    /// Split DFS text inputs at block granularity (Hadoop's behaviour)
    /// instead of one split per part-file.
    pub block_level_splits: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_nodes: 4,
            sql_workers: 4,
            ml_workers: 4,
            splits_per_worker: 1,
            send_buffer_bytes: 4 * 1024,
            batch_rows: sqlml_transfer::stream_udf::BATCH_ROWS,
            frame_bytes: sqlml_transfer::stream_udf::FRAME_BYTES,
            sender_threads: 0,
            codec: sqlml_transfer::WireCodec::default(),
            batch_rows_max: 0,
            dfs: DfsConfig {
                num_datanodes: 4,
                block_size: 1024 * 1024,
                replication: 3,
                bytes_per_sec: None,
                remote_bytes_per_sec: None,
            },
            block_level_splits: false,
        }
    }
}

impl ClusterConfig {
    /// A tiny configuration for unit tests.
    pub fn for_tests() -> Self {
        ClusterConfig {
            num_nodes: 2,
            sql_workers: 2,
            ml_workers: 2,
            dfs: DfsConfig {
                num_datanodes: 2,
                block_size: 64 * 1024,
                replication: 2,
                bytes_per_sec: None,
                remote_bytes_per_sec: None,
            },
            ..Default::default()
        }
    }
}

/// The assembled cluster.
pub struct SimCluster {
    pub config: ClusterConfig,
    pub dfs: Dfs,
    pub engine: Engine,
    pub stream: StreamSession,
    pub nodes: Vec<String>,
}

impl SimCluster {
    pub fn start(config: ClusterConfig) -> Result<SimCluster> {
        assert_eq!(
            config.num_nodes, config.dfs.num_datanodes,
            "datanodes and compute nodes are colocated in this simulation"
        );
        let nodes: Vec<String> = (0..config.num_nodes).map(sqlml_dfs::node_name).collect();
        let dfs = Dfs::new(config.dfs.clone());
        let engine = Engine::new(EngineConfig {
            num_workers: config.sql_workers,
            nodes: nodes.clone(),
        });
        let stream = StreamSession::start()?;
        Ok(SimCluster {
            config,
            dfs,
            engine,
            stream,
            nodes,
        })
    }

    /// The ML job layout for this cluster.
    pub fn ml_job_config(&self) -> JobConfig {
        JobConfig {
            num_workers: self.config.ml_workers,
            worker_nodes: self.nodes.clone(),
            splits_per_worker: self.config.splits_per_worker as usize,
        }
    }

    /// Build a text input format over a DFS directory, honouring the
    /// cluster's split-granularity setting.
    pub fn text_input_format(
        &self,
        dir: &str,
        schema: sqlml_common::Schema,
    ) -> sqlml_mlengine::input::TextInputFormat {
        let fmt = sqlml_mlengine::input::TextInputFormat::new(self.dfs.clone(), dir, schema);
        if self.config.block_level_splits {
            fmt.with_block_splits()
        } else {
            fmt
        }
    }

    /// The streaming-session tunables for this cluster.
    pub fn stream_config(&self) -> StreamSessionConfig {
        StreamSessionConfig {
            splits_per_worker: self.config.splits_per_worker,
            send_buffer_bytes: self.config.send_buffer_bytes,
            batch_rows: self.config.batch_rows,
            frame_bytes: self.config.frame_bytes,
            sender_threads: self.config.sender_threads,
            codec: self.config.codec,
            batch_rows_max: self.config.batch_rows_max,
            ml_job: self.ml_job_config(),
            spill_dir: std::env::temp_dir().join("sqlml-cluster-spill"),
        }
    }

    /// Boot `n` independent shard clusters with identical layout and load
    /// the same seeded workload into each — the replicated-warehouse
    /// topology the sharded serving plane assumes, where any shard can
    /// serve any request and a router chooses between them by load and
    /// cache affinity. Each shard is a full [`SimCluster`] (own DFS, SQL
    /// engine, streaming session, §5 cache domain); the identical seed
    /// makes their warehouses byte-identical, so results never depend on
    /// placement.
    pub fn start_shards(
        config: ClusterConfig,
        n: usize,
        scale: WorkloadScale,
        seed: u64,
    ) -> Result<Vec<std::sync::Arc<SimCluster>>> {
        (0..n.max(1))
            .map(|_| SimCluster::start_seeded(config.clone(), scale, seed))
            .collect()
    }

    /// Boot ONE shard warehouse: start a cluster and load the seeded
    /// workload. This is the unit [`SimCluster::start_shards`] repeats,
    /// split out so an elastic serving plane can boot an identical
    /// replacement shard at runtime (`add_shard`) from the same template
    /// the original fleet was built from.
    pub fn start_seeded(
        config: ClusterConfig,
        scale: WorkloadScale,
        seed: u64,
    ) -> Result<std::sync::Arc<SimCluster>> {
        let c = SimCluster::start(config)?;
        c.load_workload(scale, seed)?;
        Ok(std::sync::Arc::new(c))
    }

    /// Write the workload to the DFS as text (the warehouse layout the
    /// paper describes) and register both tables with the SQL engine.
    pub fn load_workload(&self, scale: WorkloadScale, seed: u64) -> Result<Workload> {
        let w = Workload::generate(scale, seed);
        // Store on the DFS first: "both tables were stored in text
        // format on HDFS".
        let carts = sqlml_sqlengine::PartitionedTable::partition_rows(
            w.carts_schema.clone(),
            w.carts.clone(),
            self.config.sql_workers,
            &self.nodes,
        );
        let users = sqlml_sqlengine::PartitionedTable::partition_rows(
            w.users_schema.clone(),
            w.users.clone(),
            self.config.sql_workers,
            &self.nodes,
        );
        carts.save_text(&self.dfs, "/warehouse/carts")?;
        users.save_text(&self.dfs, "/warehouse/users")?;
        // The engine reads its tables from the warehouse.
        self.engine.load_text_table(
            "carts",
            w.carts_schema.clone(),
            &self.dfs,
            "/warehouse/carts",
        )?;
        self.engine.load_text_table(
            "users",
            w.users_schema.clone(),
            &self.dfs,
            "/warehouse/users",
        )?;
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_boots_and_loads_workload() {
        let cluster = SimCluster::start(ClusterConfig::for_tests()).unwrap();
        let w = cluster.load_workload(WorkloadScale::TINY, 7).unwrap();
        assert_eq!(cluster.engine.table_rows("carts").unwrap(), w.carts.len());
        assert_eq!(cluster.engine.table_rows("users").unwrap(), w.users.len());
        // The warehouse files exist on the DFS.
        assert!(!cluster.dfs.list("/warehouse/carts/").is_empty());
        // And the prep query runs.
        let rows = cluster
            .engine
            .query(crate::workload::PREP_QUERY)
            .unwrap()
            .num_rows();
        assert!(rows > 0 && rows < w.carts.len());
    }

    #[test]
    fn shard_fleet_boots_with_identical_warehouses() {
        let shards =
            SimCluster::start_shards(ClusterConfig::for_tests(), 2, WorkloadScale::TINY, 7)
                .unwrap();
        assert_eq!(shards.len(), 2);
        let rows: Vec<usize> = shards
            .iter()
            .map(|c| {
                c.engine
                    .query(crate::workload::PREP_QUERY)
                    .unwrap()
                    .num_rows()
            })
            .collect();
        assert!(rows[0] > 0);
        assert_eq!(rows[0], rows[1], "same seed must mean same warehouse");
    }

    #[test]
    #[should_panic(expected = "colocated")]
    fn node_count_mismatch_is_rejected() {
        let mut cfg = ClusterConfig::for_tests();
        cfg.num_nodes = 3;
        let _ = SimCluster::start(cfg);
    }
}
