//! The three end-to-end pipelines of the paper's evaluation, plus the §5
//! caching variants — the code behind Figures 3 and 4.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlml_cache::{CacheDecision, CacheManager, QueryDescriptor};
use sqlml_common::{CancelToken, Result, SqlmlError, StageTimer};
use sqlml_mlengine::job::{JobRunner, TrainedModel, TrainingSpec};
use sqlml_sqlengine::parser::parse_select;
use sqlml_sqlengine::PartitionedTable;
use sqlml_transfer::StreamStats;
use sqlml_transform::{InSqlTransformer, RecodeMap, TransformSpec};

use crate::cluster::SimCluster;
use crate::naive::run_external_transform;

/// The three approaches compared in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// SQL → DFS → external transform → DFS → ML.
    Naive,
    /// SQL+UDF transform (pipelined) → DFS → ML.
    InSql,
    /// SQL+UDF transform → parallel streaming → ML. No file system.
    InSqlStream,
}

impl Strategy {
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::InSql => "insql",
            Strategy::InSqlStream => "insql+stream",
        }
    }
}

/// Which §5 cache reuse a run enjoyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    None,
    RecodeMap,
    FullResult,
}

/// One integration request: preparation query, transformation, target
/// algorithm.
#[derive(Debug, Clone)]
pub struct PipelineRequest {
    pub prep_sql: String,
    pub spec: TransformSpec,
    /// ML command, e.g. `svm label=4 iterations=10` — label indices refer
    /// to the *transformed* schema.
    pub ml_command: String,
}

/// The outcome of one pipeline run.
#[derive(Debug)]
pub struct PipelineReport {
    pub strategy: Strategy,
    /// Stage breakdown with Figure 3's stage names (`prep`, `trsfm`,
    /// `input for ml`, or the pipelined combinations). Training time is
    /// *excluded*, as in the paper.
    pub timer: StageTimer,
    pub model: TrainedModel,
    pub rows_to_ml: usize,
    pub cache_use: CacheMode,
    /// Present for [`Strategy::InSqlStream`] runs.
    pub stream_stats: Option<StreamStats>,
    /// Reported separately (the paper excludes it from the comparison).
    pub train_time: Duration,
}

impl PipelineReport {
    /// End-to-end time excluding training — the quantity Figure 3 plots.
    pub fn pipeline_time(&self) -> Duration {
        self.timer.total()
    }

    /// One-line transfer-throughput summary for streaming runs, rendered
    /// alongside the stage breakdown: rows/bytes/batches sent, wire
    /// throughput, spill activity, time to first row at the ML side,
    /// restart attempts, and the overlapped-plane counters (sender queue
    /// stall/depth, decode-ahead wait, and — when strings streamed —
    /// dictionary hit ratio and bytes saved). `None` for strategies that
    /// never streamed.
    pub fn transfer_summary(&self) -> Option<String> {
        use sqlml_common::timer::{format_bytes, format_duration};
        let s = self.stream_stats.as_ref()?;
        let secs = self.pipeline_time().as_secs_f64().max(1e-9);
        let throughput = format_bytes((s.bytes_sent as f64 / secs) as u64);
        let first_row = s
            .receive
            .time_to_first_row
            .map_or_else(|| "n/a".to_string(), format_duration);
        let mut summary = format!(
            "transfer: {} rows, {} in {} batches ({throughput}/s wire), \
             spilled {} ({} events), first row +{first_row}, attempts {}, \
             queue hw {} frames, sender stalled {}, decode-ahead waited {}",
            s.rows_sent,
            format_bytes(s.bytes_sent),
            s.batches_sent,
            format_bytes(s.bytes_spilled),
            s.spill_events,
            s.max_attempts,
            s.queue_depth_hw,
            format_duration(std::time::Duration::from_micros(s.sender_stall_us)),
            format_duration(s.receive.prefetch_wait),
        );
        let lookups = s.dict_hits + s.dict_misses;
        // Integer percentage is plenty for a one-line summary.
        if let Some(pct) = (s.dict_hits * 100).checked_div(lookups) {
            summary.push_str(&format!(
                ", dict {}/{lookups} ({pct}%) saved {}",
                s.dict_hits,
                format_bytes(s.dict_bytes_saved),
            ));
        }
        Some(summary)
    }
}

static RUN_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Parse a preparation query into its cacheable §5 descriptor against an
/// engine's catalog (`None` for queries outside the SPJ shape). Shared
/// by the pipeline's own cache path and by the serving plane's router,
/// which probes every shard's cache with the same descriptor before
/// placing a request.
pub fn describe_prep(
    engine: &sqlml_sqlengine::Engine,
    sql: &str,
) -> Result<Option<QueryDescriptor>> {
    let stmt = parse_select(sql)?;
    QueryDescriptor::from_select(&stmt, engine.catalog())
}

/// Pipeline driver bound to one simulated cluster.
pub struct Pipeline<'c> {
    cluster: &'c SimCluster,
    transformer: InSqlTransformer,
    cache: Option<Arc<CacheManager>>,
}

impl<'c> Pipeline<'c> {
    /// A pipeline without caching.
    pub fn new(cluster: &'c SimCluster) -> Pipeline<'c> {
        let transformer = InSqlTransformer::new(cluster.engine.clone());
        cluster
            .stream
            .install_udf(&cluster.engine, &cluster.stream_config(), None);
        Pipeline {
            cluster,
            transformer,
            cache: None,
        }
    }

    /// A pipeline with the §5 cache enabled.
    pub fn with_cache(cluster: &'c SimCluster) -> Pipeline<'c> {
        Pipeline::with_shared_cache(cluster, Arc::new(CacheManager::new(cluster.engine.clone())))
    }

    /// A pipeline over a **shared** cache manager — the serving-plane
    /// shape, where many concurrent pipelines populate and hit one §5
    /// cache on the same cluster.
    pub fn with_shared_cache(cluster: &'c SimCluster, cache: Arc<CacheManager>) -> Pipeline<'c> {
        let mut p = Pipeline::new(cluster);
        p.cache = Some(cache);
        p
    }

    pub fn cache(&self) -> Option<&Arc<CacheManager>> {
        self.cache.as_ref()
    }

    /// Run one request under the chosen strategy.
    pub fn run(&self, req: &PipelineRequest, strategy: Strategy) -> Result<PipelineReport> {
        self.run_with(req, strategy, &CancelToken::new())
    }

    /// [`Pipeline::run`] with a cooperative cancellation token. The token
    /// is polled at every stage boundary, and inside the streaming
    /// transfer at every frame cut; when it fires, the run unwinds with
    /// [`SqlmlError::Cancelled`] through the normal error path (temp
    /// tables dropped, DFS staging directories deleted, sockets closed).
    pub fn run_with(
        &self,
        req: &PipelineRequest,
        strategy: Strategy,
        cancel: &CancelToken,
    ) -> Result<PipelineReport> {
        let ml_spec = TrainingSpec::parse(&req.ml_command)?;
        cancel.check("admission")?;
        match strategy {
            Strategy::Naive => self.run_naive(req, &ml_spec, cancel),
            Strategy::InSql => self.run_insql(req, &ml_spec, cancel),
            Strategy::InSqlStream => self.run_insql_stream(req, &ml_spec, cancel),
        }
    }

    // -- naive ------------------------------------------------------------

    fn run_naive(
        &self,
        req: &PipelineRequest,
        ml_spec: &TrainingSpec,
        cancel: &CancelToken,
    ) -> Result<PipelineReport> {
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir_prep = format!("/tmp_pipeline/{seq}/prep");
        let dir_tfm = format!("/tmp_pipeline/{seq}/trsfm");
        let dfs = &self.cluster.dfs;
        let engine = &self.cluster.engine;
        let mut timer = StageTimer::new();

        // Staging directories must not outlive a cancelled (or failed)
        // run, so the staged work runs in a closure and the cleanup
        // happens on both exits.
        let staged = (|| {
            // Stage 1: run the query, materialize on the DFS.
            let prep_schema = engine.validate(&req.prep_sql)?;
            timer.time("prep", || {
                engine.query_to_dfs(&req.prep_sql, dfs, &dir_prep)
            })?;
            cancel.check("prep")?;

            // Stage 2: the external (Jaql-substitute) transformation,
            // DFS → DFS.
            let external = timer.time("trsfm", || {
                run_external_transform(dfs, &dir_prep, &prep_schema, &req.spec, &dir_tfm)
            })?;
            cancel.check("trsfm")?;

            // Stage 3: ML job ingests from the DFS.
            let fmt = self
                .cluster
                .text_input_format(&dir_tfm, external.schema.clone());
            let runner = JobRunner::new(self.cluster.ml_job_config());
            let (dataset, ingest) = runner.ingest_dataset(&fmt, ml_spec.label_col())?;
            timer.record("input for ml", ingest.duration);
            cancel.check("input for ml")?;

            let t_train = Instant::now();
            let model = runner.train(&dataset, ml_spec)?;
            Ok::<_, SqlmlError>((model, ingest.rows, t_train.elapsed()))
        })();
        self.cleanup_dir(&dir_prep);
        self.cleanup_dir(&dir_tfm);
        let (model, rows_to_ml, train_time) = staged?;
        Ok(PipelineReport {
            strategy: Strategy::Naive,
            timer,
            model,
            rows_to_ml,
            cache_use: CacheMode::None,
            stream_stats: None,
            train_time,
        })
    }

    // -- insql ------------------------------------------------------------

    fn run_insql(
        &self,
        req: &PipelineRequest,
        ml_spec: &TrainingSpec,
        cancel: &CancelToken,
    ) -> Result<PipelineReport> {
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir_tfm = format!("/tmp_pipeline/{seq}/insql");
        let dfs = &self.cluster.dfs;
        let mut timer = StageTimer::new();

        let staged = (|| {
            // Stage 1 (pipelined): prep query + In-SQL transformation,
            // then one materialization onto the DFS for the hand-off.
            let (transformed, cache_use) = timer.time("prep+trsfm", || {
                let out = self.prepare_and_transform(req)?;
                out.0.save_text(dfs, &dir_tfm)?;
                Ok::<_, SqlmlError>(out)
            })?;
            cancel.check("prep+trsfm")?;

            // Stage 2: ML ingests the hand-off files.
            let fmt = self
                .cluster
                .text_input_format(&dir_tfm, transformed.schema().clone());
            let runner = JobRunner::new(self.cluster.ml_job_config());
            let (dataset, ingest) = runner.ingest_dataset(&fmt, ml_spec.label_col())?;
            timer.record("input for ml", ingest.duration);
            cancel.check("input for ml")?;

            let t_train = Instant::now();
            let model = runner.train(&dataset, ml_spec)?;
            Ok::<_, SqlmlError>((model, ingest.rows, cache_use, t_train.elapsed()))
        })();
        self.cleanup_dir(&dir_tfm);
        let (model, rows_to_ml, cache_use, train_time) = staged?;
        Ok(PipelineReport {
            strategy: Strategy::InSql,
            timer,
            model,
            rows_to_ml,
            cache_use,
            stream_stats: None,
            train_time,
        })
    }

    // -- insql + streaming --------------------------------------------------

    fn run_insql_stream(
        &self,
        req: &PipelineRequest,
        _ml_spec: &TrainingSpec,
        cancel: &CancelToken,
    ) -> Result<PipelineReport> {
        let engine = &self.cluster.engine;
        let mut timer = StageTimer::new();
        let t0 = Instant::now();

        // Prep + transform inside the engine (possibly from cache), then
        // stream straight into the freshly launched ML job — nothing
        // touches the file system.
        let (transformed, cache_use) = self.prepare_and_transform(req)?;
        cancel.check("prep+trsfm")?;
        let tmp = format!(
            "__pipeline_stream_{}",
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        engine.register_table(&tmp, transformed);
        let outcome = self.cluster.stream.run_with_cancel(
            engine,
            &tmp,
            &req.ml_command,
            &self.cluster.stream_config(),
            cancel,
        );
        let _ = engine.catalog().drop_table(&tmp);
        let outcome = outcome?;

        // One pipelined bar, as in Figure 3 — minus training, which the
        // paper excludes.
        let total = t0.elapsed().saturating_sub(outcome.job.train_duration);
        timer.record("prep+trsfm+input", total);

        Ok(PipelineReport {
            strategy: Strategy::InSqlStream,
            timer,
            model: outcome.job.model,
            rows_to_ml: outcome.stats.rows_ingested,
            cache_use,
            stream_stats: Some(outcome.stats),
            train_time: outcome.job.train_duration,
        })
    }

    // -- shared -----------------------------------------------------------

    /// Produce the transformed table for a request, consulting the cache
    /// first (§5) and populating it afterwards.
    fn prepare_and_transform(
        &self,
        req: &PipelineRequest,
    ) -> Result<(PartitionedTable, CacheMode)> {
        let engine = &self.cluster.engine;
        let descriptor = self.describe(&req.prep_sql)?;

        // Consult the cache.
        let mut cached_map: Option<RecodeMap> = None;
        if let (Some(cache), Some(d)) = (&self.cache, &descriptor) {
            match cache.lookup(d, &req.spec) {
                CacheDecision::Full(reuse) => {
                    // §5.1: the whole query + transformation collapses to
                    // one select over the materialization.
                    let table = engine.query(&reuse.sql)?;
                    return Ok((table, CacheMode::FullResult));
                }
                CacheDecision::RecodeMap(map) => cached_map = Some(map),
                CacheDecision::Miss => {}
            }
        }

        // Materialize the prep result, then transform it In-SQL.
        let tmp = format!(
            "__pipeline_prep_{}",
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        engine.execute(&format!("CREATE TABLE {tmp} AS {}", req.prep_sql))?;
        let result = match &cached_map {
            Some(map) => self.transformer.transform_with_map(&tmp, &req.spec, map),
            None => self.transformer.transform(&tmp, &req.spec),
        };
        engine.execute(&format!("DROP TABLE {tmp}"))?;
        let out = result?;
        let cache_use = if cached_map.is_some() {
            CacheMode::RecodeMap
        } else {
            CacheMode::None
        };

        // Populate the cache for future runs.
        if let (Some(cache), Some(d)) = (&self.cache, descriptor) {
            if cache_use == CacheMode::None {
                cache.store_full(
                    d,
                    req.spec.clone(),
                    out.recode_map.clone(),
                    out.table.clone(),
                );
            }
        }
        Ok((out.table, cache_use))
    }

    fn describe(&self, sql: &str) -> Result<Option<QueryDescriptor>> {
        describe_prep(&self.cluster.engine, sql)
    }

    fn cleanup_dir(&self, dir: &str) {
        for f in self.cluster.dfs.list(&format!("{dir}/")) {
            let _ = self.cluster.dfs.delete(&f.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::workload::{WorkloadScale, PREP_QUERY};

    fn request() -> PipelineRequest {
        PipelineRequest {
            prep_sql: PREP_QUERY.to_string(),
            spec: TransformSpec::new(&["gender"]),
            // Transformed layout: age, gender_F, gender_M, amount,
            // abandoned — label at index 4.
            ml_command: "svm label=4 iterations=10".to_string(),
        }
    }

    fn cluster() -> SimCluster {
        let c = SimCluster::start(ClusterConfig::for_tests()).unwrap();
        c.load_workload(WorkloadScale::TINY, 11).unwrap();
        c
    }

    #[test]
    fn all_three_strategies_deliver_identical_datasets() {
        let cluster = cluster();
        let pipeline = Pipeline::new(&cluster);
        let mut row_counts = Vec::new();
        for strategy in [Strategy::Naive, Strategy::InSql, Strategy::InSqlStream] {
            let report = pipeline.run(&request(), strategy).unwrap();
            assert!(report.rows_to_ml > 0, "{strategy:?} sent nothing");
            row_counts.push(report.rows_to_ml);
            assert_eq!(report.strategy, strategy);
            assert_eq!(report.cache_use, CacheMode::None);
        }
        assert_eq!(row_counts[0], row_counts[1]);
        assert_eq!(row_counts[1], row_counts[2]);
    }

    #[test]
    fn stage_names_match_figure_3() {
        let cluster = cluster();
        let pipeline = Pipeline::new(&cluster);
        let naive = pipeline.run(&request(), Strategy::Naive).unwrap();
        let names: Vec<&str> = naive
            .timer
            .stages()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["prep", "trsfm", "input for ml"]);
        let insql = pipeline.run(&request(), Strategy::InSql).unwrap();
        let names: Vec<&str> = insql
            .timer
            .stages()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["prep+trsfm", "input for ml"]);
        let stream = pipeline.run(&request(), Strategy::InSqlStream).unwrap();
        let names: Vec<&str> = stream
            .timer
            .stages()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["prep+trsfm+input"]);
        assert!(stream.stream_stats.is_some());
        // Throughput counters ride along with the stage report instead of
        // adding stages of their own.
        assert!(naive.transfer_summary().is_none());
        let summary = stream.transfer_summary().unwrap();
        assert!(
            summary.contains("batches") && summary.contains("first row"),
            "{summary}"
        );
        let stats = stream.stream_stats.as_ref().unwrap();
        assert!(stats.batches_sent > 0);
        assert_eq!(stats.receive.rows_received, stats.rows_sent);
        assert_eq!(stats.receive.batches_received, stats.batches_sent);
        assert!(stats.receive.time_to_first_row.is_some());
    }

    #[test]
    fn cached_full_result_short_circuits_second_run() {
        let cluster = cluster();
        let pipeline = Pipeline::with_cache(&cluster);
        let first = pipeline.run(&request(), Strategy::InSqlStream).unwrap();
        assert_eq!(first.cache_use, CacheMode::None);
        let second = pipeline.run(&request(), Strategy::InSqlStream).unwrap();
        assert_eq!(second.cache_use, CacheMode::FullResult);
        assert_eq!(first.rows_to_ml, second.rows_to_ml);
        let (full, _, _) = pipeline.cache().unwrap().stats.snapshot();
        assert_eq!(full, 1);
    }

    #[test]
    fn recode_map_reuse_for_the_5_2_query() {
        let cluster = cluster();
        let pipeline = Pipeline::with_cache(&cluster);
        pipeline.run(&request(), Strategy::InSql).unwrap();
        // The §5.2 follow-up: extra predicate on an unprojected field and
        // a wider projection — full reuse impossible, map reuse expected.
        let second = PipelineRequest {
            prep_sql: "SELECT U.age, U.gender, C.amount, C.nitems, C.abandoned \
                       FROM carts C, users U \
                       WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014"
                .to_string(),
            spec: TransformSpec::new(&["gender"]),
            ml_command: "svm label=5 iterations=5".to_string(),
        };
        let report = pipeline.run(&second, Strategy::InSql).unwrap();
        assert_eq!(report.cache_use, CacheMode::RecodeMap);
    }

    #[test]
    fn models_learn_the_planted_signal() {
        let cluster = cluster();
        let pipeline = Pipeline::new(&cluster);
        let report = pipeline
            .run(
                &PipelineRequest {
                    ml_command: "svm label=4 iterations=80".to_string(),
                    ..request()
                },
                Strategy::InSqlStream,
            )
            .unwrap();
        // Young + expensive cart (features age, gender_F, gender_M,
        // amount) should score a higher abandonment margin than old +
        // cheap — equal margins would mean the model learned nothing.
        let TrainedModel::Svm(svm) = &report.model else {
            panic!("expected an SVM model");
        };
        let young_pricey = svm.margin(&[20.0, 1.0, 0.0, 220.0]);
        let old_cheap = svm.margin(&[75.0, 1.0, 0.0, 10.0]);
        assert!(
            young_pricey > old_cheap,
            "SVM learned no signal: {young_pricey} vs {old_cheap}"
        );
    }
}
