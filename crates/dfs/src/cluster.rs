//! The cluster facade: datanodes, file writers/readers, locality queries.

use std::collections::HashMap;
use std::io::{self, BufRead, Read, Write};
use std::sync::Arc;

use sqlml_common::lockorder::{TrackedMutex, TrackedRwLock};
use sqlml_common::{Result, SqlmlError};

use crate::namenode::{BlockId, BlockLocation, FileStatus, NameNode};
use crate::throttle::Throttle;
use crate::NodeId;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Number of datanodes in the simulated cluster.
    pub num_datanodes: usize,
    /// Block size in bytes. Real HDFS defaults to 128 MiB; scaled-down
    /// workloads use smaller blocks so files still span many blocks.
    pub block_size: usize,
    /// Replication factor (HDFS default 3; the paper's cluster used 3).
    pub replication: usize,
    /// Optional per-datanode I/O bandwidth in bytes/second. `None`
    /// disables throttling (tests); benchmarks set it to model disk or
    /// network limits.
    pub bytes_per_sec: Option<u64>,
    /// Optional extra bandwidth cap for **remote** reads (a reader not
    /// colocated with any replica), modeling the network hop that
    /// HDFS-style local short-circuit reads avoid. `None` makes remote
    /// reads free (beyond `bytes_per_sec`).
    pub remote_bytes_per_sec: Option<u64>,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            num_datanodes: 4,
            block_size: 4 * 1024 * 1024,
            replication: 3,
            bytes_per_sec: None,
            remote_bytes_per_sec: None,
        }
    }
}

impl DfsConfig {
    /// Small-block configuration useful in tests (files span many blocks).
    pub fn for_tests() -> Self {
        DfsConfig {
            num_datanodes: 4,
            block_size: 64,
            replication: 2,
            bytes_per_sec: None,
            remote_bytes_per_sec: None,
        }
    }
}

/// One datanode: its block store, liveness flag, and throttle.
struct DataNode {
    blocks: TrackedRwLock<HashMap<BlockId, Arc<Vec<u8>>>>,
    alive: TrackedRwLock<bool>,
    throttle: Option<Throttle>,
}

impl DataNode {
    fn new(throttle: Option<Throttle>) -> Self {
        DataNode {
            blocks: TrackedRwLock::new("dfs.node.blocks", HashMap::new()),
            alive: TrackedRwLock::new("dfs.node.alive", true),
            throttle,
        }
    }

    fn store(&self, id: BlockId, data: Arc<Vec<u8>>) {
        if let Some(t) = &self.throttle {
            t.consume(data.len());
        }
        self.blocks.write().insert(id, data);
    }

    fn fetch(&self, id: BlockId) -> Option<Arc<Vec<u8>>> {
        if !*self.alive.read() {
            return None;
        }
        let data = self.blocks.read().get(&id).cloned()?;
        if let Some(t) = &self.throttle {
            t.consume(data.len());
        }
        Some(data)
    }
}

struct Inner {
    config: DfsConfig,
    namenode: TrackedMutex<NameNode>,
    datanodes: Vec<DataNode>,
    /// Cluster-interconnect budget charged to remote reads.
    network: Option<Arc<Throttle>>,
}

/// Handle to a simulated DFS cluster. Cheap to clone; all clones address
/// the same namespace and datanodes.
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<Inner>,
}

impl Dfs {
    pub fn new(config: DfsConfig) -> Self {
        assert!(config.num_datanodes > 0, "need at least one datanode");
        assert!(config.block_size > 0, "block size must be positive");
        assert!(config.replication > 0, "replication must be positive");
        let datanodes = (0..config.num_datanodes)
            .map(|_| DataNode::new(config.bytes_per_sec.map(Throttle::new)))
            .collect();
        let network = config
            .remote_bytes_per_sec
            .map(|b| Arc::new(Throttle::new(b)));
        Dfs {
            inner: Arc::new(Inner {
                config,
                namenode: TrackedMutex::new("dfs.namenode", NameNode::new()),
                datanodes,
                network,
            }),
        }
    }

    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        self.inner
            .datanodes
            .iter()
            .enumerate()
            .filter(|(_, d)| *d.alive.read())
            .map(|(i, _)| i)
            .collect()
    }

    /// Kill a datanode: its replicas become unreadable and it receives no
    /// new blocks. Reads fail over to surviving replicas.
    pub fn kill_datanode(&self, node: NodeId) {
        *self.inner.datanodes[node].alive.write() = false;
    }

    /// Bring a previously killed datanode back (its old blocks reappear,
    /// as when an HDFS datanode re-registers).
    pub fn revive_datanode(&self, node: NodeId) {
        *self.inner.datanodes[node].alive.write() = true;
    }

    /// Open a file for (over)writing. Returns a buffered block writer.
    pub fn create(&self, path: &str) -> Result<DfsWriter> {
        self.inner.namenode.lock().begin_file(path, true)?;
        Ok(DfsWriter {
            dfs: self.clone(),
            path: path.to_string(),
            buf: Vec::with_capacity(self.inner.config.block_size),
            offset: 0,
            closed: false,
        })
    }

    /// Open a file for reading from the beginning (local read: no
    /// network charge).
    pub fn open(&self, path: &str) -> Result<DfsReader> {
        let blocks = self.block_locations(path)?;
        Ok(DfsReader {
            dfs: self.clone(),
            blocks,
            next_block: 0,
            current: None,
            pos_in_current: 0,
            reader_node: None,
        })
    }

    /// Open a file for reading from the perspective of a reader on
    /// `node`: blocks with no replica on that node are charged against
    /// the cluster's remote-read bandwidth (when configured).
    pub fn open_from(&self, path: &str, node: &str) -> Result<DfsReader> {
        let mut r = self.open(path)?;
        r.reader_node = Some(node.to_string());
        Ok(r)
    }

    /// Open a reader positioned at the block containing `offset` and
    /// limited to the blocks overlapping `[offset, offset+len)`. Used by
    /// `TextInputFormat` splits; like Hadoop, splits are aligned to block
    /// boundaries by the caller.
    pub fn open_range(&self, path: &str, offset: u64, len: u64) -> Result<DfsReader> {
        let all = self.block_locations(path)?;
        let blocks: Vec<BlockLocation> = all
            .into_iter()
            .filter(|b| b.offset + b.len > offset && b.offset < offset + len)
            .collect();
        Ok(DfsReader {
            dfs: self.clone(),
            blocks,
            next_block: 0,
            current: None,
            pos_in_current: 0,
            reader_node: None,
        })
    }

    /// Range read with a reader location (see [`Dfs::open_from`]).
    pub fn open_range_from(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        node: &str,
    ) -> Result<DfsReader> {
        let mut r = self.open_range(path, offset, len)?;
        r.reader_node = Some(node.to_string());
        Ok(r)
    }

    /// Convenience: write an entire string as a file.
    pub fn write_string(&self, path: &str, contents: &str) -> Result<()> {
        let mut w = self.create(path)?;
        w.write_all(contents.as_bytes())?;
        w.close()
    }

    /// Convenience: read an entire file as a string.
    pub fn read_string(&self, path: &str) -> Result<String> {
        let mut r = self.open(path)?;
        let mut s = String::new();
        r.read_to_string(&mut s)?;
        Ok(s)
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner.namenode.lock().exists(path)
    }

    pub fn len(&self, path: &str) -> Result<u64> {
        Ok(self.inner.namenode.lock().meta(path)?.len)
    }

    pub fn delete(&self, path: &str) -> Result<()> {
        let meta = self.inner.namenode.lock().delete(path)?;
        for loc in meta.blocks {
            for node in loc.nodes {
                self.inner.datanodes[node].blocks.write().remove(&loc.block);
            }
        }
        Ok(())
    }

    pub fn list(&self, prefix: &str) -> Vec<FileStatus> {
        self.inner.namenode.lock().list(prefix)
    }

    /// The block layout of a file, with replica locations — the locality
    /// information `InputFormat::get_splits` consumes.
    pub fn block_locations(&self, path: &str) -> Result<Vec<BlockLocation>> {
        Ok(self.inner.namenode.lock().meta(path)?.blocks.clone())
    }

    /// Total bytes stored on one datanode (test/diagnostic helper).
    pub fn node_bytes(&self, node: NodeId) -> u64 {
        self.inner.datanodes[node]
            .blocks
            .read()
            .values()
            .map(|b| b.len() as u64)
            .sum()
    }

    fn commit_block(&self, path: &str, offset: u64, data: Vec<u8>) -> Result<()> {
        let len = data.len() as u64;
        let live = self.live_nodes();
        let (block, nodes) = self
            .inner
            .namenode
            .lock()
            .allocate_block(&live, self.inner.config.replication)?;
        let shared = Arc::new(data);
        for &node in &nodes {
            self.inner.datanodes[node].store(block, Arc::clone(&shared));
        }
        self.inner.namenode.lock().append_block(
            path,
            BlockLocation {
                block,
                offset,
                len,
                nodes,
            },
        )
    }

    fn fetch_block(&self, loc: &BlockLocation) -> Result<Arc<Vec<u8>>> {
        for &node in &loc.nodes {
            if let Some(data) = self.inner.datanodes[node].fetch(loc.block) {
                return Ok(data);
            }
        }
        Err(SqlmlError::Dfs(format!(
            "block {} unavailable: all {} replicas dead",
            loc.block,
            loc.nodes.len()
        )))
    }
}

/// Streaming block writer returned by [`Dfs::create`].
///
/// Bytes are buffered into block-sized chunks; each full block is
/// replicated to datanodes as it completes. Call [`DfsWriter::close`] to
/// flush the final partial block — dropping without closing loses the
/// tail, matching HDFS semantics for unclosed files.
pub struct DfsWriter {
    dfs: Dfs,
    path: String,
    buf: Vec<u8>,
    offset: u64,
    closed: bool,
}

impl DfsWriter {
    /// Flush the trailing partial block and seal the file.
    pub fn close(mut self) -> Result<()> {
        self.closed = true;
        if !self.buf.is_empty() {
            let data = std::mem::take(&mut self.buf);
            self.dfs.commit_block(&self.path, self.offset, data)?;
        }
        Ok(())
    }
}

impl Write for DfsWriter {
    fn write(&mut self, mut bytes: &[u8]) -> io::Result<usize> {
        let total = bytes.len();
        let block_size = self.dfs.inner.config.block_size;
        while !bytes.is_empty() {
            let room = block_size - self.buf.len();
            let take = room.min(bytes.len());
            self.buf.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.buf.len() == block_size {
                let data = std::mem::replace(&mut self.buf, Vec::with_capacity(block_size));
                let len = data.len() as u64;
                self.dfs
                    .commit_block(&self.path, self.offset, data)
                    .map_err(|e| io::Error::other(e.to_string()))?;
                self.offset += len;
            }
        }
        Ok(total)
    }

    fn flush(&mut self) -> io::Result<()> {
        // Partial blocks flush only on close (block-oriented store).
        Ok(())
    }
}

/// Streaming reader over a (sub)sequence of a file's blocks.
pub struct DfsReader {
    dfs: Dfs,
    blocks: Vec<BlockLocation>,
    next_block: usize,
    current: Option<Arc<Vec<u8>>>,
    pos_in_current: usize,
    /// Node the reader runs on; used to detect remote block reads.
    reader_node: Option<String>,
}

impl DfsReader {
    fn ensure_current(&mut self) -> io::Result<bool> {
        loop {
            if let Some(cur) = &self.current {
                if self.pos_in_current < cur.len() {
                    return Ok(true);
                }
                self.current = None;
                self.pos_in_current = 0;
            }
            if self.next_block >= self.blocks.len() {
                return Ok(false);
            }
            let loc = self.blocks[self.next_block].clone();
            self.next_block += 1;
            let data = self
                .dfs
                .fetch_block(&loc)
                .map_err(|e| io::Error::other(e.to_string()))?;
            // A reader not colocated with any replica pays the network.
            if let (Some(node), Some(net)) = (&self.reader_node, &self.dfs.inner.network) {
                let local = loc.nodes.iter().any(|n| crate::node_name(*n) == *node);
                if !local {
                    net.consume(data.len());
                }
            }
            self.current = Some(data);
            self.pos_in_current = 0;
        }
    }
}

impl Read for DfsReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() || !self.ensure_current()? {
            return Ok(0);
        }
        // lint:allow(panic) ensure_current just returned true
        let cur = self.current.as_ref().expect("ensure_current returned true");
        let avail = &cur[self.pos_in_current..];
        let n = avail.len().min(out.len());
        out[..n].copy_from_slice(&avail[..n]);
        self.pos_in_current += n;
        Ok(n)
    }
}

impl BufRead for DfsReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if !self.ensure_current()? {
            return Ok(&[]);
        }
        let pos = self.pos_in_current;
        // lint:allow(panic) ensure_current just returned true
        Ok(&self.current.as_ref().expect("checked above")[pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos_in_current += amt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip_spanning_blocks() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        let payload: String = (0..50).map(|i| format!("line-{i}\n")).collect();
        dfs.write_string("/t/a.txt", &payload).unwrap();
        assert_eq!(dfs.read_string("/t/a.txt").unwrap(), payload);
        assert_eq!(dfs.len("/t/a.txt").unwrap(), payload.len() as u64);
        let blocks = dfs.block_locations("/t/a.txt").unwrap();
        assert!(blocks.len() > 1, "payload should span multiple 64B blocks");
        for b in &blocks {
            assert_eq!(b.nodes.len(), 2, "replication=2");
        }
    }

    #[test]
    fn empty_file() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        dfs.write_string("/t/empty", "").unwrap();
        assert_eq!(dfs.read_string("/t/empty").unwrap(), "");
        assert_eq!(dfs.len("/t/empty").unwrap(), 0);
    }

    #[test]
    fn overwrite_replaces_contents() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        dfs.write_string("/t/f", "old contents old contents")
            .unwrap();
        dfs.write_string("/t/f", "new").unwrap();
        assert_eq!(dfs.read_string("/t/f").unwrap(), "new");
    }

    #[test]
    fn block_offsets_tile_the_file() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        let payload = "x".repeat(200);
        dfs.write_string("/t/f", &payload).unwrap();
        let blocks = dfs.block_locations("/t/f").unwrap();
        let mut expect_offset = 0u64;
        for b in &blocks {
            assert_eq!(b.offset, expect_offset);
            expect_offset += b.len;
        }
        assert_eq!(expect_offset, 200);
        // All but the last block are exactly block-sized.
        for b in &blocks[..blocks.len() - 1] {
            assert_eq!(b.len, 64);
        }
    }

    #[test]
    fn read_fails_over_to_surviving_replica() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        let payload = "abcdefgh".repeat(32);
        dfs.write_string("/t/f", &payload).unwrap();
        // Kill the primary replica node of every block.
        let primaries: Vec<NodeId> = dfs
            .block_locations("/t/f")
            .unwrap()
            .iter()
            .map(|b| b.nodes[0])
            .collect();
        for p in primaries {
            dfs.kill_datanode(p);
        }
        // With replication 2 across 4 nodes, killing primaries may kill
        // every node; revive one non-primary per block instead: simply
        // revive all and kill only node 0.
        for n in 0..4 {
            dfs.revive_datanode(n);
        }
        dfs.kill_datanode(0);
        assert_eq!(dfs.read_string("/t/f").unwrap(), payload);
    }

    #[test]
    fn read_fails_when_all_replicas_dead() {
        let dfs = Dfs::new(DfsConfig {
            replication: 1,
            ..DfsConfig::for_tests()
        });
        dfs.write_string("/t/f", "payload-that-matters").unwrap();
        for n in 0..4 {
            dfs.kill_datanode(n);
        }
        assert!(dfs.read_string("/t/f").is_err());
    }

    #[test]
    fn delete_frees_datanode_space() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        dfs.write_string("/t/f", &"z".repeat(1000)).unwrap();
        let before: u64 = (0..4).map(|n| dfs.node_bytes(n)).sum();
        assert!(before >= 2000, "replication 2 should store 2x bytes");
        dfs.delete("/t/f").unwrap();
        let after: u64 = (0..4).map(|n| dfs.node_bytes(n)).sum();
        assert_eq!(after, 0);
        assert!(!dfs.exists("/t/f"));
    }

    #[test]
    fn open_range_selects_overlapping_blocks() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        let payload: String = (0..16).map(|i| format!("{:07}\n", i)).collect(); // 128 bytes
        dfs.write_string("/t/f", &payload).unwrap();
        // Second block only (offset 64, len 64).
        let mut r = dfs.open_range("/t/f", 64, 64).unwrap();
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        assert_eq!(s, &payload[64..128]);
    }

    #[test]
    fn bufread_lines_work() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        let payload = "alpha\nbeta\ngamma\n";
        dfs.write_string("/t/f", payload).unwrap();
        let r = dfs.open("/t/f").unwrap();
        let lines: Vec<String> = r.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines, vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn listing_is_prefix_scoped_and_sorted() {
        let dfs = Dfs::new(DfsConfig::for_tests());
        dfs.write_string("/a/2", "x").unwrap();
        dfs.write_string("/a/1", "x").unwrap();
        dfs.write_string("/b/1", "x").unwrap();
        let names: Vec<String> = dfs.list("/a/").into_iter().map(|f| f.path).collect();
        assert_eq!(names, vec!["/a/1", "/a/2"]);
    }

    #[test]
    fn remote_reads_pay_the_network_while_local_reads_do_not() {
        use std::time::Instant;
        // Single-block file so "local" genuinely means zero network.
        let dfs = Dfs::new(DfsConfig {
            num_datanodes: 4,
            block_size: 64 * 1024,
            replication: 1,
            bytes_per_sec: None,
            remote_bytes_per_sec: Some(100_000), // 100 KB/s network
        });
        let payload = "r".repeat(20_000); // 20 KB => ~200ms remotely
        dfs.write_string("/t/f", &payload).unwrap();
        let holder = dfs.block_locations("/t/f").unwrap()[0].nodes[0];
        let local_node = crate::node_name(holder);
        let remote_node = crate::node_name((holder + 1) % 4);

        let t0 = Instant::now();
        let mut r = dfs.open_from("/t/f", &local_node).unwrap();
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        let local_t = t0.elapsed();

        let t1 = Instant::now();
        let mut r = dfs.open_from("/t/f", &remote_node).unwrap();
        let mut s2 = String::new();
        r.read_to_string(&mut s2).unwrap();
        let remote_t = t1.elapsed();

        assert_eq!(s, payload);
        assert_eq!(s2, payload);
        assert!(
            local_t.as_millis() < 50 && remote_t.as_millis() >= 150,
            "remote={remote_t:?} local={local_t:?}"
        );
    }

    #[test]
    fn throttled_write_is_slower() {
        use std::time::Instant;
        let fast = Dfs::new(DfsConfig {
            bytes_per_sec: None,
            block_size: 1024,
            ..DfsConfig::for_tests()
        });
        let slow = Dfs::new(DfsConfig {
            bytes_per_sec: Some(200_000), // 200 KB/s
            block_size: 1024,
            replication: 1,
            num_datanodes: 4,
            remote_bytes_per_sec: None,
        });
        let payload = "y".repeat(20_000); // 20 KB => >= ~100ms at 200 KB/s
        let t0 = Instant::now();
        fast.write_string("/f", &payload).unwrap();
        let fast_t = t0.elapsed();
        let t1 = Instant::now();
        slow.write_string("/f", &payload).unwrap();
        let slow_t = t1.elapsed();
        assert!(
            slow_t > fast_t && slow_t.as_millis() >= 80,
            "slow={slow_t:?} fast={fast_t:?}"
        );
    }
}
