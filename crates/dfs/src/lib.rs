//! A simulated HDFS-like distributed file system.
//!
//! The paper's baselines hand data between the SQL and ML systems through
//! files on a shared distributed file system; this crate provides that
//! substrate. It reproduces the HDFS behaviours the integration techniques
//! interact with:
//!
//! * files are split into fixed-size **blocks**,
//! * each block is **replicated** on `replication` distinct datanodes,
//! * block **locality** (which nodes hold which block) is exposed so that
//!   compute tasks can be scheduled next to their data,
//! * per-node **throughput throttling** lets benchmarks model disk/network
//!   bandwidth so that the materialization hops of the naive pipeline cost
//!   what they cost on a real cluster,
//! * datanodes can be **killed**, after which reads transparently fail over
//!   to surviving replicas.
//!
//! Everything is in-process and thread-safe; a [`Dfs`] handle can be cloned
//! and shared across the SQL workers, the external transform job, and the
//! ML workers.

mod cluster;
mod namenode;
mod throttle;

pub use cluster::{Dfs, DfsConfig, DfsReader, DfsWriter};
pub use namenode::{BlockLocation, FileStatus};
pub use throttle::Throttle;

/// Identifies a datanode within one [`Dfs`] instance.
pub type NodeId = usize;

/// Symbolic network name of a datanode, used for locality matching between
/// the DFS, the SQL workers, and the ML workers.
pub fn node_name(id: NodeId) -> String {
    format!("node-{id}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_names_are_stable() {
        assert_eq!(node_name(0), "node-0");
        assert_eq!(node_name(12), "node-12");
    }
}
