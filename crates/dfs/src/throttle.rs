//! Token-bucket throughput throttling for simulated datanode I/O.

use std::time::{Duration, Instant};

use sqlml_common::lockorder::TrackedMutex;

/// A byte-rate limiter shared by all I/O against one datanode.
///
/// Implemented as a "virtual clock": each transfer of `n` bytes advances a
/// deadline by `n / rate` seconds, and the caller sleeps until the
/// deadline if it is in the future. Concurrent callers therefore share the
/// node's bandwidth, just as tasks colocated on one real datanode share
/// its disk.
#[derive(Debug)]
pub struct Throttle {
    bytes_per_sec: f64,
    state: TrackedMutex<Instant>,
}

impl Throttle {
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "throttle rate must be positive");
        Throttle {
            bytes_per_sec: bytes_per_sec as f64,
            state: TrackedMutex::new("dfs.throttle.state", Instant::now()),
        }
    }

    /// Account for `n` bytes of traffic, sleeping long enough that the
    /// long-run throughput never exceeds the configured rate.
    pub fn consume(&self, n: usize) {
        if n == 0 {
            return;
        }
        let cost = Duration::from_secs_f64(n as f64 / self.bytes_per_sec);
        let deadline = {
            let mut next_free = self.state.lock();
            let now = Instant::now();
            // An idle throttle does not bank unused capacity (no bursts
            // larger than what the caller is transferring right now).
            if *next_free < now {
                *next_free = now;
            }
            *next_free += cost;
            *next_free
        };
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enforces_rate_serially() {
        let t = Throttle::new(1_000_000); // 1 MB/s
        let start = Instant::now();
        for _ in 0..10 {
            t.consume(10_000); // 100 KB total => ~100ms
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(90),
            "elapsed only {elapsed:?}"
        );
    }

    #[test]
    fn shared_across_threads() {
        let t = Arc::new(Throttle::new(2_000_000)); // 2 MB/s
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.consume(50_000))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 200 KB at 2 MB/s => >= ~100ms regardless of thread count.
        assert!(start.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn zero_bytes_is_free() {
        let t = Throttle::new(1);
        let start = Instant::now();
        t.consume(0);
        assert!(start.elapsed() < Duration::from_millis(50));
    }
}
