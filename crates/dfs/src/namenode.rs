//! The namenode: file namespace and block placement metadata.

use std::collections::BTreeMap;

use sqlml_common::{Result, SqlmlError};

use crate::NodeId;

/// Globally unique block identifier within one cluster.
pub type BlockId = u64;

/// Where one block of a file lives.
#[derive(Debug, Clone)]
pub struct BlockLocation {
    pub block: BlockId,
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Length of this block in bytes (the last block may be short).
    pub len: u64,
    /// Datanodes holding a replica, in placement order.
    pub nodes: Vec<NodeId>,
}

/// Namenode-side metadata for one file.
#[derive(Debug, Clone, Default)]
pub(crate) struct FileMeta {
    pub blocks: Vec<BlockLocation>,
    pub len: u64,
}

/// Public view of a file's status.
#[derive(Debug, Clone)]
pub struct FileStatus {
    pub path: String,
    pub len: u64,
    pub num_blocks: usize,
}

/// The namespace: path → file metadata, plus the block-id allocator.
#[derive(Debug, Default)]
pub(crate) struct NameNode {
    files: BTreeMap<String, FileMeta>,
    next_block: BlockId,
    /// Round-robin cursor for replica placement.
    placement_cursor: usize,
}

impl NameNode {
    pub fn new() -> Self {
        NameNode::default()
    }

    /// Allocate a fresh block id and choose `replication` distinct live
    /// nodes for it, round-robin so data spreads evenly.
    pub fn allocate_block(
        &mut self,
        live_nodes: &[NodeId],
        replication: usize,
    ) -> Result<(BlockId, Vec<NodeId>)> {
        if live_nodes.is_empty() {
            return Err(SqlmlError::Dfs("no live datanodes".to_string()));
        }
        let id = self.next_block;
        self.next_block += 1;
        let copies = replication.min(live_nodes.len());
        let mut nodes = Vec::with_capacity(copies);
        for k in 0..copies {
            nodes.push(live_nodes[(self.placement_cursor + k) % live_nodes.len()]);
        }
        self.placement_cursor = (self.placement_cursor + 1) % live_nodes.len();
        Ok((id, nodes))
    }

    pub fn begin_file(&mut self, path: &str, overwrite: bool) -> Result<()> {
        if self.files.contains_key(path) && !overwrite {
            return Err(SqlmlError::Dfs(format!("file already exists: {path}")));
        }
        self.files.insert(path.to_string(), FileMeta::default());
        Ok(())
    }

    pub fn append_block(&mut self, path: &str, loc: BlockLocation) -> Result<()> {
        let meta = self
            .files
            .get_mut(path)
            .ok_or_else(|| SqlmlError::Dfs(format!("no such file: {path}")))?;
        meta.len += loc.len;
        meta.blocks.push(loc);
        Ok(())
    }

    pub fn meta(&self, path: &str) -> Result<&FileMeta> {
        self.files
            .get(path)
            .ok_or_else(|| SqlmlError::Dfs(format!("no such file: {path}")))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    pub fn delete(&mut self, path: &str) -> Result<FileMeta> {
        self.files
            .remove(path)
            .ok_or_else(|| SqlmlError::Dfs(format!("no such file: {path}")))
    }

    /// All paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<FileStatus> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, m)| FileStatus {
                path: p.clone(),
                len: m.len,
                num_blocks: m.blocks.len(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_allocation_round_robins_over_nodes() {
        let mut nn = NameNode::new();
        let live = vec![0, 1, 2, 3];
        let (b0, n0) = nn.allocate_block(&live, 2).unwrap();
        let (b1, n1) = nn.allocate_block(&live, 2).unwrap();
        assert_ne!(b0, b1);
        assert_eq!(n0, vec![0, 1]);
        assert_eq!(n1, vec![1, 2]);
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let mut nn = NameNode::new();
        let (_, nodes) = nn.allocate_block(&[0, 1], 3).unwrap();
        assert_eq!(nodes.len(), 2);
        let distinct: std::collections::HashSet<_> = nodes.iter().collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn namespace_crud() {
        let mut nn = NameNode::new();
        nn.begin_file("/data/a.txt", false).unwrap();
        assert!(nn.begin_file("/data/a.txt", false).is_err());
        nn.begin_file("/data/a.txt", true).unwrap();
        nn.append_block(
            "/data/a.txt",
            BlockLocation {
                block: 0,
                offset: 0,
                len: 10,
                nodes: vec![0],
            },
        )
        .unwrap();
        assert_eq!(nn.meta("/data/a.txt").unwrap().len, 10);
        assert!(nn.exists("/data/a.txt"));

        nn.begin_file("/data/b.txt", false).unwrap();
        nn.begin_file("/other/c.txt", false).unwrap();
        let listed = nn.list("/data/");
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].path, "/data/a.txt");

        nn.delete("/data/a.txt").unwrap();
        assert!(!nn.exists("/data/a.txt"));
        assert!(nn.delete("/data/a.txt").is_err());
    }

    #[test]
    fn allocate_fails_with_no_live_nodes() {
        let mut nn = NameNode::new();
        assert!(nn.allocate_block(&[], 3).is_err());
    }
}
