//! **A2 — degree-of-parallelism sweep.** §3 introduces `k`, the number
//! of streaming readers per SQL worker (`m = n·k` splits), "a parameter
//! to control the degree of parallelism in the ML job". This ablation
//! sweeps `k` and reports split counts and ingestion time, then sweeps
//! the overlapped-transfer-plane knobs (sender-thread count × wire
//! codec) at a fixed `k` to show the cost of multiplexing the sockets
//! and the bytes saved by the compact codec.
//!
//! Expected shape: split count scales as `n·k`; delivery stays exact for
//! every `k` and every sender/codec combination; the compact codec moves
//! fewer wire bytes than legacy for the same rows (loopback transport
//! makes large time gains invisible at this scale, so the checks are on
//! correctness and accounting, not speed).
//!
//! Run: `cargo run --release -p sqlml-bench --bin ablation_parallelism`
//! (add `--sender-threads N --codec legacy|compact --batch-rows-max N`
//! to pin the grid's knobs on the `k` sweep too).

use sqlml_bench::{check_shape, BenchParams};
use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{ClusterConfig, Pipeline, PipelineRequest, SimCluster, Strategy};
use sqlml_transfer::WireCodec;
use sqlml_transform::TransformSpec;

fn run_once(cfg: ClusterConfig, params: &BenchParams, request: &PipelineRequest) -> RunResult {
    let cluster = SimCluster::start(cfg).expect("cluster");
    cluster
        .load_workload(params.scale, params.seed)
        .expect("workload");
    let pipeline = Pipeline::new(&cluster);
    let report = pipeline
        .run(request, Strategy::InSqlStream)
        .expect("stream run");
    let pipeline_secs = report.pipeline_time().as_secs_f64();
    let summary = report.transfer_summary();
    let stats = report.stream_stats.expect("stats");
    RunResult {
        pipeline_secs,
        summary,
        num_splits: stats.num_splits,
        local_splits: stats.local_splits,
        rows_sent: stats.rows_sent,
        rows_ingested: stats.rows_ingested,
        bytes_sent: stats.bytes_sent,
    }
}

struct RunResult {
    pipeline_secs: f64,
    summary: Option<String>,
    num_splits: usize,
    local_splits: usize,
    rows_sent: u64,
    rows_ingested: usize,
    bytes_sent: u64,
}

fn main() {
    let mut params = BenchParams::from_args();
    params.throttle_mbps = None;
    let request = PipelineRequest {
        prep_sql: PREP_QUERY.to_string(),
        spec: TransformSpec::new(&["gender"]),
        ml_command: "svm label=4 iterations=5".to_string(),
    };

    println!(
        "A2: k (readers per SQL worker) sweep ({} carts)\n",
        params.scale.carts
    );
    println!(
        "{:>4} {:>8} {:>8} {:>12} {:>10}",
        "k", "splits", "local", "time (s)", "rows"
    );
    let mut all_exact = true;
    let mut split_counts = Vec::new();
    for k in [1u32, 2, 4, 8] {
        let cfg = ClusterConfig {
            splits_per_worker: k,
            sender_threads: params.sender_threads,
            codec: params.codec,
            batch_rows_max: params.batch_rows_max,
            ..Default::default()
        };
        let r = run_once(cfg, &params, &request);
        println!(
            "{:>4} {:>8} {:>8} {:>12.3} {:>10}",
            k, r.num_splits, r.local_splits, r.pipeline_secs, r.rows_ingested
        );
        if let Some(summary) = r.summary {
            println!("     {summary}");
        }
        all_exact &= r.rows_sent as usize == r.rows_ingested;
        split_counts.push((k, r.num_splits));
    }

    // Overlapped-plane grid at k = 4: sender threads (1 = one thread
    // multiplexes all peers, 0 = dedicated thread per peer) × codec.
    const GRID_K: u32 = 4;
    println!("\nA2b: sender-threads x codec grid (k = {GRID_K})\n");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>10}",
        "senders", "codec", "time (s)", "bytes", "rows"
    );
    let mut grid_exact = true;
    let mut bytes_by_codec: Vec<(WireCodec, u64)> = Vec::new();
    let mut rows_by_run: Vec<u64> = Vec::new();
    for codec in [WireCodec::Legacy, WireCodec::Compact] {
        for senders in [1usize, 0] {
            let cfg = ClusterConfig {
                splits_per_worker: GRID_K,
                sender_threads: senders,
                codec,
                batch_rows_max: params.batch_rows_max,
                ..Default::default()
            };
            let r = run_once(cfg, &params, &request);
            let senders_label = if senders == 0 {
                "peer".to_string()
            } else {
                senders.to_string()
            };
            println!(
                "{:>8} {:>8} {:>12.3} {:>12} {:>10}",
                senders_label,
                codec.label(),
                r.pipeline_secs,
                r.bytes_sent,
                r.rows_ingested
            );
            grid_exact &= r.rows_sent as usize == r.rows_ingested;
            bytes_by_codec.push((codec, r.bytes_sent));
            rows_by_run.push(r.rows_ingested as u64);
        }
    }
    let legacy_bytes = bytes_by_codec
        .iter()
        .filter(|(c, _)| *c == WireCodec::Legacy)
        .map(|(_, b)| *b)
        .max()
        .unwrap_or(0);
    let compact_bytes = bytes_by_codec
        .iter()
        .filter(|(c, _)| *c == WireCodec::Compact)
        .map(|(_, b)| *b)
        .max()
        .unwrap_or(u64::MAX);

    let ok = check_shape(
        "m = n*k splits for every k (n = 4 SQL workers)",
        split_counts.iter().all(|(k, m)| *m == 4 * *k as usize),
    ) & check_shape("delivery is exact for every k", all_exact)
        & check_shape(
            "delivery is exact for every sender-thread/codec combination",
            grid_exact,
        )
        & check_shape(
            "every grid run ingested the same row count",
            rows_by_run.windows(2).all(|w| w[0] == w[1]),
        )
        & check_shape(
            "compact codec moves fewer wire bytes than legacy",
            compact_bytes < legacy_bytes,
        );
    std::process::exit(if ok { 0 } else { 1 });
}
