//! **A2 — degree-of-parallelism sweep.** §3 introduces `k`, the number
//! of streaming readers per SQL worker (`m = n·k` splits), "a parameter
//! to control the degree of parallelism in the ML job". This ablation
//! sweeps `k` and reports split counts and ingestion time.
//!
//! Expected shape: split count scales as `n·k`; delivery stays exact for
//! every `k`; moderate `k` does not hurt (loopback transport makes large
//! gains invisible at this scale, so the check is on correctness and
//! split accounting, not speed).
//!
//! Run: `cargo run --release -p sqlml-bench --bin ablation_parallelism`

use sqlml_bench::{check_shape, BenchParams};
use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{ClusterConfig, Pipeline, PipelineRequest, SimCluster, Strategy};
use sqlml_transform::TransformSpec;

fn main() {
    let mut params = BenchParams::from_args();
    params.throttle_mbps = None;
    let request = PipelineRequest {
        prep_sql: PREP_QUERY.to_string(),
        spec: TransformSpec::new(&["gender"]),
        ml_command: "svm label=4 iterations=5".to_string(),
    };

    println!(
        "A2: k (readers per SQL worker) sweep ({} carts)\n",
        params.scale.carts
    );
    println!(
        "{:>4} {:>8} {:>8} {:>12} {:>10}",
        "k", "splits", "local", "time (s)", "rows"
    );
    let mut all_exact = true;
    let mut split_counts = Vec::new();
    for k in [1u32, 2, 4, 8] {
        let cfg = ClusterConfig {
            splits_per_worker: k,
            ..Default::default()
        };
        let cluster = SimCluster::start(cfg).expect("cluster");
        cluster
            .load_workload(params.scale, params.seed)
            .expect("workload");
        let pipeline = Pipeline::new(&cluster);
        let report = pipeline
            .run(&request, Strategy::InSqlStream)
            .expect("stream run");
        let pipeline_secs = report.pipeline_time().as_secs_f64();
        let summary = report.transfer_summary();
        let stats = report.stream_stats.expect("stats");
        println!(
            "{:>4} {:>8} {:>8} {:>12.3} {:>10}",
            k, stats.num_splits, stats.local_splits, pipeline_secs, stats.rows_ingested
        );
        if let Some(summary) = summary {
            println!("     {summary}");
        }
        all_exact &= stats.rows_sent as usize == stats.rows_ingested;
        split_counts.push((k, stats.num_splits));
    }

    let ok = check_shape(
        "m = n*k splits for every k (n = 4 SQL workers)",
        split_counts.iter().all(|(k, m)| *m == 4 * *k as usize),
    ) & check_shape("delivery is exact for every k", all_exact);
    std::process::exit(if ok { 0 } else { 1 });
}
