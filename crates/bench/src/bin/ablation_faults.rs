//! **A5 — restart-protocol cost (§6).** The paper's fault-tolerance
//! discussion prescribes: when a SQL↔ML transfer fails, "restart the SQL
//! worker and simultaneously tell the ML system to restart all the ML
//! workers corresponding to the SQL worker". This ablation measures the
//! cost of that *group-granular* restart against the alternative of
//! restarting the whole pipeline from scratch.
//!
//! Expected shape: a single worker-group restart costs far less than a
//! full pipeline rerun; both deliver exactly the same data.
//!
//! Run: `cargo run --release -p sqlml-bench --bin ablation_faults`

use std::sync::Arc;
use std::time::Instant;

use sqlml_bench::{check_shape, BenchParams};
use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{ClusterConfig, SimCluster};
use sqlml_transfer::FaultInjector;
use sqlml_transform::TransformSpec;

fn main() {
    let params = BenchParams::from_args();
    let cluster = SimCluster::start(ClusterConfig::default()).expect("cluster");
    cluster
        .load_workload(params.scale, params.seed)
        .expect("workload");

    // Prepare the transformed table once; we are measuring transfers.
    let engine = &cluster.engine;
    engine
        .execute(&format!("CREATE TABLE prep AS {PREP_QUERY}"))
        .expect("prep");
    let transformer = sqlml_transform::InSqlTransformer::new(engine.clone());
    let out = transformer
        .transform("prep", &TransformSpec::new(&["gender"]))
        .expect("transform");
    engine.register_table("handoff", out.table);
    let rows = engine.table_rows("handoff").expect("rows");
    let command = "svm label=4 iterations=5";
    let cfg = cluster.stream_config();

    println!("A5: §6 restart protocol, {rows} rows streamed\n");
    println!(
        "{:>28} {:>12} {:>10} {:>8}",
        "scenario", "time (s)", "attempts", "rows"
    );

    // Fault-free baseline.
    cluster.stream.install_udf(engine, &cfg, None);
    let t0 = Instant::now();
    let clean = cluster
        .stream
        .run(engine, "handoff", command, &cfg)
        .expect("clean run");
    let clean_t = t0.elapsed().as_secs_f64();
    println!(
        "{:>28} {clean_t:>12.3} {:>10} {:>8}",
        "no fault", clean.stats.max_attempts, clean.stats.rows_ingested
    );

    // Injected fault + group restart (the §6 protocol).
    let injector = Arc::new(FaultInjector::new());
    injector.fail_worker_after(1, rows / 8);
    cluster
        .stream
        .install_udf(engine, &cfg, Some(Arc::clone(&injector)));
    let t1 = Instant::now();
    let restarted = cluster
        .stream
        .run(engine, "handoff", command, &cfg)
        .expect("restart run");
    let restart_t = t1.elapsed().as_secs_f64();
    println!(
        "{:>28} {restart_t:>12.3} {:>10} {:>8}",
        "fault + group restart", restarted.stats.max_attempts, restarted.stats.rows_ingested
    );

    // The blunt alternative: rerun the whole pipeline (fail once fully,
    // then run clean — modeled as one wasted clean run + one clean run).
    cluster.stream.install_udf(engine, &cfg, None);
    let t2 = Instant::now();
    for _ in 0..2 {
        cluster
            .stream
            .run(engine, "handoff", command, &cfg)
            .expect("rerun");
    }
    let full_rerun_t = t2.elapsed().as_secs_f64();
    println!(
        "{:>28} {full_rerun_t:>12.3} {:>10} {:>8}",
        "whole-pipeline rerun", 1, rows
    );

    let ok = check_shape(
        "the group restart delivered exactly once",
        restarted.stats.rows_ingested == rows && restarted.stats.max_attempts == 2,
    ) & check_shape(
        &format!(
            "group restart ({restart_t:.3}s) is cheaper than a whole-pipeline rerun ({full_rerun_t:.3}s)"
        ),
        restart_t < full_rerun_t,
    ) & check_shape(
        "the injected fault actually fired",
        !injector.fired().is_empty(),
    );
    std::process::exit(if ok { 0 } else { 1 });
}
