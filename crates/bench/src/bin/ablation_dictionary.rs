//! **A7 — dictionary codes are not recode maps (§2.1's discussion).**
//!
//! §2.1 considers reusing the column store's dictionary-compression
//! integers as the recoded values and rejects it for three reasons. This
//! ablation reproduces all three on the paper's own workload, while also
//! confirming the *legitimate* benefit (compression) that makes the idea
//! tempting in the first place.
//!
//! Run: `cargo run --release -p sqlml-bench --bin ablation_dictionary`

use std::collections::BTreeSet;

use sqlml_bench::{check_shape, BenchParams};
use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{ClusterConfig, SimCluster};
use sqlml_sqlengine::dictionary::{encode_column_per_partition, local_codes_conflict};
use sqlml_transform::InSqlTransformer;

fn main() {
    let params = BenchParams::from_args();
    let cluster = SimCluster::start(ClusterConfig::default()).expect("cluster");
    cluster
        .load_workload(params.scale, params.seed)
        .expect("workload");
    let engine = &cluster.engine;

    let users = engine.catalog().table("users").expect("users");
    let country_col = users.schema().index_of("country").expect("country");

    // The tempting part: dictionary compression genuinely shrinks the
    // column.
    let dicts = encode_column_per_partition(users.partitions(), country_col).expect("encode");
    let compressed: usize = dicts.iter().map(|d| d.compressed_bytes()).sum();
    let raw: usize = dicts.iter().map(|d| d.raw_bytes()).sum();
    println!(
        "country column: raw {raw}B, dictionary-encoded {compressed}B ({:.1}x smaller)\n",
        raw as f64 / compressed as f64
    );

    // Objection 1: local dictionaries disagree across partitions.
    let conflict = local_codes_conflict(&dicts);
    println!("per-partition code assignments:");
    for (p, d) in dicts.iter().enumerate().take(4) {
        let entries: Vec<String> = d
            .entries()
            .iter()
            .enumerate()
            .map(|(c, v)| format!("{v}={c}"))
            .collect();
        println!("  partition {p}: {}", entries.join("  "));
    }

    // Objection 2: codes are 0-based first-seen, not 1-based sorted.
    let zero_based = dicts
        .iter()
        .any(|d| d.cardinality() > 0 && d.code_of(&d.entries()[0].clone()) == Some(0));

    // Objection 3: the preparation query filters (country = 'USA'), so
    // the base-table dictionary over-counts the values that survive.
    let transformer = InSqlTransformer::new(engine.clone());
    engine
        .execute(&format!("CREATE TABLE prep AS {PREP_QUERY}"))
        .expect("prep");
    let map = transformer
        .build_recode_map("prep", &["gender".to_string(), "abandoned".to_string()])
        .expect("map");
    // Dictionary cardinality of `country` on the base table vs the
    // filtered result (where only 'USA' remains).
    let base_country_values: BTreeSet<String> = dicts
        .iter()
        .flat_map(|d| d.entries().iter().cloned())
        .collect();
    let filtered_rows = engine
        .query("SELECT DISTINCT country FROM users WHERE country = 'USA'")
        .expect("filtered")
        .num_rows();
    println!(
        "\nbase-table country cardinality: {} — after the prep filter: {filtered_rows}",
        base_country_values.len()
    );
    println!(
        "recode map (filtered data): gender K={}, abandoned K={}",
        map.cardinality("gender"),
        map.cardinality("abandoned")
    );

    let ok = check_shape(
        "dictionary encoding compresses the categorical column (the temptation)",
        compressed < raw,
    ) & check_shape(
        "objection 1: local partition dictionaries assign conflicting codes",
        conflict,
    ) & check_shape(
        "objection 2: dictionary codes are 0-based, violating the consecutive-from-1 requirement",
        zero_based,
    ) & check_shape(
        "objection 3: the base-table dictionary over-counts the filtered result's values",
        base_country_values.len() > filtered_rows,
    ) & check_shape(
        "the two-phase recode map satisfies the 1..=K invariant where the dictionary cannot",
        map.validate().is_ok(),
    );
    std::process::exit(if ok { 0 } else { 1 });
}
