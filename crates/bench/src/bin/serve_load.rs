//! **Serving-plane load generator (§10 scheduler, §12 sharding).**
//!
//! Drives a fleet of replicated-warehouse [`SimCluster`] shards through
//! the [`QueryScheduler`] with a closed-loop multi-tenant workload and
//! reports what an operator would watch: latency percentiles
//! (p50/p95/p99), goodput, admission rejects, per-cluster
//! placement/stealing/affinity counters, and deadline behaviour.
//!
//! Each shard's DFS carries its own bandwidth throttle (its "disks"), so
//! adding shards adds aggregate I/O bandwidth — the resource that
//! actually scales when a serving fleet grows, and the one visible even
//! on a single-core host where CPU parallelism cannot be.
//!
//! Phases:
//!
//! 1. **baseline** — each strategy runs once sequentially on shard 0;
//!    its `rows_to_ml` becomes the ground truth for the load phase.
//! 2. **load** — `--queries` requests burst in from three weighted
//!    tenants (gold 4 / silver 2 / bronze 1), mixed strategies, routed
//!    over the whole fleet. Every admitted query's result must match the
//!    baseline row count for its strategy.
//! 3. **overload + retry + deadline** — a burst against a tiny queue
//!    forces `QueueFull` rejects; a client with a [`RetryPolicy`] rides
//!    the backpressure out; a microsecond deadline shows a query
//!    cancelling cleanly while the cluster stays usable.
//! 4. **scale-out** — the same burst against 1 shard and against the
//!    full fleet; with ≥ 2 shards, fleet goodput must be strictly
//!    higher (shape-checked).
//! 5. **cache affinity** — a warmed, repeated descriptor served with
//!    cache-aware routing vs blind load routing; affinity routing must
//!    deliver a strictly lower p95 (shape-checked).
//! 6. `--elastic` — the elastic fleet: a burst on one template shard
//!    sets the goodput bar, a second (longer) burst gets a shard joined
//!    mid-flight via `add_shard` (goodput must recover past the bar),
//!    and a third burst straddles a `remove_shard(Migrate)` drain —
//!    every handle must resolve exactly once, nothing lost.
//! 7. `--sweep` — the A8 under-load ablation grid: queue capacity ×
//!    worker slots × tenant-weight skew × shard count, every cell
//!    submitted with a per-submit retry policy.
//!
//! Run: `cargo run --release -p sqlml-bench --bin serve_load`
//! Flags: `--queries N --inflight N --queue-cap N --worker-slots N`
//! `--shards N --carts N --seed N --throttle-mbps M --no-cache`
//! `--no-cache-aware --no-steal --elastic --sweep --verbose`

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlml_bench::check_shape;
use sqlml_core::workload::{WorkloadScale, PREP_QUERY};
use sqlml_core::{ClusterConfig, Pipeline, PipelineRequest, SimCluster, Strategy};
use sqlml_dfs::DfsConfig;
use sqlml_sched::{
    DrainPolicy, QueryScheduler, QuerySpec, QueryStatus, RejectReason, RetryPolicy,
    SchedulerConfig, SubmitOpts,
};
use sqlml_transform::TransformSpec;

const STRATEGIES: [Strategy; 3] = [Strategy::Naive, Strategy::InSql, Strategy::InSqlStream];
const TENANTS: [(&str, u32); 3] = [("gold", 4), ("silver", 2), ("bronze", 1)];
const COMMANDS: [&str; 3] = [
    "svm label=4 iterations=5",
    "logreg label=4 iterations=5",
    "nb label=4",
];

struct Args {
    queries: usize,
    inflight: usize,
    queue_cap: usize,
    worker_slots: usize,
    shards: usize,
    carts: usize,
    seed: u64,
    throttle_mbps: u64,
    cache: bool,
    cache_aware: bool,
    stealing: bool,
    elastic: bool,
    sweep: bool,
    verbose: bool,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            queries: 12,
            inflight: 4,
            queue_cap: 64,
            worker_slots: 0,
            shards: 2,
            carts: 40_000,
            seed: 42,
            throttle_mbps: 2,
            cache: true,
            cache_aware: true,
            stealing: true,
            elastic: false,
            sweep: false,
            verbose: false,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--no-cache" => {
                    a.cache = false;
                    i += 1;
                    continue;
                }
                "--no-cache-aware" => {
                    a.cache_aware = false;
                    i += 1;
                    continue;
                }
                "--no-steal" => {
                    a.stealing = false;
                    i += 1;
                    continue;
                }
                "--elastic" => {
                    a.elastic = true;
                    i += 1;
                    continue;
                }
                "--sweep" => {
                    a.sweep = true;
                    i += 1;
                    continue;
                }
                "--verbose" => {
                    a.verbose = true;
                    i += 1;
                    continue;
                }
                _ => {}
            }
            let value = argv
                .get(i + 1)
                .unwrap_or_else(|| panic!("{} takes a value", argv[i]));
            match argv[i].as_str() {
                "--queries" => a.queries = value.parse().expect("--queries takes a number"),
                "--inflight" => a.inflight = value.parse().expect("--inflight takes a number"),
                "--queue-cap" => a.queue_cap = value.parse().expect("--queue-cap takes a number"),
                "--worker-slots" => {
                    a.worker_slots = value.parse().expect("--worker-slots takes a number")
                }
                "--shards" => {
                    a.shards = value.parse().expect("--shards takes a number");
                    assert!(a.shards >= 1, "--shards must be >= 1");
                }
                "--carts" => a.carts = value.parse().expect("--carts takes a number"),
                "--seed" => a.seed = value.parse().expect("--seed takes a number"),
                "--throttle-mbps" => {
                    a.throttle_mbps = value.parse().expect("--throttle-mbps takes a number")
                }
                other => panic!("unknown argument {other:?}"),
            }
            i += 2;
        }
        a
    }

    /// Per-shard cluster layout: the paper's 4-node shape with each
    /// shard's DFS owning its own bandwidth budget.
    fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            dfs: DfsConfig {
                num_datanodes: 4,
                block_size: 1024 * 1024,
                replication: 3,
                bytes_per_sec: (self.throttle_mbps > 0).then(|| self.throttle_mbps * 1024 * 1024),
                remote_bytes_per_sec: None,
            },
            ..ClusterConfig::default()
        }
    }

    fn sched_config(&self) -> SchedulerConfig {
        SchedulerConfig {
            max_concurrent: self.inflight,
            queue_capacity: self.queue_cap,
            worker_slots: self.worker_slots,
            enable_cache: self.cache,
            cache_aware: self.cache && self.cache_aware,
            work_stealing: self.stealing,
            ..SchedulerConfig::default()
        }
    }
}

fn request(i: usize) -> PipelineRequest {
    PipelineRequest {
        prep_sql: PREP_QUERY.to_string(),
        spec: TransformSpec::new(&["gender"]),
        ml_command: COMMANDS[i % COMMANDS.len()].to_string(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One measured burst: submit `n` tenant-rotating queries, wait for all,
/// return (sorted total latencies, wall time, completed, per-tenant mean
/// *queued* latency — the fairness signal; run time would drown it).
fn run_burst(
    sched: &QueryScheduler,
    n: usize,
    retry: Option<&RetryPolicy>,
) -> (Vec<Duration>, Duration, u64, HashMap<String, Duration>) {
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let (tenant, _) = TENANTS[i % TENANTS.len()];
        let spec = QuerySpec::new(tenant, request(i), STRATEGIES[i % STRATEGIES.len()]);
        let admitted = match retry {
            Some(p) => sched.submit_opts(spec, SubmitOpts::default().with_retry(p.clone())),
            None => sched.submit(spec),
        };
        match admitted {
            Ok(h) => handles.push(h),
            Err(r) => panic!("burst query {i} rejected: {r}"),
        }
    }
    let mut latencies = Vec::with_capacity(handles.len());
    let mut per_tenant: HashMap<String, (Duration, u32)> = HashMap::new();
    let mut completed = 0u64;
    for h in &handles {
        let result = h.wait();
        if let Err(e) = result.as_ref().as_ref() {
            panic!("query {} failed under load: {e}", h.id());
        }
        completed += 1;
        let lat = h.latency().expect("finished queries have latency");
        latencies.push(lat.total);
        let slot = per_tenant
            .entry(h.tenant().to_string())
            .or_insert((Duration::ZERO, 0));
        slot.0 += lat.queued;
        slot.1 += 1;
    }
    let wall = t0.elapsed();
    latencies.sort();
    let means = per_tenant
        .into_iter()
        .map(|(t, (sum, c))| (t, sum / c.max(1)))
        .collect();
    (latencies, wall, completed, means)
}

fn goodput(completed: u64, wall: Duration) -> f64 {
    completed as f64 / wall.as_secs_f64().max(f64::EPSILON)
}

fn main() {
    let args = Args::parse();
    let scale = WorkloadScale::with_carts(args.carts);
    let fleet = SimCluster::start_shards(args.cluster_config(), args.shards, scale, args.seed)
        .expect("shard fleet");
    println!(
        "serve_load: {} shards, {} queries, {} executors/shard, queue cap {}, \
         throttle {} MB/s/shard, cache {}, cache-aware {}, stealing {}\n",
        fleet.len(),
        args.queries,
        args.inflight,
        args.queue_cap,
        args.throttle_mbps,
        if args.cache { "on" } else { "off" },
        if args.cache && args.cache_aware {
            "on"
        } else {
            "off"
        },
        if args.stealing { "on" } else { "off" },
    );

    // --- phase 1: sequential baseline on shard 0 ----------------------
    let mut baseline: HashMap<&str, usize> = HashMap::new();
    let t0 = Instant::now();
    {
        let pipeline = Pipeline::new(&fleet[0]);
        for (i, strategy) in STRATEGIES.into_iter().enumerate() {
            let report = pipeline.run(&request(i), strategy).expect("baseline run");
            baseline.insert(strategy.label(), report.rows_to_ml);
        }
    }
    let seq_per_query = t0.elapsed() / STRATEGIES.len() as u32;
    println!(
        "baseline (sequential, shard 0): {:?}/query, rows_to_ml {:?}",
        seq_per_query, baseline
    );

    // --- phase 2: concurrent load over the fleet ----------------------
    let sched = QueryScheduler::builder(args.sched_config())
        .clusters(fleet.clone())
        .build()
        .expect("load-phase scheduler");
    for (tenant, weight) in TENANTS {
        sched.set_tenant_weight(tenant, weight);
    }
    let t1 = Instant::now();
    let handles: Vec<_> = (0..args.queries)
        .map(|i| {
            let (tenant, _) = TENANTS[i % TENANTS.len()];
            let strategy = STRATEGIES[i % STRATEGIES.len()];
            sched
                .submit(QuerySpec::new(tenant, request(i), strategy))
                .expect("burst within queue capacity")
        })
        .collect();
    let burst_hw = sched.stats().inflight_high_water;

    let mut latencies = Vec::with_capacity(handles.len());
    let mut mismatches = 0usize;
    for h in &handles {
        let result = h.wait();
        match result.as_ref() {
            Ok(report) => {
                if baseline.get(h.strategy().label()) != Some(&report.rows_to_ml) {
                    mismatches += 1;
                }
            }
            Err(e) => panic!("query {} failed under load: {e}", h.id()),
        }
        let lat = h.latency().expect("finished queries have latency");
        if args.verbose {
            println!(
                "  q{:<3} {:7} {:10} shard {:?}{} queued {:>8.1?} running {:>8.1?}",
                h.id(),
                h.tenant(),
                h.strategy().label(),
                h.ran_on(),
                if h.was_stolen() { " (stolen)" } else { "" },
                lat.queued,
                lat.running
            );
        }
        latencies.push(lat.total);
    }
    let wall = t1.elapsed();
    latencies.sort();
    let s = sched.stats();
    println!(
        "\nconcurrent load ({} queries over {} shards, wall {:?}):",
        handles.len(),
        sched.num_shards(),
        wall
    );
    println!(
        "  p50 {:?}  p95 {:?}  p99 {:?}",
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0)
    );
    println!(
        "  goodput {:.2} queries/s  in-flight high water {burst_hw}  slots {:?}",
        goodput(s.completed, wall),
        sched.slot_usage()
    );
    for c in &s.per_cluster {
        println!(
            "  shard {}: admitted {} stolen {} affinity hits {}",
            c.shard, c.admitted, c.stolen, c.cache_affinity_hits
        );
    }
    let total_stolen: u64 = s.per_cluster.iter().map(|c| c.stolen).sum();
    sched.shutdown();

    // --- phase 3: overload rejects + client retry + deadline ----------
    let tiny = QueryScheduler::builder(SchedulerConfig {
        max_concurrent: 1,
        queue_capacity: 4,
        worker_slots: args.worker_slots,
        enable_cache: args.cache,
        cache_aware: args.cache && args.cache_aware,
        ..SchedulerConfig::default()
    })
    .cluster(Arc::clone(&fleet[0]))
    .build()
    .expect("overload-phase scheduler");
    let mut admitted = Vec::new();
    let mut rejects = Vec::new();
    for i in 0..32 {
        match tiny.submit(QuerySpec::new("burst", request(i), Strategy::InSql)) {
            Ok(h) => admitted.push(h),
            Err(r) => rejects.push(r),
        }
    }
    let queue_full = rejects
        .iter()
        .filter(|r| matches!(r.reason, RejectReason::QueueFull { .. }))
        .count();
    println!("\noverload (burst of 32 at queue cap 4):");
    println!("  admitted {}, rejected {}", admitted.len(), rejects.len());
    if let Some(r) = rejects.first() {
        println!("  sample reject: {r}");
    }
    // The same pressure, ridden out by a retrying client.
    let retry_policy = RetryPolicy {
        max_attempts: 50,
        base: Duration::from_millis(20),
        cap: Duration::from_millis(500),
        jitter: 0.5,
        seed: args.seed,
    };
    let t_retry = Instant::now();
    let retried = tiny
        .submit_opts(
            QuerySpec::new("burst", request(0), Strategy::InSql),
            SubmitOpts::default().with_retry(retry_policy.clone()),
        )
        .expect("retrying client should outlast the backlog");
    let retry_wait = t_retry.elapsed();
    let retried_ok = retried.wait().as_ref().is_ok();
    println!("  retrying client: admitted after {retry_wait:?} of backoff, completed {retried_ok}");

    let doomed = tiny
        .submit(
            QuerySpec::new("deadline", request(0), Strategy::InSqlStream)
                .with_deadline(Duration::from_micros(1)),
        )
        .expect("deadline demo admits");
    let doomed_result = doomed.wait();
    let deadline_cancelled = doomed.status() == QueryStatus::Cancelled;
    println!(
        "  deadline demo: status {:?} ({})",
        doomed.status(),
        match doomed_result.as_ref() {
            Ok(_) => "completed before the token fired".to_string(),
            Err(e) => e.to_string(),
        }
    );
    let after = tiny
        .submit(QuerySpec::new("burst", request(0), Strategy::InSql))
        .expect("post-overload admit");
    let after_ok = after.wait().as_ref().is_ok();
    for h in admitted {
        let _ = h.wait();
    }
    tiny.shutdown();

    // --- phase 4: scale-out, 1 shard vs the fleet ---------------------
    // Cache off so the work per query is constant and the comparison
    // isolates what sharding itself buys: aggregate bandwidth + slots.
    let mut scaleout_holds = true;
    let (mut solo_gp, mut fleet_gp) = (0.0, 0.0);
    if args.shards >= 2 {
        let scale_cfg = SchedulerConfig {
            max_concurrent: args.inflight,
            queue_capacity: args.queue_cap.max(args.queries),
            worker_slots: args.worker_slots,
            enable_cache: false,
            cache_aware: false,
            work_stealing: args.stealing,
            ..SchedulerConfig::default()
        };
        let solo = QueryScheduler::builder(scale_cfg.clone())
            .cluster(Arc::clone(&fleet[0]))
            .build()
            .expect("solo scheduler");
        let (_, solo_wall, solo_done, _) = run_burst(&solo, args.queries, None);
        solo.shutdown();
        let full = QueryScheduler::builder(scale_cfg)
            .clusters(fleet.clone())
            .build()
            .expect("fleet scheduler");
        let (_, fleet_wall, fleet_done, _) = run_burst(&full, args.queries, None);
        let fleet_stolen: u64 = full.stats().per_cluster.iter().map(|c| c.stolen).sum();
        full.shutdown();
        solo_gp = goodput(solo_done, solo_wall);
        fleet_gp = goodput(fleet_done, fleet_wall);
        scaleout_holds = fleet_gp > solo_gp;
        println!(
            "\nscale-out ({} queries, cache off): 1 shard {:.2} q/s (wall {:?})  \
             {} shards {:.2} q/s (wall {:?}, {} stolen)  speedup {:.2}x",
            args.queries,
            solo_gp,
            solo_wall,
            args.shards,
            fleet_gp,
            fleet_wall,
            fleet_stolen,
            fleet_gp / solo_gp.max(f64::EPSILON),
        );
    }

    // --- phase 5: cache-aware routing vs blind routing ----------------
    // One warmed descriptor, repeated: affinity routing keeps repeats on
    // the warm shard (near-free cached runs); blind routing scatters
    // them, paying a cold full run per shard it touches.
    let mut affinity_holds = true;
    let (mut aware_p95, mut blind_p95) = (Duration::ZERO, Duration::ZERO);
    if args.shards >= 2 && args.cache {
        let repeats = 12;
        let mut p95s = Vec::new();
        for aware in [true, false] {
            let cfg = SchedulerConfig {
                max_concurrent: args.inflight,
                queue_capacity: args.queue_cap.max(repeats + 1),
                worker_slots: args.worker_slots,
                enable_cache: true,
                cache_aware: aware,
                work_stealing: args.stealing,
                ..SchedulerConfig::default()
            };
            let sched = QueryScheduler::builder(cfg)
                .clusters(fleet.clone())
                .build()
                .expect("affinity scheduler");
            // Warm exactly one shard's cache.
            let warm = sched
                .submit(QuerySpec::new("t", request(0), Strategy::InSqlStream))
                .expect("warmup admits");
            assert!(warm.wait().as_ref().is_ok(), "warmup failed");
            let t = Instant::now();
            let handles: Vec<_> = (0..repeats)
                .map(|_| {
                    sched
                        .submit(QuerySpec::new("t", request(0), Strategy::InSqlStream))
                        .expect("repeat admits")
                })
                .collect();
            let mut lats: Vec<Duration> = handles
                .iter()
                .map(|h| {
                    assert!(h.wait().as_ref().is_ok(), "repeat failed");
                    h.latency().expect("finished").total
                })
                .collect();
            let wall = t.elapsed();
            lats.sort();
            let p95 = percentile(&lats, 95.0);
            let s = sched.stats();
            let hits: u64 = s.per_cluster.iter().map(|c| c.cache_affinity_hits).sum();
            println!(
                "{}cache routing {:5}: {} repeats p50 {:?} p95 {:?} wall {:?} affinity hits {}",
                if aware { "\n" } else { "" },
                if aware { "aware" } else { "blind" },
                repeats,
                percentile(&lats, 50.0),
                p95,
                wall,
                hits
            );
            p95s.push(p95);
            sched.shutdown();
        }
        (aware_p95, blind_p95) = (p95s[0], p95s[1]);
        affinity_holds = aware_p95 < blind_p95;
    }

    // --- phase 6: elastic fleet — join mid-burst, drain under load ----
    // Cache off so goodput tracks aggregate bandwidth/slots, the
    // resource a joined shard actually adds.
    let mut elastic_recovers = true;
    let mut elastic_zero_lost = true;
    if args.elastic {
        let elastic_cfg = SchedulerConfig {
            max_concurrent: args.inflight,
            queue_capacity: args.queue_cap.max(3 * args.queries),
            worker_slots: args.worker_slots,
            enable_cache: false,
            cache_aware: false,
            work_stealing: args.stealing,
            steal_min_backlog: 1,
            ..SchedulerConfig::default()
        };
        let sched = QueryScheduler::builder(elastic_cfg)
            .warehouse(args.cluster_config(), scale, args.seed)
            .shards(1)
            .build()
            .expect("elastic scheduler");

        // Burst A: the 1-shard goodput bar.
        let (_, wall_a, done_a, _) = run_burst(&sched, args.queries, None);
        let gp_solo = goodput(done_a, wall_a);

        // Burst B: 3x the load, with a shard joined after the first
        // third is in — the newcomer serves and steals the rest.
        let n_b = 3 * args.queries;
        let t_b = Instant::now();
        let mut handles = Vec::with_capacity(n_b);
        let mut joined = None;
        for i in 0..n_b {
            if i == args.queries {
                joined = Some(sched.add_shard().expect("mid-burst add_shard"));
            }
            let (tenant, _) = TENANTS[i % TENANTS.len()];
            sched
                .submit(QuerySpec::new(
                    tenant,
                    request(i),
                    STRATEGIES[i % STRATEGIES.len()],
                ))
                .map(|h| handles.push(h))
                .expect("elastic burst within queue capacity");
        }
        for h in &handles {
            if let Err(e) = h.wait().as_ref().as_ref() {
                panic!("elastic burst query {} failed: {e}", h.id());
            }
        }
        let wall_b = t_b.elapsed();
        let gp_joined = goodput(handles.len() as u64, wall_b);
        let joined = joined.expect("burst B is larger than one --queries");
        let sb = sched.stats();
        let newcomer = sb
            .per_cluster
            .iter()
            .find(|c| c.shard == joined)
            .expect("joined shard in stats");
        println!(
            "\nelastic: 1 shard {gp_solo:.2} q/s -> join mid-burst {gp_joined:.2} q/s \
             (shard {joined} admitted {} stolen {})",
            newcomer.admitted, newcomer.stolen
        );
        elastic_recovers = gp_joined > gp_solo;

        // Burst C: queue work onto the joined shard, then drain it out
        // mid-flight with one cancel racing the drain. Every handle must
        // resolve exactly once.
        let mut pinned = Vec::new();
        for i in 0..args.queries {
            match sched.submit_opts(
                QuerySpec::new("gold", request(i), Strategy::InSql),
                SubmitOpts::pinned(joined),
            ) {
                Ok(h) => pinned.push(h),
                Err(r) => panic!("pin onto shard {joined} rejected: {r}"),
            }
        }
        if pinned.len() > 1 {
            pinned[1].cancel("elastic drain demo");
        }
        let removal = sched
            .remove_shard(joined, DrainPolicy::Migrate)
            .expect("drain the joined shard");
        let mut terminal = 0usize;
        for h in &pinned {
            let result = h.wait();
            if let Err(e) = result.as_ref().as_ref() {
                assert!(
                    e.is_cancelled(),
                    "drained query {} failed oddly: {e}",
                    h.id()
                );
            }
            if h.is_finished() {
                terminal += 1;
            }
        }
        let sc = sched.stats();
        elastic_zero_lost = terminal == pinned.len() && sc.inflight_now == 0;
        println!(
            "elastic: drained shard {} mid-burst — {} queued migrated, {}/{} handles \
             terminal, {} in flight after",
            removal.shard,
            removal.migrated,
            terminal,
            pinned.len(),
            sc.inflight_now
        );
        sched.shutdown();
    }

    // --- A8 sweep: queue cap × slots × skew × shards ------------------
    if args.sweep {
        println!("\nA8 sweep (queue cap x worker slots x tenant skew x shards), {} queries/cell, per-submit retry:", args.queries);
        println!(
            " shards    qcap   slots    skew   goodput(q/s)   p95(ms)   attempts-rej   gold/bronze queue wait"
        );
        let retry = RetryPolicy {
            max_attempts: 200,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(500),
            jitter: 0.5,
            seed: args.seed,
        };
        for shard_count in [1usize, args.shards.max(2)] {
            let cell_fleet: Vec<Arc<SimCluster>> = fleet[..shard_count.min(fleet.len())].to_vec();
            for qcap in [4usize, 64] {
                for slots in [8usize, 0] {
                    for (skew_label, weights) in [("flat", [1u32, 1, 1]), ("8:2:1", [8u32, 2, 1])] {
                        let sched = QueryScheduler::builder(SchedulerConfig {
                            max_concurrent: args.inflight,
                            queue_capacity: qcap,
                            worker_slots: slots,
                            enable_cache: args.cache,
                            cache_aware: args.cache && args.cache_aware,
                            work_stealing: args.stealing,
                            ..SchedulerConfig::default()
                        })
                        .clusters(cell_fleet.clone())
                        .build()
                        .expect("sweep-cell scheduler");
                        for ((tenant, _), w) in TENANTS.iter().zip(weights) {
                            sched.set_tenant_weight(tenant, w);
                        }
                        let (lats, wall, completed, means) =
                            run_burst(&sched, args.queries, Some(&retry));
                        let stats = sched.stats();
                        let gold = means.get("gold").copied().unwrap_or_default();
                        let bronze = means.get("bronze").copied().unwrap_or_default();
                        let ratio = gold.as_secs_f64() / bronze.as_secs_f64().max(f64::EPSILON);
                        println!(
                            " {:>6}  {:>6}  {:>6}  {:>6}   {:>11.2}  {:>8}   {:>12}   {:>21.2}",
                            shard_count,
                            qcap,
                            if slots == 0 {
                                "auto".to_string()
                            } else {
                                slots.to_string()
                            },
                            skew_label,
                            goodput(completed, wall),
                            percentile(&lats, 95.0).as_millis(),
                            stats.rejected,
                            ratio,
                        );
                        sched.shutdown();
                    }
                }
            }
        }
    }

    // --- shape checks -------------------------------------------------
    let mut ok = check_shape(
        &format!("every admitted query matched its baseline rows_to_ml ({mismatches} mismatches)"),
        mismatches == 0,
    ) & check_shape(
        &format!(
            "at least {} queries were in flight together (high water {burst_hw})",
            args.queries.min(8)
        ),
        burst_hw >= args.queries.min(8),
    ) & check_shape(
        &format!(
            "overload rejected with QueueFull reasons ({queue_full} of {})",
            rejects.len()
        ),
        queue_full > 0 && queue_full == rejects.len(),
    ) & check_shape(
        "a retrying client was admitted after backoff and completed",
        retried_ok,
    ) & check_shape(
        "a 1µs deadline cancelled cleanly",
        deadline_cancelled && doomed_result.as_ref().is_err(),
    ) & check_shape(
        "the cluster served a query after overload + cancel",
        after_ok,
    );
    if args.shards >= 2 {
        ok &= check_shape(
            &format!(
                "{} shards give strictly higher goodput than 1 ({:.2} vs {:.2} q/s)",
                args.shards, fleet_gp, solo_gp
            ),
            scaleout_holds,
        );
        if args.cache {
            ok &= check_shape(
                &format!(
                    "cache-aware routing beats blind routing on p95 ({aware_p95:?} vs {blind_p95:?})"
                ),
                affinity_holds,
            );
        }
        if args.stealing {
            // Informational: stealing depends on timing; report, don't gate.
            println!("note: load phase stole {total_stolen} queries across shards");
        }
    }
    if args.elastic {
        ok &= check_shape(
            "a shard joined mid-burst lifts goodput past the 1-shard bar",
            elastic_recovers,
        ) & check_shape(
            "remove_shard under load lost no handles (all terminal, none in flight)",
            elastic_zero_lost,
        );
    }
    std::process::exit(if ok { 0 } else { 1 });
}
