//! **Serving-plane load generator (§10 scheduler).**
//!
//! Drives one shared [`SimCluster`] through the [`QueryScheduler`] with a
//! closed-loop multi-tenant workload and reports what an operator would
//! watch: latency percentiles (p50/p95/p99), goodput, admission rejects,
//! and deadline behaviour.
//!
//! Three phases:
//!
//! 1. **baseline** — each strategy runs once sequentially; its
//!    `rows_to_ml` becomes the ground truth for the concurrent phase.
//! 2. **load** — `--queries` requests burst in from three weighted
//!    tenants (gold 4 / silver 2 / bronze 1), mixed strategies, all in
//!    flight together. Every admitted query's result must match the
//!    baseline row count for its strategy.
//! 3. **overload + deadline** — a burst against a tiny queue forces
//!    `QueueFull` rejects with reasons, and a microsecond deadline shows
//!    a query cancelling cleanly while the cluster stays usable.
//!
//! Run: `cargo run --release -p sqlml-bench --bin serve_load`
//! Flags: `--queries N --inflight N --queue-cap N --worker-slots N`
//! `--carts N --seed N --no-cache --verbose`

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sqlml_bench::check_shape;
use sqlml_core::workload::{WorkloadScale, PREP_QUERY};
use sqlml_core::{ClusterConfig, Pipeline, PipelineRequest, SimCluster, Strategy};
use sqlml_sched::{QueryScheduler, QuerySpec, QueryStatus, RejectReason, SchedulerConfig};
use sqlml_transform::TransformSpec;
use std::sync::Arc;

const STRATEGIES: [Strategy; 3] = [Strategy::Naive, Strategy::InSql, Strategy::InSqlStream];
const TENANTS: [(&str, u32); 3] = [("gold", 4), ("silver", 2), ("bronze", 1)];
const COMMANDS: [&str; 3] = [
    "svm label=4 iterations=5",
    "logreg label=4 iterations=5",
    "nb label=4",
];

struct Args {
    queries: usize,
    inflight: usize,
    queue_cap: usize,
    worker_slots: usize,
    carts: usize,
    seed: u64,
    cache: bool,
    verbose: bool,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            queries: 24,
            inflight: 8,
            queue_cap: 64,
            worker_slots: 0,
            carts: 0,
            seed: 42,
            cache: true,
            verbose: false,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--no-cache" => {
                    a.cache = false;
                    i += 1;
                    continue;
                }
                "--verbose" => {
                    a.verbose = true;
                    i += 1;
                    continue;
                }
                _ => {}
            }
            let value = argv
                .get(i + 1)
                .unwrap_or_else(|| panic!("{} takes a value", argv[i]));
            match argv[i].as_str() {
                "--queries" => a.queries = value.parse().expect("--queries takes a number"),
                "--inflight" => a.inflight = value.parse().expect("--inflight takes a number"),
                "--queue-cap" => a.queue_cap = value.parse().expect("--queue-cap takes a number"),
                "--worker-slots" => {
                    a.worker_slots = value.parse().expect("--worker-slots takes a number")
                }
                "--carts" => a.carts = value.parse().expect("--carts takes a number"),
                "--seed" => a.seed = value.parse().expect("--seed takes a number"),
                other => panic!("unknown argument {other:?}"),
            }
            i += 2;
        }
        a
    }
}

fn request(i: usize) -> PipelineRequest {
    PipelineRequest {
        prep_sql: PREP_QUERY.to_string(),
        spec: TransformSpec::new(&["gender"]),
        ml_command: COMMANDS[i % COMMANDS.len()].to_string(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = Args::parse();
    let scale = if args.carts == 0 {
        WorkloadScale::SMALL
    } else {
        WorkloadScale::with_carts(args.carts)
    };
    let cluster = Arc::new({
        let c = SimCluster::start(ClusterConfig::default()).expect("cluster");
        c.load_workload(scale, args.seed).expect("workload");
        c
    });
    println!(
        "serve_load: {} queries, {} executor threads, queue cap {}, cache {}\n",
        args.queries,
        args.inflight,
        args.queue_cap,
        if args.cache { "on" } else { "off" }
    );

    // --- phase 1: sequential baseline ---------------------------------
    let mut baseline: HashMap<&str, usize> = HashMap::new();
    let t0 = Instant::now();
    {
        let pipeline = Pipeline::new(&cluster);
        for (i, strategy) in STRATEGIES.into_iter().enumerate() {
            let report = pipeline.run(&request(i), strategy).expect("baseline run");
            baseline.insert(strategy.label(), report.rows_to_ml);
        }
    }
    let seq_per_query = t0.elapsed() / STRATEGIES.len() as u32;
    println!(
        "baseline (sequential): {:?}/query, rows_to_ml {:?}",
        seq_per_query, baseline
    );

    // --- phase 2: concurrent load -------------------------------------
    let sched = QueryScheduler::start(
        Arc::clone(&cluster),
        SchedulerConfig {
            max_concurrent: args.inflight,
            queue_capacity: args.queue_cap,
            worker_slots: args.worker_slots,
            default_deadline: None,
            enable_cache: args.cache,
        },
    );
    for (tenant, weight) in TENANTS {
        sched.set_tenant_weight(tenant, weight);
    }
    let t1 = Instant::now();
    let handles: Vec<_> = (0..args.queries)
        .map(|i| {
            let (tenant, _) = TENANTS[i % TENANTS.len()];
            let strategy = STRATEGIES[i % STRATEGIES.len()];
            sched
                .submit(QuerySpec::new(tenant, request(i), strategy))
                .expect("burst within queue capacity")
        })
        .collect();
    let burst_hw = sched.stats().inflight_high_water;

    let mut latencies = Vec::with_capacity(handles.len());
    let mut mismatches = 0usize;
    for h in &handles {
        let result = h.wait();
        match result.as_ref() {
            Ok(report) => {
                if baseline.get(h.strategy().label()) != Some(&report.rows_to_ml) {
                    mismatches += 1;
                }
            }
            Err(e) => panic!("query {} failed under load: {e}", h.id()),
        }
        let lat = h.latency().expect("finished queries have latency");
        if args.verbose {
            println!(
                "  q{:<3} {:7} {:10} queued {:>8.1?} running {:>8.1?}",
                h.id(),
                h.tenant(),
                h.strategy().label(),
                lat.queued,
                lat.running
            );
        }
        latencies.push(lat.total);
    }
    let wall = t1.elapsed();
    latencies.sort();
    let s = sched.stats();
    let goodput = s.completed as f64 / wall.as_secs_f64();
    println!(
        "\nconcurrent load ({} queries, wall {:?}):",
        handles.len(),
        wall
    );
    println!(
        "  p50 {:?}  p95 {:?}  p99 {:?}",
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0)
    );
    println!(
        "  goodput {goodput:.2} queries/s  in-flight high water {}  slots {:?}",
        burst_hw,
        sched.slot_usage()
    );
    sched.shutdown();

    // --- phase 3: overload rejects + deadline cancellation ------------
    let tiny = QueryScheduler::start(
        Arc::clone(&cluster),
        SchedulerConfig {
            max_concurrent: 1,
            queue_capacity: 4,
            worker_slots: args.worker_slots,
            default_deadline: None,
            enable_cache: args.cache,
        },
    );
    let mut admitted = Vec::new();
    let mut rejects = Vec::new();
    for i in 0..32 {
        match tiny.submit(QuerySpec::new("burst", request(i), Strategy::InSql)) {
            Ok(h) => admitted.push(h),
            Err(r) => rejects.push(r),
        }
    }
    let queue_full = rejects
        .iter()
        .filter(|r| matches!(r.reason, RejectReason::QueueFull { .. }))
        .count();
    println!("\noverload (burst of 32 at queue cap 4):");
    println!("  admitted {}, rejected {}", admitted.len(), rejects.len());
    if let Some(r) = rejects.first() {
        println!("  sample reject: {r}");
    }

    let doomed = tiny
        .submit(
            QuerySpec::new("deadline", request(0), Strategy::InSqlStream)
                .with_deadline(Duration::from_micros(1)),
        )
        .expect("deadline demo admits");
    let doomed_result = doomed.wait();
    let deadline_cancelled = doomed.status() == QueryStatus::Cancelled;
    println!(
        "  deadline demo: status {:?} ({})",
        doomed.status(),
        match doomed_result.as_ref() {
            Ok(_) => "completed before the token fired".to_string(),
            Err(e) => e.to_string(),
        }
    );
    // The cluster is still healthy after rejects and cancellation.
    let after = tiny
        .submit(QuerySpec::new("burst", request(0), Strategy::InSql))
        .expect("post-overload admit");
    let after_ok = after.wait().as_ref().is_ok();
    for h in admitted {
        let _ = h.wait();
    }
    tiny.shutdown();

    let ok = check_shape(
        &format!("every admitted query matched its baseline rows_to_ml ({mismatches} mismatches)"),
        mismatches == 0,
    ) & check_shape(
        &format!("at least 8 queries were in flight together (high water {burst_hw})"),
        burst_hw >= 8,
    ) & check_shape(
        &format!(
            "overload rejected with QueueFull reasons ({queue_full} of {})",
            rejects.len()
        ),
        queue_full > 0 && queue_full == rejects.len(),
    ) & check_shape(
        "a 1µs deadline cancelled cleanly",
        deadline_cancelled && doomed_result.as_ref().is_err(),
    ) & check_shape(
        "the cluster served a query after overload + cancel",
        after_ok,
    );
    std::process::exit(if ok { 0 } else { 1 });
}
