//! **Figure 4**: effect of caching on the integrated pipeline.
//!
//! Paper setup: all three runs use In-SQL transformation + parallel
//! streaming transfer. Reported shape:
//!
//! * caching the **fully transformed result** ≈ **2.2×** speedup over no
//!   cache (skips query + transformation entirely);
//! * caching the **recode maps** ≈ **1.5×** speedup (skips one of
//!   recoding's two passes).
//!
//! Run: `cargo run --release -p sqlml-bench --bin figure4 -- [--carts N]
//! [--throttle-mbps M] [--seed S]`

use sqlml_bench::{check_shape, render_figure, stages_of, BenchParams, FigureBar};
use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{CacheMode, Pipeline, PipelineRequest, Strategy};
use sqlml_transform::TransformSpec;

fn main() {
    let params = BenchParams::from_args();
    println!(
        "figure4: {} carts / {} users, DFS throttle {:?} MB/s\n",
        params.scale.carts, params.scale.users, params.throttle_mbps
    );
    let cluster = params.start_cluster();
    let request = PipelineRequest {
        prep_sql: PREP_QUERY.to_string(),
        spec: TransformSpec::new(&["gender"]),
        ml_command: "svm label=4 iterations=10".to_string(),
    };

    // Bar 1: no cache.
    let no_cache = Pipeline::new(&cluster)
        .run(&request, Strategy::InSqlStream)
        .expect("no-cache run");

    // Bar 2: cached recode maps. Prime a cache with only the map, then
    // rerun.
    let map_pipeline = Pipeline::with_cache(&cluster);
    {
        let warm = map_pipeline
            .run(&request, Strategy::InSqlStream)
            .expect("warmup");
        assert_eq!(warm.cache_use, CacheMode::None);
        // Keep the recode map but drop the full materialization, so the
        // lookup can only take the §5.2 path.
        let cache = map_pipeline.cache().unwrap();
        let descriptor = {
            use sqlml_cache::QueryDescriptor;
            use sqlml_sqlengine::parser::parse_select;
            QueryDescriptor::from_select(
                &parse_select(PREP_QUERY).unwrap(),
                cluster.engine.catalog(),
            )
            .unwrap()
            .unwrap()
        };
        let map = match cache.lookup(&descriptor, &request.spec) {
            sqlml_cache::CacheDecision::Full(r) => r.map,
            other => panic!("expected primed cache, got {other:?}"),
        };
        cache.invalidate_all();
        cache.store_recode_map(descriptor, map);
    }
    let cached_map = map_pipeline
        .run(&request, Strategy::InSqlStream)
        .expect("cached-map run");
    assert_eq!(cached_map.cache_use, CacheMode::RecodeMap);

    // Bar 3: cached fully transformed result.
    let full_pipeline = Pipeline::with_cache(&cluster);
    full_pipeline
        .run(&request, Strategy::InSqlStream)
        .expect("warmup");
    let cached_full = full_pipeline
        .run(&request, Strategy::InSqlStream)
        .expect("cached-full run");
    assert_eq!(cached_full.cache_use, CacheMode::FullResult);

    let bars = vec![
        FigureBar {
            label: "no cache".into(),
            stages: stages_of(&no_cache),
        },
        FigureBar {
            label: "cache recode maps".into(),
            stages: stages_of(&cached_map),
        },
        FigureBar {
            label: "cache transformed result".into(),
            stages: stages_of(&cached_full),
        },
    ];
    println!("{}", render_figure("Figure 4: effect of caching", &bars));

    let base = no_cache.pipeline_time().as_secs_f64();
    let map_t = cached_map.pipeline_time().as_secs_f64();
    let full_t = cached_full.pipeline_time().as_secs_f64();
    let ok = check_shape(
        &format!(
            "cached recode maps beat no cache (paper 1.5x; measured {:.2}x)",
            base / map_t
        ),
        map_t < base,
    ) & check_shape(
        &format!(
            "cached transformed result beats no cache (paper 2.2x; measured {:.2}x)",
            base / full_t
        ),
        full_t < base,
    ) & check_shape(
        "full-result caching beats recode-map caching",
        full_t < map_t,
    );
    std::process::exit(if ok { 0 } else { 1 });
}
