//! **A4 — locality-aware split placement.** Step 3 of the paper's
//! Figure 2 locates each InputSplit at its SQL worker's node "so that
//! data transfer does not incur network I/O". This ablation measures
//! DFS-side ingestion with the ML workers colocated with the data versus
//! deliberately anti-located, under a constrained cluster interconnect.
//!
//! Expected shape: colocated workers read every split locally and avoid
//! the network entirely; anti-located workers pay the interconnect and
//! ingest slower.
//!
//! Run: `cargo run --release -p sqlml-bench --bin ablation_locality`

use sqlml_bench::{check_shape, BenchParams};
use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{ClusterConfig, SimCluster};
use sqlml_dfs::DfsConfig;
use sqlml_mlengine::input::TextInputFormat;
use sqlml_mlengine::job::{JobConfig, JobRunner};
use sqlml_transform::TransformSpec;

fn main() {
    let params = BenchParams::from_args();
    // Unthrottled disks; a 8 MB/s interconnect so remote reads hurt.
    let cluster = SimCluster::start(ClusterConfig {
        dfs: DfsConfig {
            num_datanodes: 4,
            block_size: 256 * 1024,
            replication: 1, // single replica => locality is all-or-nothing
            bytes_per_sec: None,
            remote_bytes_per_sec: Some(8 * 1024 * 1024),
        },
        ..ClusterConfig::default()
    })
    .expect("cluster");
    cluster
        .load_workload(params.scale, params.seed)
        .expect("workload");

    // Materialize the transformed hand-off files once.
    let engine = &cluster.engine;
    engine
        .execute(&format!("CREATE TABLE prep AS {PREP_QUERY}"))
        .expect("prep");
    let transformer = sqlml_transform::InSqlTransformer::new(engine.clone());
    let out = transformer
        .transform("prep", &TransformSpec::new(&["gender"]))
        .expect("transform");
    out.table.save_text(&cluster.dfs, "/handoff").expect("save");
    let schema = out.table.schema().clone();

    println!(
        "A4: ingestion locality ({} rows over a 8 MB/s interconnect)\n",
        out.table.num_rows()
    );
    println!(
        "{:>14} {:>8} {:>8} {:>12}",
        "placement", "splits", "local", "time (s)"
    );

    let run = |label: &str, nodes: Vec<String>| {
        let fmt = TextInputFormat::new(cluster.dfs.clone(), "/handoff", schema.clone());
        let runner = JobRunner::new(JobConfig {
            num_workers: 4,
            worker_nodes: nodes,
            splits_per_worker: 1,
        });
        let (_, report) = runner.ingest_rows(&fmt).expect("ingest");
        println!(
            "{label:>14} {:>8} {:>8} {:>12.3}",
            report.num_splits,
            report.local_splits,
            report.duration.as_secs_f64()
        );
        report
    };

    let colocated = run("colocated", (0..4).map(sqlml_dfs::node_name).collect());
    let antilocated = run("anti-located", (10..14).map(sqlml_dfs::node_name).collect());

    let ok = check_shape(
        "colocated workers read every split locally",
        colocated.local_splits == colocated.num_splits,
    ) & check_shape(
        "anti-located workers read nothing locally",
        antilocated.local_splits == 0,
    ) & check_shape(
        &format!(
            "remote ingestion is slower ({:.3}s vs {:.3}s)",
            antilocated.duration.as_secs_f64(),
            colocated.duration.as_secs_f64()
        ),
        antilocated.duration > colocated.duration,
    );
    std::process::exit(if ok { 0 } else { 1 });
}
