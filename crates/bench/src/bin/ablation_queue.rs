//! **A6 — socket streaming (§3) vs message-queue transfer (§8 future
//! work).**
//!
//! The paper proposes Kafka as an alternative transport with two
//! benefits: at-least-once reads under failure without restarting the
//! producer, and the log acting as a cache when consumers are slow — at
//! the cost of an extra materialization hop through the broker.
//!
//! This ablation measures both transports on the same transformed table:
//! one-shot delivery (where the socket path should win — no middleman)
//! and a four-algorithm workflow (where the queue amortizes one publish
//! across jobs while the socket path must re-stream every time).
//!
//! Run: `cargo run --release -p sqlml-bench --bin ablation_queue`

use std::time::Instant;

use sqlml_bench::{check_shape, BenchParams};
use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{ClusterConfig, SimCluster};
use sqlml_mq::{broker::BrokerConfig, session, Broker};
use sqlml_transform::TransformSpec;

const COMMANDS: [&str; 4] = [
    "svm label=4 iterations=5",
    "logreg label=4 iterations=5",
    "nb label=4",
    "tree label=4 depth=3",
];

fn main() {
    let params = BenchParams::from_args();
    let cluster = SimCluster::start(ClusterConfig::default()).expect("cluster");
    cluster
        .load_workload(params.scale, params.seed)
        .expect("workload");
    let engine = &cluster.engine;

    // Prepare the transformed hand-off table once.
    engine
        .execute(&format!("CREATE TABLE prep AS {PREP_QUERY}"))
        .expect("prep");
    let transformer = sqlml_transform::InSqlTransformer::new(engine.clone());
    let out = transformer
        .transform("prep", &TransformSpec::new(&["gender"]))
        .expect("transform");
    let rows = out.table.num_rows();
    engine.register_table("handoff", out.table);
    println!("A6: socket streaming vs message queue, {rows} rows\n");

    // Give the broker the same 4 MB/s I/O budget the DFS gets in the
    // figure runs, so its extra hop costs honestly.
    let broker = Broker::new(BrokerConfig {
        bytes_per_sec: params.throttle_mbps.map(|m| m * 1024 * 1024),
    });
    session::install_udf(engine, &broker);
    let stream_cfg = cluster.stream_config();
    cluster.stream.install_udf(engine, &stream_cfg, None);

    // --- one-shot delivery -------------------------------------------
    let t0 = Instant::now();
    let stream_once = cluster
        .stream
        .run(engine, "handoff", COMMANDS[0], &stream_cfg)
        .expect("stream");
    let stream_once_t = t0.elapsed().as_secs_f64() - stream_once.job.train_duration.as_secs_f64();

    let t1 = Instant::now();
    let mq_once = session::run_mq_pipeline(
        engine,
        &broker,
        "handoff",
        "once",
        COMMANDS[0],
        cluster.ml_job_config(),
    )
    .expect("mq");
    let mq_once_t = t1.elapsed().as_secs_f64() - mq_once.job.train_duration.as_secs_f64();

    println!("one-shot delivery:");
    println!("  socket stream   {stream_once_t:8.3}s");
    println!(
        "  message queue   {mq_once_t:8.3}s  (publish {:.3}s)",
        mq_once.publish_time.as_secs_f64()
    );

    // --- four algorithms over the same data ---------------------------
    let t2 = Instant::now();
    let mut stream_train = 0.0;
    for cmd in COMMANDS {
        let o = cluster
            .stream
            .run(engine, "handoff", cmd, &stream_cfg)
            .expect("stream multi");
        stream_train += o.job.train_duration.as_secs_f64();
    }
    let stream_multi_t = t2.elapsed().as_secs_f64() - stream_train;

    let t3 = Instant::now();
    let (pub_rows, _, schema) =
        session::publish_table(engine, &broker, "handoff", "shared").expect("publish");
    assert_eq!(pub_rows as usize, rows);
    let mut mq_train = 0.0;
    for cmd in COMMANDS {
        let job = session::run_mq_job(
            &broker,
            "shared",
            schema.clone(),
            cmd,
            cluster.ml_job_config(),
            None,
        )
        .expect("mq job");
        assert_eq!(job.ingest.rows, rows);
        mq_train += job.train_duration.as_secs_f64();
    }
    let mq_multi_t = t3.elapsed().as_secs_f64() - mq_train;

    println!("\nfour algorithms over the same data:");
    println!("  socket stream   {stream_multi_t:8.3}s  (re-streams the SQL side 4x)");
    println!("  message queue   {mq_multi_t:8.3}s  (one publish, 4 consumes)");

    let ok = check_shape(
        "both transports deliver every row",
        stream_once.stats.rows_ingested == rows && mq_once.consume_rows == rows,
    ) & check_shape(
        &format!(
            "queue amortizes across jobs better than its one-shot ratio \
             (one-shot mq/stream {:.2}, multi mq/stream {:.2})",
            mq_once_t / stream_once_t,
            mq_multi_t / stream_multi_t
        ),
        mq_multi_t / stream_multi_t < mq_once_t / stream_once_t * 1.05,
    );
    std::process::exit(if ok { 0 } else { 1 });
}
