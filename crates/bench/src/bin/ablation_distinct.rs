//! **A3 — one-pass UDF distinct vs per-column `SELECT DISTINCT`.**
//!
//! §2.1 argues: "Although one could use SQL queries to compute the
//! distinct values, each column that needs to be recoded would result in
//! such an SQL query, and would require one pass of the data. Using
//! UDFs, we can scan the data once and compute the distinct values for
//! all required columns."
//!
//! This ablation builds recode maps for tables with a growing number of
//! categorical columns both ways and compares the build times.
//!
//! Expected shape: the per-column approach degrades roughly linearly
//! with the column count; the one-pass UDF stays near-flat, so the gap
//! widens with more columns.
//!
//! Run: `cargo run --release -p sqlml-bench --bin ablation_distinct`

use std::time::Instant;

use sqlml_bench::check_shape;
use sqlml_common::schema::{Field, Schema};
use sqlml_common::{Row, SplitMix64, Value};
use sqlml_sqlengine::{Engine, EngineConfig};
use sqlml_transform::{InSqlTransformer, RecodeMap};

const ROWS: usize = 120_000;

fn wide_table(cols: usize, seed: u64) -> (Schema, Vec<Row>) {
    let schema = Schema::new(
        (0..cols)
            .map(|i| Field::categorical(format!("c{i}")))
            .collect(),
    );
    let mut rng = SplitMix64::new(seed);
    let values: Vec<std::sync::Arc<str>> = ["alpha", "beta", "gamma", "delta", "epsilon"]
        .iter()
        .map(|&v| v.into())
        .collect();
    let rows = (0..ROWS)
        .map(|_| {
            Row::new(
                (0..cols)
                    .map(|_| Value::Str(rng.choose(&values).clone()))
                    .collect(),
            )
        })
        .collect();
    (schema, rows)
}

/// The §2.1 alternative: one `SELECT DISTINCT` query per column.
fn per_column_distinct(engine: &Engine, cols: usize) -> RecodeMap {
    let mut pairs = Vec::new();
    for i in 0..cols {
        let rows = engine
            .query(&format!("SELECT DISTINCT c{i} FROM wide"))
            .expect("distinct query")
            .collect_rows();
        for r in rows {
            pairs.push((format!("c{i}"), r.get(0).as_str().unwrap().to_string()));
        }
    }
    RecodeMap::from_pairs(pairs)
}

fn main() {
    println!("A3: recode-map build, one-pass UDF vs per-column DISTINCT ({ROWS} rows)\n");
    println!(
        "{:>6} {:>14} {:>18} {:>8}",
        "cols", "udf 1-pass (s)", "per-column (s)", "ratio"
    );
    let mut ratios = Vec::new();
    for cols in [2usize, 4, 8, 16] {
        let engine = Engine::new(EngineConfig::with_workers(4));
        let (schema, rows) = wide_table(cols, 7);
        engine.register_rows("wide", schema, rows);
        let transformer = InSqlTransformer::new(engine.clone());
        let col_names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();

        let t0 = Instant::now();
        let udf_map = transformer
            .build_recode_map("wide", &col_names)
            .expect("udf map");
        let udf_time = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let sql_map = per_column_distinct(&engine, cols);
        let sql_time = t1.elapsed().as_secs_f64();

        assert_eq!(udf_map, sql_map, "both approaches must agree");
        let ratio = sql_time / udf_time.max(f64::EPSILON);
        println!("{cols:>6} {udf_time:>14.3} {sql_time:>18.3} {ratio:>7.2}x");
        ratios.push((cols, udf_time, sql_time));
    }

    // Shape: per-column cost grows faster with the column count than the
    // one-pass UDF cost.
    let growth_sql = ratios.last().unwrap().2 / ratios[0].2;
    let growth_udf = ratios.last().unwrap().1 / ratios[0].1;
    println!(
        "\ncost growth 2→16 columns: per-column {growth_sql:.1}x, one-pass UDF {growth_udf:.1}x"
    );
    let ok = check_shape(
        "per-column DISTINCT cost grows faster with column count than the one-pass UDF",
        growth_sql > growth_udf,
    ) & check_shape(
        "at 16 columns the one-pass UDF wins outright",
        ratios.last().unwrap().1 < ratios.last().unwrap().2,
    );
    std::process::exit(if ok { 0 } else { 1 });
}
