//! **Figure 3**: comparison of the three approaches to connecting big
//! SQL and big ML systems.
//!
//! Paper setup: IBM Big SQL 3.0 + Spark MLlib on 5 servers; 1B-row carts
//! (56 GB) ⋈ 10M-row users, recode {gender, abandoned} + dummy-code
//! gender, feed `SVMWithSGD`. Reported shape:
//!
//! * `insql` ≈ **1.7×** end-to-end speedup over `naive`;
//! * `insql+stream` additionally removes the ML-side HDFS read
//!   (46 s of reading → saved ~43 s) — significant for ingestion, modest
//!   in the whole workflow.
//!
//! Run: `cargo run --release -p sqlml-bench --bin figure3 -- [--carts N]
//! [--throttle-mbps M] [--seed S]`

use sqlml_bench::{check_shape, render_figure, stages_of, BenchParams, FigureBar};
use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{Pipeline, PipelineRequest, Strategy};
use sqlml_transform::TransformSpec;

fn main() {
    let params = BenchParams::from_args();
    println!(
        "figure3: {} carts / {} users, DFS throttle {:?} MB/s\n",
        params.scale.carts, params.scale.users, params.throttle_mbps
    );
    let cluster = params.start_cluster();
    let pipeline = Pipeline::new(&cluster);
    let request = PipelineRequest {
        prep_sql: PREP_QUERY.to_string(),
        spec: TransformSpec::new(&["gender"]),
        // Transformed layout: age, gender_F, gender_M, amount, abandoned.
        ml_command: "svm label=4 iterations=10".to_string(),
    };

    let mut bars = Vec::new();
    let mut totals = Vec::new();
    for strategy in [Strategy::Naive, Strategy::InSql, Strategy::InSqlStream] {
        let report = pipeline.run(&request, strategy).expect("pipeline run");
        println!(
            "{:<13} rows_to_ml={} train(excluded)={:.2}s",
            strategy.label(),
            report.rows_to_ml,
            report.train_time.as_secs_f64()
        );
        if let Some(summary) = report.transfer_summary() {
            println!("{:<13} {summary}", "");
        }
        if params.verbose {
            // Per-stage breakdown; with the `alloc-counters` feature
            // built in, each timed stage also shows bytes allocated.
            if !sqlml_common::alloc::enabled() {
                println!("  (build with --features alloc-counters for per-stage alloc bytes)");
            }
            print!("{}", report.timer.breakdown());
        }
        totals.push(report.pipeline_time());
        bars.push(FigureBar {
            label: strategy.label().to_string(),
            stages: stages_of(&report),
        });
    }

    println!(
        "\n{}",
        render_figure("Figure 3: three connection approaches", &bars)
    );

    let naive = totals[0].as_secs_f64();
    let insql = totals[1].as_secs_f64();
    let stream = totals[2].as_secs_f64();
    let ok = check_shape("insql is faster than naive (paper: 1.7x)", insql < naive)
        & check_shape(
            &format!(
                "insql speedup over naive is >= 1.3x (measured {:.2}x)",
                naive / insql
            ),
            naive / insql >= 1.3,
        )
        & check_shape(
            "insql+stream is the fastest of the three",
            stream < insql && stream < naive,
        );
    std::process::exit(if ok { 0 } else { 1 });
}
