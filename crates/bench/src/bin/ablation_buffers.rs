//! **A1 — send-buffer sweep.** The paper fixes send/receive buffers at
//! 4 KiB without exploring the choice; this ablation sweeps the
//! in-memory send-buffer size and reports streaming-transfer time and
//! spill volume.
//!
//! Expected shape: throughput is largely insensitive once the buffer
//! holds a few row batches; pathologically small buffers force the
//! spill path (the §3 producer/consumer synchronization) without
//! corrupting the transfer.
//!
//! Run: `cargo run --release -p sqlml-bench --bin ablation_buffers`

use std::time::Instant;

use sqlml_bench::{check_shape, BenchParams};
use sqlml_core::workload::PREP_QUERY;
use sqlml_core::{Pipeline, PipelineRequest, Strategy};
use sqlml_transform::TransformSpec;

fn main() {
    let mut params = BenchParams::from_args();
    // Buffering behaviour is a pure streaming concern; no DFS throttle.
    params.throttle_mbps = None;
    let request = PipelineRequest {
        prep_sql: PREP_QUERY.to_string(),
        spec: TransformSpec::new(&["gender"]),
        ml_command: "svm label=4 iterations=5".to_string(),
    };

    println!(
        "A1: send-buffer size sweep ({} carts)\n",
        params.scale.carts
    );
    println!(
        "{:>12} {:>12} {:>14} {:>8} {:>10} {:>12}",
        "buffer", "time (s)", "spilled (B)", "spills", "batches", "rows"
    );
    let mut results = Vec::new();
    for buffer in [64usize, 1 << 10, 4 << 10, 64 << 10, 1 << 20] {
        let cluster = {
            let c = sqlml_core::ClusterConfig {
                send_buffer_bytes: buffer,
                batch_rows: params.batch_rows,
                frame_bytes: params.frame_bytes,
                sender_threads: params.sender_threads,
                codec: params.codec,
                batch_rows_max: params.batch_rows_max,
                ..Default::default()
            };
            let cluster = sqlml_core::SimCluster::start(c).expect("cluster");
            cluster
                .load_workload(params.scale, params.seed)
                .expect("workload");
            cluster
        };
        let pipeline = Pipeline::new(&cluster);
        let t0 = Instant::now();
        let report = pipeline
            .run(&request, Strategy::InSqlStream)
            .expect("stream run");
        let elapsed = t0.elapsed().as_secs_f64();
        let summary = report.transfer_summary().expect("transfer summary");
        let stats = report.stream_stats.expect("stream stats");
        println!(
            "{:>12} {:>12.3} {:>14} {:>8} {:>10} {:>12}",
            buffer,
            elapsed,
            stats.bytes_spilled,
            stats.spill_events,
            stats.batches_sent,
            stats.rows_ingested
        );
        println!("             {summary}");
        results.push((buffer, elapsed, stats.bytes_spilled, stats.rows_ingested));
    }

    let rows0 = results[0].3;
    let ok = check_shape(
        "every buffer size delivers the same row count",
        results.iter().all(|r| r.3 == rows0),
    ) & check_shape(
        "the tiny 64B buffer spills; the 1MiB buffer spills less",
        results[0].2 > results.last().unwrap().2,
    );
    std::process::exit(if ok { 0 } else { 1 });
}
