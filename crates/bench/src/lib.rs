//! Shared helpers for the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one figure or ablation from
//! the paper's evaluation; this library holds the common scaffolding:
//! cluster construction with paper-like parameters, result rows, and
//! plain-text "figure" rendering.

use std::time::Duration;

use sqlml_core::{ClusterConfig, SimCluster, WorkloadScale};
use sqlml_dfs::DfsConfig;
use sqlml_transfer::WireCodec;

/// Parameters shared by the figure binaries, settable from the command
/// line (`--carts N`, `--throttle-mbps M`, `--seed S`).
#[derive(Debug, Clone)]
pub struct BenchParams {
    pub scale: WorkloadScale,
    /// Per-datanode DFS bandwidth in MB/s. The paper's cluster moved
    /// tens of gigabytes through 12 SATA disks and 10 GbE; at laptop
    /// scale an explicit bandwidth model keeps the *relative* stage
    /// costs honest. `None` disables throttling.
    pub throttle_mbps: Option<u64>,
    pub seed: u64,
    /// Rows per `RowBatch` frame on the streaming data plane.
    pub batch_rows: usize,
    /// Wire-byte target per frame (paper: 4 KiB).
    pub frame_bytes: usize,
    /// Sender threads per SQL worker (0 = dedicated per peer).
    pub sender_threads: usize,
    /// Wire codec for the streaming data plane.
    pub codec: WireCodec,
    /// Adaptive batching ceiling in rows per frame (0 = auto).
    pub batch_rows_max: usize,
    /// Print per-stage breakdowns (and, when built with the
    /// `alloc-counters` feature, bytes allocated per stage).
    pub verbose: bool,
}

impl Default for BenchParams {
    fn default() -> Self {
        let defaults = ClusterConfig::default();
        BenchParams {
            scale: WorkloadScale::SMALL,
            throttle_mbps: Some(4),
            seed: 42,
            batch_rows: defaults.batch_rows,
            frame_bytes: defaults.frame_bytes,
            sender_threads: defaults.sender_threads,
            codec: defaults.codec,
            batch_rows_max: defaults.batch_rows_max,
            verbose: false,
        }
    }
}

impl BenchParams {
    /// Parse `--carts N`, `--throttle-mbps M` (0 = off), `--seed S`,
    /// `--batch-rows N`, `--frame-bytes N`, `--sender-threads N`,
    /// `--codec legacy|compact`, `--batch-rows-max N` and `--verbose`
    /// from the command line, over the defaults.
    pub fn from_args() -> BenchParams {
        let mut p = BenchParams::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            // `--verbose` is the one flag without a value argument.
            if args[i] == "--verbose" {
                p.verbose = true;
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{} takes a value", args[i]));
            match args[i].as_str() {
                "--carts" => {
                    let carts: usize = value.parse().expect("--carts takes a number");
                    p.scale = WorkloadScale::with_carts(carts);
                }
                "--throttle-mbps" => {
                    let mbps: u64 = value.parse().expect("--throttle-mbps takes a number");
                    p.throttle_mbps = if mbps == 0 { None } else { Some(mbps) };
                }
                "--seed" => p.seed = value.parse().expect("--seed takes a number"),
                "--batch-rows" => {
                    p.batch_rows = value.parse().expect("--batch-rows takes a number");
                    assert!(p.batch_rows >= 1, "--batch-rows must be >= 1");
                }
                "--frame-bytes" => {
                    p.frame_bytes = value.parse().expect("--frame-bytes takes a number");
                    assert!(p.frame_bytes >= 1, "--frame-bytes must be >= 1");
                }
                "--sender-threads" => {
                    p.sender_threads = value.parse().expect("--sender-threads takes a number");
                }
                "--codec" => {
                    p.codec = WireCodec::from_flag(value)
                        .unwrap_or_else(|| panic!("--codec takes legacy|compact, got {value:?}"));
                }
                "--batch-rows-max" => {
                    p.batch_rows_max = value.parse().expect("--batch-rows-max takes a number");
                }
                other => panic!("unknown argument {other:?}"),
            }
            i += 2;
        }
        p
    }

    /// Build the 4-node cluster the paper used (1 SQL worker per node,
    /// ML workers colocated, k = 1) with the configured DFS throttle, and
    /// load the workload.
    pub fn start_cluster(&self) -> SimCluster {
        let cluster = SimCluster::start(ClusterConfig {
            num_nodes: 4,
            sql_workers: 4,
            ml_workers: 4,
            splits_per_worker: 1,
            send_buffer_bytes: 4 * 1024, // the paper's 4 KiB
            batch_rows: self.batch_rows,
            frame_bytes: self.frame_bytes,
            sender_threads: self.sender_threads,
            codec: self.codec,
            batch_rows_max: self.batch_rows_max,
            dfs: DfsConfig {
                num_datanodes: 4,
                block_size: 1024 * 1024,
                replication: 3,
                bytes_per_sec: self.throttle_mbps.map(|m| m * 1024 * 1024),
                remote_bytes_per_sec: None,
            },
            block_level_splits: false,
        })
        .expect("cluster start");
        cluster
            .load_workload(self.scale, self.seed)
            .expect("workload load");
        cluster
    }
}

/// One bar of a figure: a label and its stage breakdown.
#[derive(Debug, Clone)]
pub struct FigureBar {
    pub label: String,
    pub stages: Vec<(String, Duration)>,
}

impl FigureBar {
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }
}

/// Render bars the way the paper's figures read: stacked stages plus a
/// speedup column relative to the first bar.
pub fn render_figure(title: &str, bars: &[FigureBar]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let baseline = bars.first().map(|b| b.total().as_secs_f64()).unwrap_or(1.0);
    let width = bars.iter().map(|b| b.label.len()).max().unwrap_or(8).max(8);
    for bar in bars {
        let total = bar.total();
        let speedup = baseline / total.as_secs_f64().max(f64::EPSILON);
        let stages: Vec<String> = bar
            .stages
            .iter()
            .map(|(n, d)| format!("{n}={:.2}s", d.as_secs_f64()))
            .collect();
        out.push_str(&format!(
            "  {:<width$}  total={:7.2}s  speedup={speedup:4.2}x  [{}]\n",
            bar.label,
            total.as_secs_f64(),
            stages.join("  "),
        ));
    }
    out
}

/// Assert a "shape" claim and report it (used by the binaries to declare
/// whether the paper's qualitative result reproduced).
pub fn check_shape(description: &str, holds: bool) -> bool {
    println!(
        "shape check: {description} ... {}",
        if holds { "HOLDS" } else { "VIOLATED" }
    );
    holds
}

/// Stage list of a pipeline report as figure stages.
pub fn stages_of(report: &sqlml_core::PipelineReport) -> Vec<(String, Duration)> {
    report
        .timer
        .stages()
        .iter()
        .map(|s| (s.name.clone(), s.duration))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_rendering_contains_labels_and_speedups() {
        let bars = vec![
            FigureBar {
                label: "naive".into(),
                stages: vec![
                    ("prep".into(), Duration::from_secs(2)),
                    ("trsfm".into(), Duration::from_secs(2)),
                ],
            },
            FigureBar {
                label: "insql".into(),
                stages: vec![("prep+trsfm".into(), Duration::from_secs(2))],
            },
        ];
        let text = render_figure("Figure 3", &bars);
        assert!(text.contains("naive"));
        assert!(text.contains("speedup=2.00x"), "{text}");
    }

    #[test]
    fn params_default_to_small_scale() {
        let p = BenchParams::default();
        assert_eq!(p.scale, WorkloadScale::SMALL);
        assert!(p.throttle_mbps.is_some());
    }
}
