//! Micro-benchmarks of the row codecs: the text format every DFS
//! hand-off pays (twice more in the naive pipeline than in insql) and
//! the binary wire format the streaming transfer pays instead.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sqlml_common::codec;
use sqlml_common::schema::{DataType, Field, Schema};
use sqlml_common::{Row, SplitMix64, Value};

fn sample_rows(n: usize) -> (Schema, Vec<Row>) {
    let schema = Schema::new(vec![
        Field::new("age", DataType::Int),
        Field::categorical("gender"),
        Field::new("amount", DataType::Double),
        Field::categorical("abandoned"),
    ]);
    let mut rng = SplitMix64::new(3);
    let rows = (0..n)
        .map(|_| {
            Row::new(vec![
                Value::Int(rng.range_i64(18, 80)),
                Value::str(if rng.chance(0.5) { "F" } else { "M" }),
                Value::Double(rng.next_f64() * 200.0),
                Value::str(if rng.chance(0.3) { "Yes" } else { "No" }),
            ])
        })
        .collect();
    (schema, rows)
}

fn bench_codecs(c: &mut Criterion) {
    let (schema, rows) = sample_rows(10_000);
    let text = codec::encode_text_batch(&rows);
    let mut binary = Vec::new();
    for r in &rows {
        codec::encode_binary_row(r, &mut binary).unwrap();
    }

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("text_encode_10k_rows", |b| {
        b.iter(|| codec::encode_text_batch(black_box(&rows)))
    });
    group.bench_function("text_decode_10k_rows", |b| {
        b.iter(|| codec::decode_text_batch(black_box(&text), &schema).unwrap())
    });
    group.throughput(Throughput::Bytes(binary.len() as u64));
    group.bench_function("binary_encode_10k_rows", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(binary.len());
            for r in &rows {
                codec::encode_binary_row(black_box(r), &mut buf).unwrap();
            }
            buf
        })
    });
    group.bench_function("binary_decode_10k_rows", |b| {
        b.iter(|| {
            let mut pos = 0;
            let mut out = Vec::with_capacity(rows.len());
            while pos < binary.len() {
                let (row, used) = codec::decode_binary_row(&binary[pos..]).unwrap();
                out.push(row);
                pos += used;
            }
            out
        })
    });
    group.finish();

    // Batched wire frames at the sizes the streaming data plane actually
    // cuts: single-row, the default 64-row frame, and a jumbo 1024-row
    // frame. Encoding reuses one scratch buffer across iterations, as the
    // sender does.
    let mut group = c.benchmark_group("codec_batch");
    for batch in [1usize, 64, 1024] {
        let chunk = &rows[..batch];
        let mut encoded = Vec::new();
        codec::encode_binary_batch(chunk, &mut encoded).unwrap();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        let mut scratch = Vec::with_capacity(encoded.len());
        group.bench_function(&format!("binary_batch_encode_{batch}_rows"), |b| {
            b.iter(|| {
                scratch.clear();
                codec::encode_binary_batch(black_box(chunk), &mut scratch).unwrap();
                scratch.len()
            })
        });
        group.bench_function(&format!("binary_batch_decode_{batch}_rows"), |b| {
            b.iter(|| codec::decode_binary_batch(black_box(&encoded)).unwrap())
        });
    }
    group.finish();

    // The compact varint+dictionary wire codec at the same frame sizes.
    // The categorical columns repeat heavily, so the per-frame dictionary
    // is exercised on every row just like a real streamed frame.
    let mut group = c.benchmark_group("codec_compact");
    for batch in [64usize, 1024] {
        let chunk = &rows[..batch];
        let mut encoded = Vec::new();
        codec::encode_compact_batch(chunk, &mut encoded).unwrap();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        let mut scratch = Vec::with_capacity(encoded.len());
        group.bench_function(&format!("compact_batch_encode_{batch}_rows"), |b| {
            b.iter(|| {
                scratch.clear();
                codec::encode_compact_batch(black_box(chunk), &mut scratch).unwrap();
                scratch.len()
            })
        });
        group.bench_function(&format!("compact_batch_decode_{batch}_rows"), |b| {
            b.iter(|| codec::decode_compact_batch(black_box(&encoded)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_codecs
}
criterion_main!(benches);
