//! Before/after micro-benchmarks for the allocation-slim hot path:
//!
//! * the hash-reuse join (each key hashed once, build side referenced by
//!   row id) against the same query's pre-optimization cost profile;
//! * fused `Filter`→`Project` pipelines against the retained unfused
//!   reference path (`Engine::query_unfused`), which materializes a
//!   `Vec<Row>` per operator per partition;
//! * the [`FlatRecodeApplier`] (one `HashMap` probe per categorical
//!   cell) against the nested-`BTreeMap` `RecodeMap::code` walk it
//!   replaced, applied to identical rows.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sqlml_common::schema::{DataType, Field, Schema};
use sqlml_common::{Row, SplitMix64, Value};
use sqlml_sqlengine::{Engine, EngineConfig};
use sqlml_transform::{FlatRecodeApplier, RecodeMap, TransformSpec};

fn engine(carts: usize, users: usize) -> Engine {
    let e = Engine::new(EngineConfig::with_workers(4));
    let mut rng = SplitMix64::new(5);
    let cart_schema = Schema::new(vec![
        Field::new("userid", DataType::Int),
        Field::new("amount", DataType::Double),
        Field::categorical("abandoned"),
    ]);
    let user_schema = Schema::new(vec![
        Field::new("userid", DataType::Int),
        Field::new("age", DataType::Int),
        Field::categorical("country"),
    ]);
    let cart_rows: Vec<Row> = (0..carts)
        .map(|_| {
            Row::new(vec![
                Value::Int(rng.next_below(users as u64) as i64),
                Value::Double(rng.next_f64() * 200.0),
                Value::str(if rng.chance(0.3) { "Yes" } else { "No" }),
            ])
        })
        .collect();
    let user_rows: Vec<Row> = (0..users)
        .map(|uid| {
            Row::new(vec![
                Value::Int(uid as i64),
                Value::Int(rng.range_i64(18, 80)),
                Value::str(if rng.chance(0.55) { "USA" } else { "CA" }),
            ])
        })
        .collect();
    e.register_rows("carts", cart_schema, cart_rows);
    e.register_rows("users", user_schema, user_rows);
    e
}

fn bench_join(c: &mut Criterion) {
    let e = engine(100_000, 10_000);
    let prep = "SELECT U.age, C.amount, C.abandoned FROM carts C, users U \
                WHERE C.userid = U.userid AND U.country = 'USA'";
    let mut group = c.benchmark_group("hotpath");
    group.bench_function("join_prep_query_100k_x_10k", |b| {
        b.iter(|| e.query(black_box(prep)).unwrap().num_rows())
    });
    group.finish();
}

/// A join key whose hash is computed exactly once — the same structure
/// the executor uses since the hash-reuse rewrite.
struct Prehashed {
    hash: u64,
    key: Vec<Value>,
}

impl Prehashed {
    fn new(key: Vec<Value>) -> Prehashed {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        Prehashed {
            hash: h.finish(),
            key,
        }
    }
}

impl PartialEq for Prehashed {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.key == other.key
    }
}
impl Eq for Prehashed {}
impl std::hash::Hash for Prehashed {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Isolated build+probe comparison: the pre-PR algorithm cloned every
/// build row into a `HashMap<Vec<Value>, Vec<Row>>` and re-evaluated a
/// fresh `Vec<Value>` key at every map operation; the current one
/// indexes pre-hashed keys to buckets of row ids, leaving the build
/// partitions as the only copy of the rows. The build side is the large
/// (100k-row) input so the bench measures exactly the cost the rewrite
/// removed. Probe output (row concatenation) is identical in both.
fn bench_join_operator(c: &mut Criterion) {
    let mut rng = SplitMix64::new(7);
    let users = 10_000usize;
    // Full-width cart rows (the workload's 6-column fact table): the
    // build-side clone the old algorithm paid is proportional to row
    // width. The probe side selects 1-in-5 users, as a filter would.
    let build_rows: Vec<Row> = (0..100_000)
        .map(|cid| {
            Row::new(vec![
                Value::Int(cid as i64),
                Value::Int(rng.next_below(users as u64) as i64),
                Value::Double(rng.next_f64() * 200.0),
                Value::str(if rng.chance(0.3) { "Yes" } else { "No" }),
                Value::Int(if rng.chance(0.7) { 2014 } else { 2013 }),
                Value::Int(rng.range_i64(1, 20)),
            ])
        })
        .collect();
    let probe_rows: Vec<Row> = (0..users / 5)
        .map(|uid| {
            Row::new(vec![
                Value::Int((uid * 5) as i64),
                Value::Int(rng.range_i64(18, 80)),
                Value::str(if rng.chance(0.55) { "USA" } else { "CA" }),
            ])
        })
        .collect();

    let mut group = c.benchmark_group("hotpath");
    group.bench_function("join_build_probe_hash_reuse_100k", |b| {
        b.iter(|| {
            let mut index: std::collections::HashMap<Prehashed, u32> =
                std::collections::HashMap::new();
            let mut buckets: Vec<Vec<u32>> = Vec::new();
            for (ri, r) in build_rows.iter().enumerate() {
                let key = vec![r.get(1).clone()];
                let bucket = match index.entry(Prehashed::new(key)) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let b = buckets.len() as u32;
                        buckets.push(Vec::new());
                        e.insert(b);
                        b
                    }
                };
                buckets[bucket as usize].push(ri as u32);
            }
            let mut out = Vec::with_capacity(build_rows.len());
            for probe_row in black_box(&probe_rows) {
                let key = vec![probe_row.get(0).clone()];
                if let Some(b) = index.get(&Prehashed::new(key)) {
                    for &ri in &buckets[*b as usize] {
                        out.push(probe_row.concat(&build_rows[ri as usize]));
                    }
                }
            }
            out.len()
        })
    });
    group.bench_function("join_build_probe_clone_rehash_100k", |b| {
        b.iter(|| {
            // The pre-PR shape: build rows cloned into the table, probe
            // keys hashed by re-walking the Vec<Value> on every lookup.
            let mut table: std::collections::HashMap<Vec<Value>, Vec<Row>> =
                std::collections::HashMap::new();
            for r in &build_rows {
                table
                    .entry(vec![r.get(1).clone()])
                    .or_default()
                    .push(r.clone());
            }
            let mut out = Vec::new();
            for probe_row in black_box(&probe_rows) {
                let key = vec![probe_row.get(0).clone()];
                if let Some(ms) = table.get(&key) {
                    for m in ms {
                        out.push(probe_row.concat(m));
                    }
                }
            }
            out.len()
        })
    });
    group.finish();
}

fn bench_fusion(c: &mut Criterion) {
    let e = engine(100_000, 10_000);
    // A three-operator chain: filter, compute, filter again — the fused
    // executor runs it as one pass per partition, the unfused reference
    // materializes two intermediates.
    let q = "SELECT amount * 2.0 AS a2 FROM carts WHERE amount > 50.0 AND amount < 190.0";
    let mut group = c.benchmark_group("hotpath");
    group.bench_function("filter_project_fused_100k", |b| {
        b.iter(|| e.query(black_box(q)).unwrap().num_rows())
    });
    group.bench_function("filter_project_unfused_100k", |b| {
        b.iter(|| e.query_unfused(black_box(q)).unwrap().num_rows())
    });
    group.finish();
}

/// The pre-PR per-row transform: nested `BTreeMap` walks per cell via
/// [`RecodeMap::code`], with per-row column-membership scans. Kept here
/// (only) as the before-side of the comparison.
fn reference_apply(row: &Row, schema: &Schema, spec: &TransformSpec, map: &RecodeMap) -> Row {
    let recode_columns = spec.effective_recode_columns(schema);
    let mut values = Vec::with_capacity(row.len());
    for (i, f) in schema.fields().iter().enumerate() {
        let is_recoded = recode_columns
            .iter()
            .any(|c| c.eq_ignore_ascii_case(&f.name));
        let is_dummy = spec
            .dummy_code_columns
            .iter()
            .any(|c| c.eq_ignore_ascii_case(&f.name));
        let v = row.get(i);
        if is_dummy {
            let k = map.cardinality(&f.name);
            let code = match v {
                Value::Null => 0,
                Value::Str(s) => map.code(&f.name, s).unwrap(),
                other => panic!("non-categorical {other}"),
            };
            for j in 1..=k as i64 {
                values.push(Value::Int((j == code) as i64));
            }
        } else if is_recoded {
            match v {
                Value::Null => values.push(Value::Null),
                Value::Str(s) => values.push(Value::Int(map.code(&f.name, s).unwrap())),
                other => panic!("non-categorical {other}"),
            }
        } else {
            values.push(v.clone());
        }
    }
    Row::new(values)
}

fn bench_recode_apply(c: &mut Criterion) {
    let schema = Schema::new(vec![
        Field::new("age", DataType::Int),
        Field::categorical("gender"),
        Field::new("amount", DataType::Double),
        Field::categorical("country"),
    ]);
    let countries = ["USA", "CA", "UK", "DE", "FR", "JP", "BR", "IN"];
    let mut rng = SplitMix64::new(11);
    let rows: Vec<Row> = (0..100_000)
        .map(|_| {
            Row::new(vec![
                Value::Int(rng.range_i64(18, 80)),
                Value::str(if rng.chance(0.5) { "F" } else { "M" }),
                Value::Double(rng.next_f64() * 200.0),
                Value::str(countries[rng.next_below(countries.len() as u64) as usize]),
            ])
        })
        .collect();
    let mut pairs = vec![
        ("gender".to_string(), "F".to_string()),
        ("gender".to_string(), "M".to_string()),
    ];
    pairs.extend(
        countries
            .iter()
            .map(|c| ("country".to_string(), c.to_string())),
    );
    let map = RecodeMap::from_pairs(pairs);
    let spec = TransformSpec::new(&["country"]);
    let applier = FlatRecodeApplier::new(&map, &schema, &spec).unwrap();

    let mut group = c.benchmark_group("hotpath");
    group.bench_function("recode_apply_flat_100k", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &rows {
                n += applier.apply(black_box(r)).unwrap().len();
            }
            n
        })
    });
    group.bench_function("recode_apply_btreemap_100k", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &rows {
                n += reference_apply(black_box(r), &schema, &spec, &map).len();
            }
            n
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_join, bench_join_operator, bench_fusion, bench_recode_apply
}
criterion_main!(benches);
