//! Micro-benchmarks of the In-SQL transformations (§2): recode-map
//! construction (two-phase), the recoding join, and dummy coding.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sqlml_common::schema::{DataType, Field, Schema};
use sqlml_common::{Row, SplitMix64, Value};
use sqlml_sqlengine::{Engine, EngineConfig};
use sqlml_transform::{InSqlTransformer, TransformSpec};

fn setup(rows: usize) -> (Engine, InSqlTransformer) {
    let e = Engine::new(EngineConfig::with_workers(4));
    let schema = Schema::new(vec![
        Field::new("age", DataType::Int),
        Field::categorical("gender"),
        Field::new("amount", DataType::Double),
        Field::categorical("abandoned"),
    ]);
    let mut rng = SplitMix64::new(9);
    let data: Vec<Row> = (0..rows)
        .map(|_| {
            Row::new(vec![
                Value::Int(rng.range_i64(18, 80)),
                Value::str(if rng.chance(0.5) { "F" } else { "M" }),
                Value::Double(rng.next_f64() * 200.0),
                Value::str(if rng.chance(0.3) { "Yes" } else { "No" }),
            ])
        })
        .collect();
    e.register_rows("t", schema, data);
    let tr = InSqlTransformer::new(e.clone());
    (e, tr)
}

fn bench_transform(c: &mut Criterion) {
    let (_e, tr) = setup(100_000);
    let cols = vec!["gender".to_string(), "abandoned".to_string()];

    let mut group = c.benchmark_group("transform");
    group.bench_function("recode_map_build_100k_2cols", |b| {
        b.iter(|| tr.build_recode_map(black_box("t"), &cols).unwrap())
    });
    group.bench_function("full_recode_100k", |b| {
        b.iter(|| {
            tr.transform("t", &TransformSpec::default())
                .unwrap()
                .table
                .num_rows()
        })
    });
    group.bench_function("recode_plus_dummy_100k", |b| {
        b.iter(|| {
            tr.transform("t", &TransformSpec::new(&["gender"]))
                .unwrap()
                .table
                .num_rows()
        })
    });
    let map = tr.build_recode_map("t", &cols).unwrap();
    group.bench_function("recode_with_cached_map_100k", |b| {
        b.iter(|| {
            tr.transform_with_map("t", &TransformSpec::default(), black_box(&map))
                .unwrap()
                .table
                .num_rows()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_transform
}
criterion_main!(benches);
